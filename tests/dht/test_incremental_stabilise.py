"""Incremental stabilisation is bit-identical to a from-scratch rebuild.

The incremental repair in :meth:`ChordRing.stabilise` claims to produce
exactly the state a full rebuild would — fingers, successor lists,
predecessors and lookup hop charges alike.  These tests hold it to that
claim after every event of randomized membership sequences, through bulk
batches, across the small-ring fallback threshold, and for the memo entries
that survive selective invalidation.
"""

from __future__ import annotations

import pytest

from repro.dht.hashspace import HashSpace
from repro.dht.ring import ChordRing
from repro.dht.router import ShardedRingRouter
from repro.util.rng import RandomStream

BITS = 16
SPACE = HashSpace(bits=BITS)


def build_ring(members: dict[str, int], force_full: bool = False) -> ChordRing:
    """A stabilised ring with exactly the given name → id membership."""
    ring = ChordRing(space=HashSpace(bits=BITS))
    ring.force_full_stabilise = force_full
    for name, node_id in members.items():
        ring.add_node(name, node_id=node_id)
    ring.stabilise()
    return ring


def ring_state(ring: ChordRing) -> dict[str, tuple]:
    """Every node's complete routing state, keyed by name."""
    state = {}
    for name in ring.node_names():
        node = ring.node(name)
        state[name] = (
            node.node_id,
            node.predecessor,
            tuple(node.successor_list),
            tuple(node.fingers),
        )
    return state


def assert_matches_reference(ring: ChordRing, members: dict[str, int]) -> None:
    """The ring's routing state equals a freshly rebuilt ring's, lookups included."""
    reference = build_ring(members, force_full=True)
    assert ring_state(ring) == ring_state(reference)
    rng = RandomStream(4242)
    names = sorted(members)
    for _ in range(20):
        key = rng.randbits(BITS)
        start = names[rng.randint(0, len(names) - 1)]
        got = ring.find_successor(key, start=start)
        want = reference.find_successor(key, start=start)
        assert (got.owner, got.hops, got.path) == (want.owner, want.hops, want.path)


def random_members(rng: RandomStream, count: int, prefix: str = "n") -> dict[str, int]:
    members: dict[str, int] = {}
    used: set[int] = set()
    for index in range(count):
        node_id = rng.randbits(BITS)
        while node_id in used:
            node_id = rng.randbits(BITS)
        used.add(node_id)
        members[f"{prefix}{index}"] = node_id
    return members


class TestRandomizedSequences:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_state_matches_fresh_rebuild_after_every_event(self, seed: int):
        rng = RandomStream(seed)
        members = random_members(rng, 48)
        ring = build_ring(members)
        next_index = 48
        for _ in range(60):
            if members and rng.uniform() < 0.5:
                name = sorted(members)[rng.randint(0, len(members) - 1)]
                ring.remove_node(name)
                del members[name]
            else:
                node_id = rng.randbits(BITS)
                while node_id in {n.node_id for n in map(ring.node, members)}:
                    node_id = rng.randbits(BITS)
                name = f"n{next_index}"
                next_index += 1
                ring.add_node(name, node_id=node_id)
                members[name] = node_id
            ring.stabilise()
            assert_matches_reference(ring, members)
        # The sequence must actually have exercised the incremental path.
        assert ring.stabilise_stats()["incremental_events"] > 0

    def test_batched_events_match_fresh_rebuild(self):
        rng = RandomStream(99)
        members = random_members(rng, 64)
        ring = build_ring(members)
        # A small batch (below the bulk-fallback threshold) applied in one go.
        for name in ["n3", "n17", "n40"]:
            ring.remove_node(name)
            del members[name]
        for index, node_id in enumerate([11, 222, 3333]):
            while node_id in members.values():
                node_id += 1
            name = f"extra{index}"
            ring.add_node(name, node_id=node_id)
            members[name] = node_id
        ring.stabilise()
        assert ring.stabilise_stats()["incremental_events"] == 6
        assert_matches_reference(ring, members)

    def test_add_then_remove_same_node_within_one_batch(self):
        rng = RandomStream(5)
        members = random_members(rng, 32)
        ring = build_ring(members)
        node_id = rng.randbits(BITS)
        while node_id in members.values():
            node_id = rng.randbits(BITS)
        ring.add_node("transient", node_id=node_id)
        ring.remove_node("transient")
        ring.stabilise()
        assert_matches_reference(ring, members)

    def test_bulk_batch_falls_back_to_full_rebuild(self):
        rng = RandomStream(13)
        members = random_members(rng, 20)
        ring = build_ring(members)
        rebuilds_before = ring.stabilise_stats()["full_rebuilds"]
        extra = random_members(rng, 10, prefix="bulk")
        for name, node_id in extra.items():
            while node_id in members.values():
                node_id = (node_id + 1) % SPACE.size
            ring.add_node(name, node_id=node_id)
            members[name] = node_id
        ring.stabilise()
        assert ring.stabilise_stats()["full_rebuilds"] == rebuilds_before + 1
        assert_matches_reference(ring, members)


class TestSmallRingFallback:
    def test_shrink_below_threshold_and_regrow(self):
        rng = RandomStream(31)
        members = random_members(rng, 24)
        ring = build_ring(members)
        # Shrink to a handful of nodes (below successor_list_length + 2) ...
        for name in sorted(members)[: len(members) - 3]:
            ring.remove_node(name)
            del members[name]
            ring.stabilise()
            assert_matches_reference(ring, members)
        # ... and grow back past the threshold, checking at every step.
        for index in range(12):
            node_id = rng.randbits(BITS)
            while node_id in members.values():
                node_id = rng.randbits(BITS)
            name = f"regrow{index}"
            ring.add_node(name, node_id=node_id)
            members[name] = node_id
            ring.stabilise()
            assert_matches_reference(ring, members)

    def test_empty_ring_edges(self):
        ring = ChordRing(space=HashSpace(bits=BITS))
        ring.stabilise()  # stabilising an empty ring is a no-op, not an error
        with pytest.raises(ValueError):
            ring.owner_of(1)
        ring.add_node("a", node_id=100)
        ring.stabilise()
        assert ring.owner_of(1) == "a"
        ring.remove_node("a")
        ring.stabilise()
        with pytest.raises(ValueError):
            ring.owner_of(1)
        # The ring is usable again after refilling from empty.
        members = {"x": 7, "y": 4000, "z": 60000}
        for name, node_id in members.items():
            ring.add_node(name, node_id=node_id)
        ring.stabilise()
        assert_matches_reference(ring, members)

    def test_duplicate_id_rejected_mid_sequence(self):
        rng = RandomStream(77)
        members = random_members(rng, 16)
        ring = build_ring(members)
        taken = next(iter(members.values()))
        with pytest.raises(ValueError):
            ring.add_node("clash", node_id=taken)
        # The rejected add must not have left a phantom pending event.
        ring.stabilise()
        assert_matches_reference(ring, members)


class TestSelectiveMemoInvalidation:
    def test_surviving_entries_replay_exactly_and_some_survive(self):
        rng = RandomStream(55)
        members = random_members(rng, 64)
        ring = build_ring(members)
        keys = [rng.randbits(BITS) for _ in range(200)]
        for key in keys:
            ring.find_successor(key)
        warm = ring.memo_stats()["entries"]
        assert warm == len(set(keys))
        # One membership event: only entries whose path crosses repaired
        # nodes may be dropped.
        victim = sorted(members)[10]
        ring.remove_node(victim)
        del members[victim]
        ring.stabilise()
        stats = ring.memo_stats()
        assert 0 < stats["invalidations"] < warm  # selective, not wholesale
        assert stats["entries"] == warm - stats["invalidations"]
        hits_before = stats["hits"]
        reference = build_ring(members, force_full=True)
        for key in keys:
            got = ring.find_successor(key)
            want = reference.find_successor(key)
            assert (got.owner, got.hops, got.path) == (want.owner, want.hops, want.path)
        assert ring.memo_stats()["hits"] > hits_before  # survivors were reused

    def test_default_start_entries_invalidated_when_first_node_changes(self):
        members = {"a": 100, "b": 2000, "c": 30000}
        ring = build_ring(members)
        ring.force_full_stabilise = False
        # Grow the ring so the incremental path is eligible, then memoize a
        # default-start lookup and change the first node in ring order.
        for index in range(8):
            members[f"pad{index}"] = 40000 + index * 1000
            ring.add_node(f"pad{index}", node_id=members[f"pad{index}"])
        ring.stabilise()
        result = ring.find_successor(500)  # default start = node "a" (id 100)
        assert result.path[0] == "a"
        ring.add_node("front", node_id=5)  # new first node in ring order
        members["front"] = 5
        ring.stabilise()
        fresh = ring.find_successor(500)
        assert fresh.path[0] == "front"
        assert_matches_reference(ring, members)


class TestShardedRouterIncremental:
    def test_randomized_churn_touches_only_dirty_shards(self):
        space = HashSpace(bits=BITS)
        router = ShardedRingRouter(shard_count=4, space=space, key_bits=24)
        rng = RandomStream(11)
        names = [f"s{i}" for i in range(48)]
        for name in names:
            router.add_server(name)
        router.stabilise()
        # Rebuild counters per shard ring: churn one server and check only
        # its shard's ring did any stabilisation work.
        work_before = [
            (r.stabilise_stats()["full_rebuilds"], r.stabilise_stats()["incremental_events"])
            for r in router.rings()
        ]
        victim = names[7]
        shard = router.server_shard(victim)
        router.remove_server(victim)
        router.stabilise()
        router.add_server(victim)
        router.stabilise()
        for index, ring in enumerate(router.rings()):
            rebuilds, events = (
                ring.stabilise_stats()["full_rebuilds"],
                ring.stabilise_stats()["incremental_events"],
            )
            if index == shard:
                assert (rebuilds, events) != work_before[index]
            else:
                assert (rebuilds, events) == work_before[index]

    def test_sharded_state_matches_fresh_routers_after_churn(self):
        space = HashSpace(bits=BITS)
        router = ShardedRingRouter(shard_count=4, space=space, key_bits=24)
        rng = RandomStream(21)
        active = [f"s{i}" for i in range(40)]
        for name in active:
            router.add_server(name)
        router.stabilise()
        next_index = 40
        for _ in range(12):
            if rng.uniform() < 0.5 and len(active) > 30:
                name = active.pop(rng.randint(0, len(active) - 1))
                router.remove_server(name)
            else:
                name = f"s{next_index}"
                next_index += 1
                router.add_server(name)
                active.append(name)
            router.stabilise()
            # Shard placement is order-dependent, so the reference for each
            # shard is a fresh ring with that shard's exact membership.
            for shard_ring in router.rings():
                if len(shard_ring) == 0:
                    continue
                shard_members = {
                    name: shard_ring.node(name).node_id
                    for name in shard_ring.node_names()
                }
                reference = build_ring(shard_members, force_full=True)
                assert ring_state(shard_ring) == ring_state(reference)
