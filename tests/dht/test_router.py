"""Tests for the routing tier (single-ring and sharded ring federation)."""

from __future__ import annotations

import pytest

from repro.dht.hashspace import HashSpace
from repro.dht.ring import ChordRing
from repro.dht.router import ShardedRingRouter, SingleRingRouter, build_router
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream

KEY_BITS = 12


def key(value: int) -> IdentifierKey:
    return IdentifierKey(value=value, width=KEY_BITS)


@pytest.fixture
def space() -> HashSpace:
    return HashSpace(bits=16)


class TestBuildRouter:
    def test_one_shard_builds_the_single_ring_router(self, space):
        router = build_router(1, space=space, key_bits=KEY_BITS)
        assert isinstance(router, SingleRingRouter)
        assert router.shard_count == 1

    def test_many_shards_build_the_sharded_router(self, space):
        router = build_router(4, space=space, key_bits=KEY_BITS)
        assert isinstance(router, ShardedRingRouter)
        assert router.shard_count == 4

    def test_rejects_non_positive_counts(self, space):
        with pytest.raises(ValueError):
            build_router(0, space=space, key_bits=KEY_BITS)


class TestSingleRingRouter:
    def test_delegates_to_one_chord_ring_identically(self, space):
        """Lookup for lookup, the router is the wrapped ring."""
        router = build_router(1, space=space, key_bits=KEY_BITS)
        reference = ChordRing(space=HashSpace(bits=16))
        for name in ("alpha", "beta", "gamma", "delta"):
            router.add_server(name)
            reference.add_node(name)
        router.stabilise()
        reference.stabilise()
        rng = RandomStream(7)
        for _ in range(50):
            probe = key(rng.randbits(KEY_BITS))
            assert router.lookup(probe) == reference.lookup_key(probe)
            assert router.owner_of_key(probe) == reference.owner_of(
                reference.hash_function.hash_key(probe)
            )
        assert router.node_ids() == reference.node_ids()

    def test_every_key_maps_to_shard_zero(self, space):
        router = build_router(1, space=space, key_bits=KEY_BITS)
        router.add_server("only")
        router.stabilise()
        assert router.shard_of_key(key(0)) == 0
        assert router.shard_of_key(key((1 << KEY_BITS) - 1)) == 0
        assert router.server_shard("only") == 0
        assert "only" in router

    def test_refuses_to_remove_the_last_server(self, space):
        router = build_router(1, space=space, key_bits=KEY_BITS)
        router.add_server("a")
        router.add_server("b")
        router.stabilise()
        assert router.can_remove("a")
        router.remove_server("a")
        assert not router.can_remove("b")
        with pytest.raises(ValueError):
            router.remove_server("b")


class TestShardedRingRouter:
    def test_rejects_non_power_of_two_shard_counts(self, space):
        with pytest.raises(ValueError):
            ShardedRingRouter(space=space, shard_count=3, key_bits=KEY_BITS)

    def test_rejects_more_shard_bits_than_key_bits(self, space):
        with pytest.raises(ValueError):
            ShardedRingRouter(space=space, shard_count=8, key_bits=2)

    def test_keys_partition_by_leading_bits(self, space):
        router = ShardedRingRouter(space=space, shard_count=4, key_bits=KEY_BITS)
        # Top two of twelve bits select the shard.
        assert router.shard_bits == 2
        assert router.shard_of_key(key(0b000000000000)) == 0
        assert router.shard_of_key(key(0b010000000001)) == 1
        assert router.shard_of_key(key(0b101111111111)) == 2
        assert router.shard_of_key(key(0b110000000000)) == 3

    def test_rejects_keys_of_the_wrong_width(self, space):
        router = ShardedRingRouter(space=space, shard_count=4, key_bits=KEY_BITS)
        with pytest.raises(ValueError):
            router.shard_of_key(IdentifierKey(value=0, width=KEY_BITS + 1))

    def test_servers_balance_across_shards(self, space):
        router = ShardedRingRouter(space=space, shard_count=4, key_bits=KEY_BITS)
        for index in range(10):
            router.add_server(f"s{index}")
        router.stabilise()
        sizes = sorted(len(router.servers_in_shard(shard)) for shard in range(4))
        assert sizes == [2, 2, 3, 3]
        # Deterministic: the first four servers fill shards 0..3 in order.
        assert [router.server_shard(f"s{index}") for index in range(4)] == [0, 1, 2, 3]

    def test_lookup_owner_lives_on_the_keys_shard(self, space):
        router = ShardedRingRouter(space=space, shard_count=4, key_bits=KEY_BITS)
        for index in range(12):
            router.add_server(f"s{index}")
        router.stabilise()
        rng = RandomStream(21)
        for _ in range(100):
            probe = key(rng.randbits(KEY_BITS))
            result = router.lookup(probe)
            shard = router.shard_of_key(probe)
            assert result.owner in router.servers_in_shard(shard)
            assert router.owner_of_key(probe) == result.owner

    def test_node_ids_aggregate_every_shard(self, space):
        router = ShardedRingRouter(space=space, shard_count=2, key_bits=KEY_BITS)
        for index in range(6):
            router.add_server(f"s{index}")
        router.stabilise()
        expected = sorted(
            node_id for ring in router.rings() for node_id in ring.node_ids()
        )
        assert router.node_ids() == expected

    def test_refuses_to_drain_a_shard(self, space):
        router = ShardedRingRouter(space=space, shard_count=2, key_bits=KEY_BITS)
        for name in ("a", "b", "c"):
            router.add_server(name)
        router.stabilise()
        # "a" landed on shard 0, "b" on shard 1, "c" on shard 0.
        assert router.can_remove("a")
        assert not router.can_remove("b")
        with pytest.raises(ValueError):
            router.remove_server("b")
        router.remove_server("a")
        assert not router.can_remove("c")

    def test_single_ring_property_raises(self, space):
        router = ShardedRingRouter(space=space, shard_count=2, key_bits=KEY_BITS)
        with pytest.raises(AttributeError):
            _ = router.ring

    def test_duplicate_server_rejected(self, space):
        router = ShardedRingRouter(space=space, shard_count=2, key_bits=KEY_BITS)
        router.add_server("dup")
        with pytest.raises(ValueError):
            router.add_server("dup")

    def test_removal_restabilises_only_the_touched_shard(self, space):
        router = ShardedRingRouter(space=space, shard_count=2, key_bits=KEY_BITS)
        for index in range(8):
            router.add_server(f"s{index}")
        router.stabilise()
        before = {
            shard: router.servers_in_shard(shard) for shard in range(2)
        }
        victim = router.servers_in_shard(0)[0]
        router.remove_server(victim)
        assert victim not in router
        assert router.servers_in_shard(1) == before[1]
        assert victim not in router.servers_in_shard(0)
        # Lookups on both shards still resolve.
        rng = RandomStream(5)
        for _ in range(20):
            probe = key(rng.randbits(KEY_BITS))
            assert router.lookup(probe).owner in router.servers_in_shard(
                router.shard_of_key(probe)
            )
