"""Unit tests for repro.dht.node."""

from __future__ import annotations

import pytest

from repro.dht.hashspace import HashSpace
from repro.dht.node import ChordNode


class TestChordNode:
    def test_successor_requires_successor_list(self):
        node = ChordNode(node_id=5, name="s0")
        with pytest.raises(ValueError):
            _ = node.successor
        node.successor_list = [9, 12]
        assert node.successor == 9

    def test_owns_interval(self):
        space = HashSpace(bits=4)
        node = ChordNode(node_id=8, name="s0", predecessor=4)
        assert node.owns(space, 8)
        assert node.owns(space, 5)
        assert not node.owns(space, 4)
        assert not node.owns(space, 9)

    def test_owns_with_wraparound(self):
        space = HashSpace(bits=4)
        node = ChordNode(node_id=1, name="s0", predecessor=13)
        assert node.owns(space, 0)
        assert node.owns(space, 14)
        assert node.owns(space, 1)
        assert not node.owns(space, 7)

    def test_owns_requires_predecessor(self):
        space = HashSpace(bits=4)
        with pytest.raises(ValueError):
            ChordNode(node_id=1, name="s0").owns(space, 0)

    def test_closest_preceding_finger(self):
        space = HashSpace(bits=4)
        node = ChordNode(node_id=0, name="s0", fingers=[2, 2, 5, 9])
        # Target 8: finger 5 is the closest one strictly inside (0, 8).
        assert node.closest_preceding_finger(space, 8) == 5
        # Target 12: finger 9 precedes it.
        assert node.closest_preceding_finger(space, 12) == 9
        # Target 1: no finger in (0, 1) -> fall back to self.
        assert node.closest_preceding_finger(space, 1) == 0

    def test_closest_preceding_finger_empty_table(self):
        space = HashSpace(bits=4)
        node = ChordNode(node_id=3, name="s0")
        assert node.closest_preceding_finger(space, 9) == 3

    def test_describe(self):
        node = ChordNode(node_id=7, name="s7", successor_list=[9], predecessor=5, fingers=[9])
        snapshot = node.describe()
        assert snapshot["name"] == "s7"
        assert snapshot["successor"] == 9
        assert snapshot["finger_count"] == 1
