"""Unit tests for repro.dht.hashspace."""

from __future__ import annotations

import pytest

from repro.dht.hashspace import HashSpace


class TestBasics:
    def test_size(self):
        assert HashSpace(bits=8).size == 256
        assert HashSpace(bits=24).size == 1 << 24

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            HashSpace(bits=0)
        with pytest.raises(TypeError):
            HashSpace(bits="24")

    def test_contains(self):
        space = HashSpace(bits=4)
        assert space.contains(0)
        assert space.contains(15)
        assert not space.contains(16)
        assert not space.contains(-1)
        assert not space.contains(True)

    def test_check_member(self):
        space = HashSpace(bits=4)
        space.check_member("x", 7)
        with pytest.raises(ValueError):
            space.check_member("x", 16)

    def test_normalise(self):
        space = HashSpace(bits=4)
        assert space.normalise(16) == 0
        assert space.normalise(-1) == 15
        assert space.normalise(5) == 5

    def test_add_wraps(self):
        space = HashSpace(bits=4)
        assert space.add(15, 1) == 0
        assert space.add(3, 4) == 7

    def test_distance_is_clockwise(self):
        space = HashSpace(bits=4)
        assert space.distance(3, 7) == 4
        assert space.distance(7, 3) == 12
        assert space.distance(5, 5) == 0


class TestIntervals:
    def test_open_interval_no_wrap(self):
        space = HashSpace(bits=4)
        assert space.in_open_interval(5, 3, 7)
        assert not space.in_open_interval(3, 3, 7)
        assert not space.in_open_interval(7, 3, 7)

    def test_open_interval_with_wrap(self):
        space = HashSpace(bits=4)
        assert space.in_open_interval(1, 14, 3)
        assert space.in_open_interval(15, 14, 3)
        assert not space.in_open_interval(7, 14, 3)

    def test_open_interval_degenerate_covers_ring_minus_point(self):
        space = HashSpace(bits=4)
        assert space.in_open_interval(5, 9, 9)
        assert not space.in_open_interval(9, 9, 9)

    def test_half_open_interval_includes_end(self):
        space = HashSpace(bits=4)
        assert space.in_half_open_interval(7, 3, 7)
        assert not space.in_half_open_interval(3, 3, 7)

    def test_half_open_interval_with_wrap(self):
        space = HashSpace(bits=4)
        assert space.in_half_open_interval(2, 14, 3)
        assert space.in_half_open_interval(3, 14, 3)
        assert not space.in_half_open_interval(14, 14, 3)

    def test_half_open_degenerate_covers_whole_ring(self):
        space = HashSpace(bits=4)
        assert space.in_half_open_interval(9, 9, 9)
        assert space.in_half_open_interval(0, 9, 9)


class TestFingerStart:
    def test_finger_start_values(self):
        space = HashSpace(bits=4)
        assert space.finger_start(3, 0) == 4
        assert space.finger_start(3, 3) == 11
        assert space.finger_start(15, 1) == 1  # wraps

    def test_finger_index_bounds(self):
        space = HashSpace(bits=4)
        with pytest.raises(ValueError):
            space.finger_start(3, 4)
        with pytest.raises(ValueError):
            space.finger_start(3, -1)
