"""Unit tests for repro.dht.replication."""

from __future__ import annotations

import pytest

from repro.dht.hashspace import HashSpace
from repro.dht.replication import ReplicationManager
from repro.dht.ring import ChordRing
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream


@pytest.fixture
def ring() -> ChordRing:
    return ChordRing.build(node_count=12, space=HashSpace(bits=16), rng=RandomStream(21))


@pytest.fixture
def manager(ring: ChordRing) -> ReplicationManager:
    return ReplicationManager(ring, replica_count=3)


def _key(value: int) -> IdentifierKey:
    return IdentifierKey(value=value, width=24)


class TestReplication:
    def test_store_places_replica_count_copies(self, manager: ReplicationManager):
        holders = manager.store(_key(1), "payload-1")
        assert len(holders) == 3
        assert len(set(holders)) == 3

    def test_fetch_returns_stored_value(self, manager: ReplicationManager):
        manager.store(_key(2), {"data": 42})
        assert manager.fetch(_key(2)) == {"data": 42}

    def test_fetch_unknown_key_raises(self, manager: ReplicationManager):
        with pytest.raises(KeyError):
            manager.fetch(_key(3))

    def test_holders_listed(self, manager: ReplicationManager):
        stored = manager.store(_key(4), "x")
        assert manager.holders(_key(4)) == stored

    def test_primary_is_ring_owner(self, manager: ReplicationManager, ring: ChordRing):
        key = _key(5)
        holders = manager.store(key, "x")
        assert holders[0] == ring.owner_of(ring.hash_function.hash_key(key))

    def test_objects_per_node_counts_copies(self, manager: ReplicationManager):
        for value in range(20):
            manager.store(_key(value), value)
        counts = manager.objects_per_node()
        assert sum(counts.values()) == 20 * 3

    def test_object_survives_single_failure(self, manager: ReplicationManager, ring: ChordRing):
        key = _key(6)
        holders = manager.store(key, "precious")
        manager.handle_node_failure(holders[0])
        assert manager.fetch(key) == "precious"
        new_holders = manager.holders(key)
        assert holders[0] not in new_holders
        assert len(new_holders) == 3

    def test_failure_repairs_only_affected_objects(self, manager: ReplicationManager):
        keys = [_key(value) for value in range(30)]
        for key in keys:
            manager.store(key, "v")
        victim = manager.holders(keys[0])[0]
        affected = sum(1 for key in keys if victim in manager.holders(key))
        repaired = manager.handle_node_failure(victim)
        assert repaired == affected

    def test_failure_of_unknown_node_raises(self, manager: ReplicationManager):
        with pytest.raises(KeyError):
            manager.handle_node_failure("ghost")

    def test_replica_count_validation(self, ring: ChordRing):
        with pytest.raises(ValueError):
            ReplicationManager(ring, replica_count=0)
