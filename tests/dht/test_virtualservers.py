"""Unit tests for repro.dht.virtualservers."""

from __future__ import annotations

import pytest

from repro.dht.hashspace import HashSpace
from repro.dht.virtualservers import PhysicalServer, VirtualServerAllocator
from repro.util.rng import RandomStream


class TestPhysicalServer:
    def test_defaults(self):
        server = PhysicalServer(name="m0")
        assert server.capacity == 1.0
        assert server.virtual_nodes == []

    def test_validation(self):
        with pytest.raises(ValueError):
            PhysicalServer(name="")
        with pytest.raises(ValueError):
            PhysicalServer(name="m0", capacity=0.0)


class TestVirtualServerAllocator:
    def test_default_allocation_is_log_of_server_count(self):
        space = HashSpace(bits=20)
        allocator = VirtualServerAllocator(space=space)
        servers = [PhysicalServer(name=f"m{i}") for i in range(16)]
        allocator.build_ring(servers, rng=RandomStream(3))
        # ceil(log2(16)) = 4 virtual nodes per unit-capacity server.
        assert all(len(server.virtual_nodes) == 4 for server in servers)

    def test_capacity_proportional_allocation(self):
        space = HashSpace(bits=20)
        allocator = VirtualServerAllocator(space=space, virtuals_per_unit_capacity=4)
        small = PhysicalServer(name="small", capacity=1.0)
        big = PhysicalServer(name="big", capacity=3.0)
        allocator.build_ring([small, big], rng=RandomStream(4))
        assert len(small.virtual_nodes) == 4
        assert len(big.virtual_nodes) == 12

    def test_virtual_names_resolve_to_physical_owner(self):
        assert VirtualServerAllocator.physical_owner("m3#7") == "m3"
        with pytest.raises(ValueError):
            VirtualServerAllocator.physical_owner("m3")

    def test_ring_contains_all_virtual_nodes(self):
        space = HashSpace(bits=20)
        allocator = VirtualServerAllocator(space=space, virtuals_per_unit_capacity=2)
        servers = [PhysicalServer(name=f"m{i}") for i in range(8)]
        ring = allocator.build_ring(servers, rng=RandomStream(5))
        assert len(ring) == 16

    def test_unique_names_required(self):
        space = HashSpace(bits=20)
        allocator = VirtualServerAllocator(space=space)
        with pytest.raises(ValueError):
            allocator.build_ring([PhysicalServer(name="m"), PhysicalServer(name="m")])

    def test_empty_server_list_rejected(self):
        with pytest.raises(ValueError):
            VirtualServerAllocator(space=HashSpace(bits=8)).build_ring([])

    def test_virtual_servers_smooth_the_partition(self):
        """More virtual servers per node -> a more even hash-space split."""
        space = HashSpace(bits=20)
        servers_single = [PhysicalServer(name=f"m{i}") for i in range(16)]
        ring_single = VirtualServerAllocator(space=space, virtuals_per_unit_capacity=1).build_ring(
            servers_single, rng=RandomStream(6)
        )
        share_single = VirtualServerAllocator.fraction_of_space(ring_single, servers_single)

        servers_many = [PhysicalServer(name=f"m{i}") for i in range(16)]
        ring_many = VirtualServerAllocator(space=space, virtuals_per_unit_capacity=16).build_ring(
            servers_many, rng=RandomStream(6)
        )
        share_many = VirtualServerAllocator.fraction_of_space(ring_many, servers_many)

        assert abs(sum(share_single.values()) - 1.0) < 1e-9
        assert abs(sum(share_many.values()) - 1.0) < 1e-9
        assert max(share_many.values()) < max(share_single.values())

    def test_capacity_skews_ownership(self):
        space = HashSpace(bits=20)
        allocator = VirtualServerAllocator(space=space, virtuals_per_unit_capacity=8)
        small = PhysicalServer(name="small", capacity=1.0)
        big = PhysicalServer(name="big", capacity=4.0)
        ring = allocator.build_ring([small, big], rng=RandomStream(7))
        shares = VirtualServerAllocator.fraction_of_space(ring, [small, big])
        assert shares["big"] > shares["small"]
