"""Property-based tests for ring-interval arithmetic (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.hashspace import HashSpace

BITS = 10
SPACE = HashSpace(bits=BITS)
points = st.integers(min_value=0, max_value=SPACE.size - 1)


class TestIntervalProperties:
    @given(value=points, start=points, end=points)
    @settings(max_examples=300)
    def test_open_interval_matches_rotation(self, value, start, end):
        """(start, end) membership is invariant under rotating the whole ring."""
        shift = 123
        rotated = SPACE.in_open_interval(
            SPACE.add(value, shift), SPACE.add(start, shift), SPACE.add(end, shift)
        )
        assert SPACE.in_open_interval(value, start, end) == rotated

    @given(value=points, start=points, end=points)
    @settings(max_examples=300)
    def test_half_open_interval_matches_rotation(self, value, start, end):
        shift = 321
        rotated = SPACE.in_half_open_interval(
            SPACE.add(value, shift), SPACE.add(start, shift), SPACE.add(end, shift)
        )
        assert SPACE.in_half_open_interval(value, start, end) == rotated

    @given(value=points, start=points, end=points)
    @settings(max_examples=300)
    def test_half_open_is_open_plus_endpoint(self, value, start, end):
        if start == end:
            return
        expected = SPACE.in_open_interval(value, start, end) or value == end
        assert SPACE.in_half_open_interval(value, start, end) == expected

    @given(start=points, end=points)
    @settings(max_examples=200)
    def test_interval_size_matches_distance(self, start, end):
        """The number of points in (start, end] equals distance(start, end)."""
        if start == end:
            return
        count = sum(
            1 for value in range(SPACE.size) if SPACE.in_half_open_interval(value, start, end)
        )
        assert count == SPACE.distance(start, end)

    @given(a=points, b=points)
    @settings(max_examples=300)
    def test_distance_antisymmetry(self, a, b):
        if a == b:
            assert SPACE.distance(a, b) == 0
        else:
            assert SPACE.distance(a, b) + SPACE.distance(b, a) == SPACE.size
