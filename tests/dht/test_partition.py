"""Partition maps: unit coverage plus hypothesis property tests.

The properties the ISSUE pins: a map's ranges are contiguous, cover the
whole key space, never overlap, and ``shard_of_key`` agrees with a
brute-force scan over the ranges — across random boundary sets and
versions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.partition import (
    DEFAULT_BLOCK_LIMIT,
    PARTITION_KINDS,
    LoadProportionalPartition,
    PartitionMap,
    StaticPrefixPartition,
    load_proportional_cuts,
    step_block_cuts,
)
from repro.keys.identifier import IdentifierKey

KEY_BITS = 10
DEPTH = 5
BLOCKS = 1 << DEPTH
BLOCK = 1 << (KEY_BITS - DEPTH)
SPACE = 1 << KEY_BITS


def _map_from_cuts(cuts, version=0) -> PartitionMap:
    return PartitionMap(
        boundaries=[cut * BLOCK for cut in cuts],
        key_bits=KEY_BITS,
        granularity_depth=DEPTH,
        version=version,
    )


@st.composite
def partition_maps(draw) -> PartitionMap:
    """A random valid map: 1–8 shards, random block cuts, random version."""
    shard_count = draw(st.integers(min_value=1, max_value=8))
    interior = draw(
        st.sets(
            st.integers(min_value=1, max_value=BLOCKS - 1),
            min_size=shard_count - 1,
            max_size=shard_count - 1,
        )
    )
    version = draw(st.integers(min_value=0, max_value=10_000))
    return _map_from_cuts([0, *sorted(interior), BLOCKS], version=version)


class TestPartitionMapProperties:
    @given(pmap=partition_maps())
    @settings(max_examples=100)
    def test_ranges_are_contiguous_and_cover_the_space(self, pmap):
        ranges = pmap.ranges()
        assert ranges[0][0] == 0
        assert ranges[-1][1] == SPACE
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start  # contiguous: no gap, no overlap
        assert sum(end - start for start, end in ranges) == SPACE

    @given(pmap=partition_maps())
    @settings(max_examples=100)
    def test_ranges_never_overlap(self, pmap):
        ranges = pmap.ranges()
        assert all(start < end for start, end in ranges)
        flat = [value for pair in ranges for value in pair]
        assert flat == sorted(flat)

    @given(pmap=partition_maps())
    @settings(max_examples=50)
    def test_shard_of_key_agrees_with_brute_force(self, pmap):
        ranges = pmap.ranges()
        for value in range(SPACE):
            expected = next(
                shard
                for shard, (start, end) in enumerate(ranges)
                if start <= value < end
            )
            assert pmap.shard_of_value(value) == expected
            key = IdentifierKey(value=value, width=KEY_BITS)
            assert pmap.shard_of_key(key) == expected

    @given(pmap=partition_maps())
    @settings(max_examples=100)
    def test_every_key_belongs_to_exactly_one_range(self, pmap):
        for value in range(0, SPACE, BLOCK):
            containing = [
                shard
                for shard, (start, end) in enumerate(pmap.ranges())
                if start <= value < end
            ]
            assert len(containing) == 1
            assert containing[0] == pmap.shard_of_value(value)


class TestPartitionMapValidation:
    def test_boundaries_must_start_at_zero_and_end_at_space(self):
        with pytest.raises(ValueError):
            _map_from_cuts([1, BLOCKS])
        with pytest.raises(ValueError):
            _map_from_cuts([0, BLOCKS - 1])

    def test_boundaries_must_strictly_increase(self):
        with pytest.raises(ValueError):
            _map_from_cuts([0, 8, 8, BLOCKS])

    def test_boundaries_must_be_block_aligned(self):
        with pytest.raises(ValueError):
            PartitionMap(
                boundaries=[0, BLOCK + 1, SPACE],
                key_bits=KEY_BITS,
                granularity_depth=DEPTH,
            )

    def test_at_least_one_range_required(self):
        with pytest.raises(ValueError):
            PartitionMap(boundaries=[0], key_bits=KEY_BITS, granularity_depth=DEPTH)

    def test_negative_version_rejected(self):
        with pytest.raises(ValueError):
            _map_from_cuts([0, BLOCKS], version=-1)

    def test_granularity_depth_bounded_by_key_bits(self):
        with pytest.raises(ValueError):
            PartitionMap(
                boundaries=[0, SPACE],
                key_bits=KEY_BITS,
                granularity_depth=KEY_BITS + 1,
            )

    def test_out_of_space_value_rejected(self):
        pmap = _map_from_cuts([0, 16, BLOCKS])
        with pytest.raises(ValueError):
            pmap.shard_of_value(SPACE)
        with pytest.raises(ValueError):
            pmap.shard_of_value(-1)

    def test_key_width_mismatch_rejected(self):
        pmap = _map_from_cuts([0, 16, BLOCKS])
        with pytest.raises(ValueError):
            pmap.shard_of_key(IdentifierKey(value=0, width=KEY_BITS + 1))

    def test_equality_covers_version_and_boundaries(self):
        assert _map_from_cuts([0, 16, BLOCKS]) == _map_from_cuts([0, 16, BLOCKS])
        assert _map_from_cuts([0, 16, BLOCKS]) != _map_from_cuts([0, 8, BLOCKS])
        assert _map_from_cuts([0, 16, BLOCKS], version=1) != _map_from_cuts(
            [0, 16, BLOCKS], version=2
        )

    def test_partition_kinds_are_the_cli_vocabulary(self):
        assert PARTITION_KINDS == ("static", "adaptive")


class TestStaticPrefixPartition:
    @pytest.mark.parametrize("shard_count", [1, 2, 4, 8])
    def test_matches_the_top_bits_rule_everywhere(self, shard_count):
        static = StaticPrefixPartition(key_bits=KEY_BITS, shard_count=shard_count)
        shard_bits = shard_count.bit_length() - 1
        assert static.shard_bits == shard_bits
        assert static.shard_count == shard_count
        for value in range(SPACE):
            key = IdentifierKey(value=value, width=KEY_BITS)
            assert static.shard_of_key(key) == key.prefix(shard_bits)
            # The generic bisect path agrees with the prefix fast path.
            assert static.shard_of_value(value) == key.prefix(shard_bits)

    def test_ranges_are_equal_width(self):
        static = StaticPrefixPartition(key_bits=KEY_BITS, shard_count=4)
        widths = {end - start for start, end in static.ranges()}
        assert widths == {SPACE // 4}

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            StaticPrefixPartition(key_bits=KEY_BITS, shard_count=3)

    def test_more_shards_than_keys_rejected(self):
        with pytest.raises(ValueError):
            StaticPrefixPartition(key_bits=2, shard_count=8)

    def test_width_mismatch_rejected_on_the_fast_path(self):
        static = StaticPrefixPartition(key_bits=KEY_BITS, shard_count=4)
        with pytest.raises(ValueError):
            static.shard_of_key(IdentifierKey(value=0, width=KEY_BITS - 1))


block_loads = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=8,
    max_size=8,
)


class TestLoadProportionalCuts:
    def test_uniform_load_cuts_equally(self):
        assert load_proportional_cuts([1.0] * 8, 4) == [0, 2, 4, 6, 8]

    def test_skewed_load_shifts_the_cuts(self):
        # All the load in the first two blocks: the remaining shards share
        # the cold tail but every shard keeps at least one block.
        cuts = load_proportional_cuts([10.0, 10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 4)
        assert cuts[0] == 0 and cuts[-1] == 8
        assert cuts == sorted(set(cuts))
        assert cuts[1] == 1  # the hot half splits across the first shards

    def test_zero_load_degrades_to_equal_width(self):
        assert load_proportional_cuts([0.0] * 8, 4) == [0, 2, 4, 6, 8]

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            load_proportional_cuts([1.0, -1.0, 1.0, 1.0], 2)

    def test_too_few_blocks_rejected(self):
        with pytest.raises(ValueError):
            load_proportional_cuts([1.0, 1.0], 4)

    @given(loads=block_loads, shard_count=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=200)
    def test_cuts_are_always_a_valid_partition(self, loads, shard_count):
        cuts = load_proportional_cuts(loads, shard_count)
        assert cuts[0] == 0 and cuts[-1] == len(loads)
        assert len(cuts) == shard_count + 1
        # Strictly increasing ⇒ every shard keeps at least one block.
        assert all(left < right for left, right in zip(cuts, cuts[1:]))


class TestStepBlockCuts:
    def test_moves_each_cut_at_most_limit(self):
        stepped = step_block_cuts([0, 10, 20, 32], [0, 2, 30, 32], limit=4)
        assert stepped == [0, 6, 24, 32]

    def test_within_limit_snaps_to_target(self):
        assert step_block_cuts([0, 10, 32], [0, 12, 32], limit=4) == [0, 12, 32]

    def test_endpoints_are_fixed(self):
        with pytest.raises(ValueError):
            step_block_cuts([0, 10, 32], [1, 10, 32], limit=4)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            step_block_cuts([0, 10, 32], [0, 10, 20, 32], limit=4)

    @given(
        current=st.sets(st.integers(1, BLOCKS - 1), min_size=3, max_size=3),
        target=st.sets(st.integers(1, BLOCKS - 1), min_size=3, max_size=3),
        limit=st.integers(min_value=1, max_value=BLOCKS),
    )
    @settings(max_examples=200)
    def test_stepping_preserves_validity_and_the_bound(self, current, target, limit):
        current = [0, *sorted(current), BLOCKS]
        target = [0, *sorted(target), BLOCKS]
        stepped = step_block_cuts(current, target, limit)
        assert stepped[0] == 0 and stepped[-1] == BLOCKS
        assert all(left < right for left, right in zip(stepped, stepped[1:]))
        assert all(
            abs(new - old) <= limit for new, old in zip(stepped[1:-1], current[1:-1])
        )


class TestLoadProportionalPartition:
    def test_from_scratch_map_gets_version_one(self):
        pmap = LoadProportionalPartition.from_loads(
            [1.0] * BLOCKS, key_bits=KEY_BITS, shard_count=4
        )
        assert pmap.version == 1
        assert pmap.shard_count == 4
        assert pmap.granularity_depth == DEPTH

    def test_stepping_from_previous_bumps_the_version(self):
        previous = StaticPrefixPartition(key_bits=KEY_BITS, shard_count=4, version=3)
        pmap = LoadProportionalPartition.from_loads(
            [1.0] * BLOCKS, key_bits=KEY_BITS, shard_count=4, previous=previous
        )
        assert pmap.version == 4

    def test_stepping_is_bounded_by_the_block_limit(self):
        previous = StaticPrefixPartition(key_bits=KEY_BITS, shard_count=2)
        # All load in block 0 pulls the single interior cut toward 1; from
        # the midpoint (16) it may move at most block_limit blocks per step.
        loads = [100.0] + [0.0] * (BLOCKS - 1)
        pmap = LoadProportionalPartition.from_loads(
            loads, key_bits=KEY_BITS, shard_count=2, previous=previous, block_limit=4
        )
        assert pmap.boundaries[1] == (16 - 4) * BLOCK

    def test_default_block_limit_applies(self):
        previous = StaticPrefixPartition(key_bits=KEY_BITS, shard_count=2)
        loads = [100.0] + [0.0] * (BLOCKS - 1)
        pmap = LoadProportionalPartition.from_loads(
            loads, key_bits=KEY_BITS, shard_count=2, previous=previous
        )
        assert pmap.boundaries[1] == (16 - DEFAULT_BLOCK_LIMIT) * BLOCK

    def test_previous_shard_count_mismatch_rejected(self):
        previous = StaticPrefixPartition(key_bits=KEY_BITS, shard_count=2)
        with pytest.raises(ValueError):
            LoadProportionalPartition.from_loads(
                [1.0] * BLOCKS, key_bits=KEY_BITS, shard_count=4, previous=previous
            )

    def test_previous_key_bits_mismatch_rejected(self):
        previous = StaticPrefixPartition(key_bits=KEY_BITS + 2, shard_count=2)
        with pytest.raises(ValueError):
            LoadProportionalPartition.from_loads(
                [1.0] * BLOCKS, key_bits=KEY_BITS, shard_count=2, previous=previous
            )

    def test_non_power_of_two_block_count_rejected(self):
        with pytest.raises(ValueError):
            LoadProportionalPartition.from_loads(
                [1.0] * 6, key_bits=KEY_BITS, shard_count=2
            )

    @given(loads=block_loads, shard_count=st.sampled_from([2, 4]))
    @settings(max_examples=100)
    def test_random_profiles_always_yield_valid_maps(self, loads, shard_count):
        pmap = LoadProportionalPartition.from_loads(
            loads, key_bits=KEY_BITS, shard_count=shard_count
        )
        assert pmap.shard_count == shard_count
        assert pmap.boundaries[0] == 0 and pmap.boundaries[-1] == SPACE
        for value in range(0, SPACE, SPACE // len(loads)):
            assert 0 <= pmap.shard_of_value(value) < shard_count
