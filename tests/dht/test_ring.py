"""Unit and behavioural tests for the Chord ring substrate."""

from __future__ import annotations

import pytest

from repro.dht.hashspace import HashSpace
from repro.dht.ring import ChordRing
from repro.keys.hashing import Sha1HashFunction
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream


@pytest.fixture
def ring() -> ChordRing:
    space = HashSpace(bits=16)
    return ChordRing.build(node_count=32, space=space, rng=RandomStream(99))


class TestMembership:
    def test_build_creates_named_nodes(self, ring: ChordRing):
        assert len(ring) == 32
        assert "s0" in ring and "s31" in ring
        assert len(ring.node_names()) == 32

    def test_duplicate_name_rejected(self, ring: ChordRing):
        with pytest.raises(ValueError):
            ring.add_node("s0")

    def test_duplicate_id_rejected(self):
        space = HashSpace(bits=16)
        ring = ChordRing(space=space)
        ring.add_node("a", node_id=100)
        with pytest.raises(ValueError):
            ring.add_node("b", node_id=100)

    def test_remove_node(self, ring: ChordRing):
        ring.remove_node("s5")
        ring.stabilise()
        assert "s5" not in ring
        assert len(ring) == 31

    def test_remove_unknown_node(self, ring: ChordRing):
        with pytest.raises(KeyError):
            ring.remove_node("nope")

    def test_empty_name_rejected(self):
        ring = ChordRing(space=HashSpace(bits=8))
        with pytest.raises(ValueError):
            ring.add_node("")

    def test_node_id_defaults_to_name_hash(self):
        space = HashSpace(bits=16)
        ring = ChordRing(space=space)
        node = ring.add_node("server-x")
        assert node.node_id == ring.hash_function.hash_string("server-x")

    def test_too_many_nodes_for_space(self):
        space = HashSpace(bits=2)
        with pytest.raises(ValueError):
            ChordRing.build(node_count=5, space=space, rng=RandomStream(1))

    def test_hash_function_width_must_match(self):
        with pytest.raises(ValueError):
            ChordRing(space=HashSpace(bits=16), hash_function=Sha1HashFunction(hash_bits=8))


class TestStabilisation:
    def test_ring_order_is_consistent(self, ring: ChordRing):
        ids = ring.node_ids()
        assert ids == sorted(ids)
        names = ring.node_names()
        assert len(names) == len(ids)

    def test_successors_and_predecessors_form_a_cycle(self, ring: ChordRing):
        ids = ring.node_ids()
        for index, node_id in enumerate(ids):
            name = ring.node_names()[index]
            node = ring.node(name)
            assert node.predecessor == ids[(index - 1) % len(ids)]
            assert node.successor == ids[(index + 1) % len(ids)]

    def test_single_node_ring(self):
        ring = ChordRing(space=HashSpace(bits=8))
        ring.add_node("only", node_id=42)
        ring.stabilise()
        node = ring.node("only")
        assert node.successor == 42
        assert node.predecessor == 42
        assert ring.owner_of(7) == "only"

    def test_fingers_point_to_successor_of_start(self, ring: ChordRing):
        space = ring.space
        for name in ring.node_names():
            node = ring.node(name)
            assert len(node.fingers) == space.bits
            for index, finger in enumerate(node.fingers):
                start = space.finger_start(node.node_id, index)
                assert finger == ring.node(ring.owner_of(start)).node_id


class TestLookups:
    def test_owner_matches_find_successor(self, ring: ChordRing):
        rng = RandomStream(7)
        for _ in range(50):
            key = rng.randbits(16)
            assert ring.find_successor(key).owner == ring.owner_of(key)

    def test_lookup_from_any_start_agrees(self, ring: ChordRing):
        rng = RandomStream(8)
        for _ in range(20):
            key = rng.randbits(16)
            owners = {
                ring.find_successor(key, start=start).owner
                for start in ["s0", "s7", "s15", "s31"]
            }
            assert len(owners) == 1

    def test_hops_are_logarithmic(self, ring: ChordRing):
        rng = RandomStream(9)
        hops = [ring.find_successor(rng.randbits(16)).hops for _ in range(200)]
        # 32 nodes -> at most log2(32) + small slack hops on average.
        assert sum(hops) / len(hops) <= 6
        assert max(hops) <= 16

    def test_path_starts_at_start_and_ends_at_owner(self, ring: ChordRing):
        result = ring.find_successor(12345, start="s3")
        assert result.path[0] == "s3"
        assert result.path[-1] == result.owner
        assert result.hops == len(result.path) - 1

    def test_lookup_key_uses_hash_function(self, ring: ChordRing):
        key = IdentifierKey(value=999, width=24)
        expected = ring.owner_of(ring.hash_function.hash_key(key))
        assert ring.lookup_key(key).owner == expected

    def test_owner_is_first_node_clockwise(self):
        ring = ChordRing(space=HashSpace(bits=8))
        for name, node_id in [("a", 10), ("b", 100), ("c", 200)]:
            ring.add_node(name, node_id=node_id)
        ring.stabilise()
        assert ring.owner_of(5) == "a"
        assert ring.owner_of(10) == "a"
        assert ring.owner_of(11) == "b"
        assert ring.owner_of(150) == "c"
        assert ring.owner_of(201) == "a"  # wraps around

    def test_unknown_start_rejected(self, ring: ChordRing):
        with pytest.raises(KeyError):
            ring.find_successor(1, start="unknown")

    def test_validation_runs_before_the_lookup_memo(self, ring: ChordRing):
        """A warm memo entry for the same key must not let an invalid call
        silently succeed where a cold-cache call would raise."""
        key = 12345
        ring.find_successor(key)  # warm the (key, None) memo entry
        with pytest.raises(ValueError):
            ring.find_successor(1 << 16)  # outside the 16-bit space
        with pytest.raises(KeyError):
            ring.find_successor(key, start="ghost")
        ident = IdentifierKey(value=7, width=16)
        ring.lookup_key(ident)  # warm the identifier-key memo entry
        with pytest.raises(KeyError):
            ring.lookup_key(ident, start="ghost")
        # The warm entries themselves still answer correctly.
        assert ring.find_successor(key).owner == ring.owner_of(key)

    def test_empty_ring_rejected(self):
        ring = ChordRing(space=HashSpace(bits=8))
        with pytest.raises(ValueError):
            ring.owner_of(3)

    def test_expected_hops_scales_with_log(self):
        small = ChordRing.build(node_count=8, space=HashSpace(bits=16), rng=RandomStream(1))
        large = ChordRing.build(node_count=128, space=HashSpace(bits=16), rng=RandomStream(2))
        assert large.expected_hops() > small.expected_hops()


class TestLookupMemo:
    def test_overflow_evicts_oldest_not_everything(self, ring: ChordRing):
        ring._memo_limit = 8
        rng = RandomStream(12)
        keys = []
        while len(keys) < 8:
            key = rng.randbits(16)
            if key not in keys:
                keys.append(key)
        expected = {key: ring.find_successor(key) for key in keys}
        assert ring.memo_stats()["entries"] == 8
        # One more distinct key displaces exactly the oldest-inserted entry.
        overflow_key = next(
            key for key in iter(lambda: rng.randbits(16), None) if key not in keys
        )
        ring.find_successor(overflow_key)
        stats = ring.memo_stats()
        assert stats["entries"] == 8
        assert stats["evictions"] == 1
        # The seven hot (most recently inserted) entries survived ...
        hits_before = ring.memo_stats()["hits"]
        for key in keys[1:]:
            result = ring.find_successor(key)
            assert (result.owner, result.hops, result.path) == (
                expected[key].owner,
                expected[key].hops,
                expected[key].path,
            )
        assert ring.memo_stats()["hits"] == hits_before + 7
        # ... and the evicted entry still answers identically when re-walked.
        rewalked = ring.find_successor(keys[0])
        assert (rewalked.owner, rewalked.hops, rewalked.path) == (
            expected[keys[0]].owner,
            expected[keys[0]].hops,
            expected[keys[0]].path,
        )

    def test_memo_stats_counters(self, ring: ChordRing):
        stats = ring.memo_stats()
        assert stats == {
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
            "evictions": 0,
        }
        ring.find_successor(1234)
        ring.find_successor(1234)
        ring.find_successor(1234, start="s3")
        stats = ring.memo_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["entries"] == 2
        ident = IdentifierKey(value=42, width=16)
        ring.lookup_key(ident)
        ring.lookup_key(ident)
        stats = ring.memo_stats()
        # lookup_key memoizes the identifier key and its hash key separately.
        assert stats["hits"] == 2
        assert stats["misses"] == 4
        ring.remove_node("s9")
        ring.stabilise()
        assert ring.memo_stats()["invalidations"] >= 0
        assert ring.stabilise_stats()["incremental_events"] >= 1

    def test_stabilise_stats_count_full_and_incremental_work(self):
        space = HashSpace(bits=16)
        ring = ChordRing.build(node_count=32, space=space, rng=RandomStream(3))
        stats = ring.stabilise_stats()
        assert stats["full_rebuilds"] == 1
        assert stats["finger_recomputations"] == 32 * 16
        assert stats["incremental_events"] == 0
        ring.add_node("late", node_id=next(
            i for i in range(space.size) if i not in set(ring.node_ids())
        ))
        ring.stabilise()
        stats = ring.stabilise_stats()
        assert stats["full_rebuilds"] == 1
        assert stats["incremental_events"] == 1
        # The single join recomputed far fewer fingers than a rebuild would.
        assert stats["finger_recomputations"] < 32 * 16 + 32 * 16 // 3


class TestChurn:
    def test_keys_fall_to_successor_after_leave(self, ring: ChordRing):
        key = 54321
        owner = ring.owner_of(key)
        ring.remove_node(owner)
        ring.stabilise()
        new_owner = ring.owner_of(key)
        assert new_owner != owner
        assert new_owner in ring

    def test_join_takes_over_part_of_interval(self, ring: ChordRing):
        rng = RandomStream(10)
        before = {key: ring.owner_of(key) for key in [rng.randbits(16) for _ in range(100)]}
        ring.add_node("newcomer", node_id=before and sorted(before)[50])
        ring.stabilise()
        changed = sum(1 for key, owner in before.items() if ring.owner_of(key) != owner)
        # A single join must not reshuffle the whole mapping.
        assert changed < len(before) // 2

    def test_lookups_still_converge_after_churn(self, ring: ChordRing):
        rng = RandomStream(11)
        for index in range(5):
            ring.remove_node(f"s{index}")
        ring.stabilise()
        for _ in range(30):
            key = rng.randbits(16)
            assert ring.find_successor(key).owner == ring.owner_of(key)
