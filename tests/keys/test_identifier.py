"""Unit tests for repro.keys.identifier."""

from __future__ import annotations

import pytest

from repro.keys.identifier import IdentifierKey, RandomKeyGenerator
from repro.util.rng import RandomStream


class TestIdentifierKey:
    def test_construction_and_bits(self):
        key = IdentifierKey(value=0b0110101, width=7)
        assert key.bits() == "0110101"
        assert str(key) == "0110101"

    def test_from_bits_round_trip(self):
        key = IdentifierKey.from_bits("0110101")
        assert key.value == 0b0110101
        assert key.width == 7

    def test_from_bits_rejects_invalid(self):
        with pytest.raises(ValueError):
            IdentifierKey.from_bits("01x0")
        with pytest.raises(ValueError):
            IdentifierKey.from_bits("")

    def test_value_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            IdentifierKey(value=128, width=7)
        with pytest.raises(ValueError):
            IdentifierKey(value=-1, width=7)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            IdentifierKey(value=0, width=0)

    def test_prefix(self):
        key = IdentifierKey.from_bits("0110101")
        assert key.prefix(4) == 0b0110
        assert key.prefix(0) == 0
        assert key.prefix(7) == key.value

    def test_common_prefix_length(self):
        a = IdentifierKey.from_bits("0110101")
        b = IdentifierKey.from_bits("0110111")
        assert a.common_prefix_length(b) == 5

    def test_common_prefix_length_requires_same_width(self):
        a = IdentifierKey.from_bits("0110101")
        b = IdentifierKey.from_bits("0110")
        with pytest.raises(ValueError):
            a.common_prefix_length(b)

    def test_with_base_replaces_leading_bits(self):
        key = IdentifierKey.from_bits("0000111")
        replaced = key.with_base(0b101, 3)
        assert replaced.bits() == "1010111"

    def test_with_base_validation(self):
        key = IdentifierKey.from_bits("0000111")
        with pytest.raises(ValueError):
            key.with_base(8, 3)
        with pytest.raises(ValueError):
            key.with_base(0, 8)

    def test_ordering_and_hashability(self):
        a = IdentifierKey(value=3, width=8)
        b = IdentifierKey(value=5, width=8)
        assert a < b
        assert len({a, b, IdentifierKey(value=3, width=8)}) == 2


class TestRandomKeyGenerator:
    def test_uniform_generation_fits_width(self):
        rng = RandomStream(1)
        generator = RandomKeyGenerator(width=24, base_bits=8, rng=rng)
        for _ in range(100):
            key = generator.generate()
            assert key.width == 24
            assert 0 <= key.value < (1 << 24)

    def test_skewed_base_respected(self):
        rng = RandomStream(2)
        weights = [0.0] * 256
        weights[17] = 1.0
        generator = RandomKeyGenerator(width=24, base_bits=8, rng=rng, base_weights=weights)
        for key in generator.generate_many(50):
            assert key.prefix(8) == 17

    def test_generate_many_count(self):
        rng = RandomStream(3)
        generator = RandomKeyGenerator(width=12, base_bits=4, rng=rng)
        assert len(generator.generate_many(7)) == 7
        assert generator.generate_many(0) == []
        with pytest.raises(ValueError):
            generator.generate_many(-1)

    def test_set_base_weights_switches_skew(self):
        rng = RandomStream(4)
        generator = RandomKeyGenerator(width=12, base_bits=4, rng=rng)
        weights = [0.0] * 16
        weights[3] = 1.0
        generator.set_base_weights(weights)
        assert all(key.prefix(4) == 3 for key in generator.generate_many(20))
        generator.set_base_weights(None)
        prefixes = {key.prefix(4) for key in generator.generate_many(200)}
        assert len(prefixes) > 1

    def test_weight_length_validation(self):
        rng = RandomStream(5)
        with pytest.raises(ValueError):
            RandomKeyGenerator(width=12, base_bits=4, rng=rng, base_weights=[1.0] * 15)
        generator = RandomKeyGenerator(width=12, base_bits=4, rng=rng)
        with pytest.raises(ValueError):
            generator.set_base_weights([1.0] * 3)

    def test_base_bits_bounds(self):
        rng = RandomStream(6)
        with pytest.raises(ValueError):
            RandomKeyGenerator(width=8, base_bits=9, rng=rng)
        generator = RandomKeyGenerator(width=8, base_bits=0, rng=rng)
        assert generator.generate().width == 8

    def test_zero_base_bits_is_fully_uniform(self):
        rng = RandomStream(7)
        generator = RandomKeyGenerator(width=10, base_bits=0, rng=rng)
        values = {generator.generate().value for _ in range(200)}
        assert len(values) > 50

    def test_properties(self):
        rng = RandomStream(8)
        generator = RandomKeyGenerator(width=24, base_bits=8, rng=rng)
        assert generator.width == 24
        assert generator.base_bits == 8
