"""Property-based tests for the key-group algebra (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup

WIDTH = 16


@st.composite
def key_groups(draw, width: int = WIDTH):
    depth = draw(st.integers(min_value=0, max_value=width))
    prefix = draw(st.integers(min_value=0, max_value=(1 << depth) - 1)) if depth else 0
    return KeyGroup(prefix=prefix, depth=depth, width=width)


@st.composite
def identifier_keys(draw, width: int = WIDTH):
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return IdentifierKey(value=value, width=width)


class TestSplitProperties:
    @given(group=key_groups())
    @settings(max_examples=200)
    def test_split_children_partition_parent(self, group: KeyGroup):
        if group.depth == group.width:
            return
        left, right = group.split()
        assert left.size + right.size == group.size
        assert not left.overlaps(right)
        assert group.contains_group(left)
        assert group.contains_group(right)

    @given(group=key_groups())
    @settings(max_examples=200)
    def test_left_child_preserves_virtual_key(self, group: KeyGroup):
        if group.depth == group.width:
            return
        left, right = group.split()
        assert left.virtual_key == group.virtual_key
        assert right.virtual_key != group.virtual_key

    @given(group=key_groups())
    @settings(max_examples=200)
    def test_parent_of_children_is_group(self, group: KeyGroup):
        if group.depth == group.width:
            return
        left, right = group.split()
        assert left.parent() == group
        assert right.parent() == group
        assert left.sibling() == right

    @given(group=key_groups(), key=identifier_keys())
    @settings(max_examples=200)
    def test_membership_splits_exactly_one_way(self, group: KeyGroup, key: IdentifierKey):
        if group.depth == group.width or not group.contains_key(key):
            return
        left, right = group.split()
        assert left.contains_key(key) != right.contains_key(key)


class TestMembershipProperties:
    @given(key=identifier_keys(), depth=st.integers(min_value=0, max_value=WIDTH))
    @settings(max_examples=200)
    def test_shape_group_contains_its_key(self, key: IdentifierKey, depth: int):
        group = KeyGroup.from_key(key, depth)
        assert group.contains_key(key)

    @given(key=identifier_keys())
    @settings(max_examples=100)
    def test_groups_along_a_key_form_a_chain(self, key: IdentifierKey):
        groups = [KeyGroup.from_key(key, depth) for depth in range(WIDTH + 1)]
        for shallower, deeper in zip(groups, groups[1:]):
            assert shallower.contains_group(deeper)

    @given(a=key_groups(), b=key_groups())
    @settings(max_examples=300)
    def test_overlap_is_symmetric_and_equals_containment(self, a: KeyGroup, b: KeyGroup):
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlaps(b) == (a.contains_group(b) or b.contains_group(a))

    @given(group=key_groups())
    @settings(max_examples=200)
    def test_wildcard_round_trip(self, group: KeyGroup):
        assert KeyGroup.from_wildcard(group.wildcard(), width=group.width) == group

    @given(group=key_groups())
    @settings(max_examples=200)
    def test_virtual_key_is_member_of_group(self, group: KeyGroup):
        assert group.contains_key(group.virtual_key)


class TestFirstOverlappingPairEquivalence:
    """The linear adjacent-pair scan agrees with the quadratic all-pairs check."""

    @staticmethod
    def _all_pairs_overlap(groups):
        return any(
            a.overlaps(b)
            for i, a in enumerate(groups)
            for b in groups[i + 1 :]
        )

    @given(groups=st.lists(key_groups(), max_size=40))
    @settings(max_examples=300)
    def test_matches_all_pairs_on_random_collections(self, groups):
        from repro.keys.keygroup import first_overlapping_pair

        pair = first_overlapping_pair(groups)
        assert (pair is not None) == self._all_pairs_overlap(groups)
        if pair is not None:
            left, right = pair
            assert left.overlaps(right)

    @given(group=key_groups())
    @settings(max_examples=100)
    def test_detects_parent_child_overlap(self, group: KeyGroup):
        from repro.keys.keygroup import first_overlapping_pair

        if group.depth == group.width:
            return
        left, _right = group.split()
        assert first_overlapping_pair([group, left]) is not None

    def test_prefix_free_partition_is_clean(self):
        from repro.keys.keygroup import first_overlapping_pair

        root = KeyGroup(prefix=0, depth=0, width=WIDTH)
        left, right = root.split()
        leftleft, leftright = left.split()
        assert first_overlapping_pair([leftleft, leftright, right]) is None
        assert first_overlapping_pair([]) is None
