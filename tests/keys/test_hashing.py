"""Unit tests for repro.keys.hashing."""

from __future__ import annotations

import pytest

from repro.keys.hashing import HashFamily, Sha1HashFunction, truncate_hash
from repro.keys.identifier import IdentifierKey


class TestTruncateHash:
    def test_exact_byte_boundary(self):
        assert truncate_hash(bytes([0xAB, 0xCD]), 8) == 0xAB

    def test_sub_byte_truncation(self):
        assert truncate_hash(bytes([0b10110000]), 4) == 0b1011

    def test_requires_enough_bytes(self):
        with pytest.raises(ValueError):
            truncate_hash(bytes([0x01]), 16)

    def test_requires_positive_bits(self):
        with pytest.raises(ValueError):
            truncate_hash(bytes([0x01]), 0)


class TestSha1HashFunction:
    def test_deterministic(self):
        function = Sha1HashFunction(hash_bits=24)
        key = IdentifierKey(value=12345, width=24)
        assert function.hash_key(key) == function.hash_key(key)

    def test_output_within_hash_space(self):
        function = Sha1HashFunction(hash_bits=24)
        for value in range(0, 1 << 16, 997):
            hashed = function.hash_value(value, 24)
            assert 0 <= hashed < (1 << 24)

    def test_different_salts_give_different_functions(self):
        key = IdentifierKey(value=99, width=24)
        a = Sha1HashFunction(hash_bits=24, salt=0)
        b = Sha1HashFunction(hash_bits=24, salt=1)
        assert a.hash_key(key) != b.hash_key(key)

    def test_width_is_part_of_the_input(self):
        # The same numeric value at different key widths is a different key.
        function = Sha1HashFunction(hash_bits=24)
        assert function.hash_value(5, 8) != function.hash_value(5, 24)

    def test_hash_string(self):
        function = Sha1HashFunction(hash_bits=16)
        assert 0 <= function.hash_string("s25") < (1 << 16)
        assert function.hash_string("s25") != function.hash_string("s26")

    def test_mixing_over_consecutive_values(self):
        """Consecutive identifier keys should land far apart (no locality)."""
        function = Sha1HashFunction(hash_bits=24)
        outputs = [function.hash_value(value, 24) for value in range(64)]
        assert len(set(outputs)) == 64

    def test_invalid_hash_bits(self):
        with pytest.raises(ValueError):
            Sha1HashFunction(hash_bits=0)

    def test_properties(self):
        function = Sha1HashFunction(hash_bits=24, salt=3)
        assert function.hash_bits == 24
        assert function.salt == 3


class TestHashFamily:
    def test_family_size(self):
        family = HashFamily(hash_bits=24, count=4)
        assert len(family) == 4

    def test_members_are_independent(self):
        family = HashFamily(hash_bits=24, count=3)
        key = IdentifierKey(value=4242, width=24)
        values = family.hash_key_all(key)
        assert len(values) == 3
        assert len(set(values)) == 3

    def test_indexing_and_iteration(self):
        family = HashFamily(hash_bits=16, count=2)
        assert family[0].salt == 0
        assert family[1].salt == 1
        assert [function.salt for function in family] == [0, 1]

    def test_requires_positive_count(self):
        with pytest.raises(ValueError):
            HashFamily(hash_bits=16, count=0)
