"""Property-based tests for the quad-tree key encoder (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.keys.keygroup import KeyGroup
from repro.keys.quadtree import QuadTreeEncoder

LEVELS = 8
ENCODER = QuadTreeEncoder(levels=LEVELS)

coordinates = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False, allow_infinity=False)


class TestQuadTreeProperties:
    @given(x=coordinates, y=coordinates)
    @settings(max_examples=200)
    def test_decode_cell_contains_encoded_point(self, x: float, y: float):
        key = ENCODER.encode(x, y)
        assert ENCODER.decode_cell(key).contains(x, y)

    @given(x=coordinates, y=coordinates, levels=st.integers(min_value=1, max_value=LEVELS))
    @settings(max_examples=200)
    def test_prefix_cells_nest(self, x: float, y: float, levels: int):
        key = ENCODER.encode(x, y)
        outer = ENCODER.decode_cell(key, depth=2 * (levels - 1)) if levels > 1 else None
        inner = ENCODER.decode_cell(key, depth=2 * levels)
        if outer is not None:
            assert outer.x_min <= inner.x_min and inner.x_max <= outer.x_max
            assert outer.y_min <= inner.y_min and inner.y_max <= outer.y_max

    @given(x=coordinates, y=coordinates)
    @settings(max_examples=200)
    def test_cell_dimensions_match_depth(self, x: float, y: float):
        key = ENCODER.encode(x, y)
        cell = ENCODER.decode_cell(key)
        assert abs(cell.width - 1.0 / (1 << LEVELS)) < 1e-12
        assert abs(cell.height - 1.0 / (1 << LEVELS)) < 1e-12

    @given(x=coordinates, y=coordinates, depth=st.integers(min_value=0, max_value=LEVELS))
    @settings(max_examples=200)
    def test_group_cell_agrees_with_key_membership(self, x: float, y: float, depth: int):
        """A point is inside a group's cell iff its key is inside the group."""
        key = ENCODER.encode(x, y)
        group = KeyGroup.from_key(key, 2 * depth)
        cell = ENCODER.group_cell(group)
        assert cell.contains(x, y)

    @given(x1=coordinates, y1=coordinates, x2=coordinates, y2=coordinates)
    @settings(max_examples=200)
    def test_shared_prefix_implies_shared_cell(self, x1, y1, x2, y2):
        key1 = ENCODER.encode(x1, y1)
        key2 = ENCODER.encode(x2, y2)
        common = key1.common_prefix_length(key2)
        common_even = common - (common % 2)
        if common_even == 0:
            return
        cell = ENCODER.decode_cell(key1, depth=common_even)
        assert cell.contains(x2, y2)
