"""Unit tests for repro.keys.keygroup (the paper's Section 4 examples)."""

from __future__ import annotations

import pytest

from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup


class TestConstruction:
    def test_root_group(self):
        root = KeyGroup.root(width=7)
        assert root.depth == 0
        assert root.size == 128
        assert root.wildcard() == "*"

    def test_from_wildcard_paper_example(self):
        group = KeyGroup.from_wildcard("0110*", width=7)
        assert group.depth == 4
        assert group.prefix == 0b0110
        assert group.virtual_key.bits() == "0110000"

    def test_from_wildcard_full_depth(self):
        group = KeyGroup.from_wildcard("0110101", width=7)
        assert group.depth == 7
        assert group.size == 1

    def test_from_wildcard_rejects_bad_patterns(self):
        with pytest.raises(ValueError):
            KeyGroup.from_wildcard("01x*", width=7)
        with pytest.raises(ValueError):
            KeyGroup.from_wildcard("01101011*", width=7)

    def test_from_key_is_shape_function(self):
        key = IdentifierKey.from_bits("0110101")
        group = KeyGroup.from_key(key, depth=4)
        assert group == KeyGroup.from_wildcard("0110*", width=7)

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            KeyGroup(prefix=0b10000, depth=4, width=7)

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            KeyGroup(prefix=0, depth=8, width=7)
        with pytest.raises(ValueError):
            KeyGroup(prefix=0, depth=-1, width=7)


class TestIdentityAndRepresentation:
    def test_virtual_key_pads_with_zeros(self):
        # Paper: key group "0110*" has virtual key "0110000" (decimal 48).
        group = KeyGroup.from_wildcard("0110*", width=7)
        assert group.virtual_key.value == 48

    def test_size_formula(self):
        # A depth-d group over N-bit keys contains 2^(N-d) keys.
        group = KeyGroup.from_wildcard("11*", width=7)
        assert group.size == 2 ** 5

    def test_wildcard_round_trip(self):
        for pattern in ["*", "0*", "0110*", "0110101"]:
            group = KeyGroup.from_wildcard(pattern, width=7)
            assert KeyGroup.from_wildcard(group.wildcard(), width=7) == group

    def test_str_contains_depth(self):
        assert "depth=4" in str(KeyGroup.from_wildcard("0110*", width=7))

    def test_ordering_is_by_virtual_key(self):
        a = KeyGroup.from_wildcard("0*", width=4)
        b = KeyGroup.from_wildcard("1*", width=4)
        assert a < b
        assert sorted([b, a]) == [a, b]


class TestMembership:
    def test_contains_key_paper_example(self):
        # "0110*" includes the 7-bit identifiers "0110101" and "0110111".
        group = KeyGroup.from_wildcard("0110*", width=7)
        assert group.contains_key(IdentifierKey.from_bits("0110101"))
        assert group.contains_key(IdentifierKey.from_bits("0110111"))
        assert not group.contains_key(IdentifierKey.from_bits("0111111"))

    def test_contains_key_rejects_width_mismatch(self):
        group = KeyGroup.from_wildcard("0110*", width=7)
        with pytest.raises(ValueError):
            group.contains_key(IdentifierKey.from_bits("01101010"))

    def test_contains_group_nesting(self):
        # "111*" is contained in "11*" (paper Section 3).
        outer = KeyGroup.from_wildcard("11*", width=7)
        inner = KeyGroup.from_wildcard("111*", width=7)
        assert outer.contains_group(inner)
        assert not inner.contains_group(outer)
        assert outer.is_ancestor_of(inner)
        assert not outer.is_ancestor_of(outer)

    def test_overlaps(self):
        a = KeyGroup.from_wildcard("01*", width=7)
        b = KeyGroup.from_wildcard("011*", width=7)
        c = KeyGroup.from_wildcard("10*", width=7)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_overlaps_rejects_width_mismatch(self):
        with pytest.raises(ValueError):
            KeyGroup.root(4).overlaps(KeyGroup.root(5))


class TestSplittingAlgebra:
    def test_split_paper_example(self):
        # Expanding "0110*" (depth 4) creates "01100*" and "01101*" (depth 5);
        # the left child keeps the parent's virtual key.
        parent = KeyGroup.from_wildcard("0110*", width=7)
        left, right = parent.split()
        assert left == KeyGroup.from_wildcard("01100*", width=7)
        assert right == KeyGroup.from_wildcard("01101*", width=7)
        assert left.virtual_key == parent.virtual_key
        assert right.virtual_key != parent.virtual_key
        assert right.virtual_key.value == 0b0110100

    def test_split_halves_the_group(self):
        parent = KeyGroup.from_wildcard("0110*", width=7)
        left, right = parent.split()
        assert left.size == right.size == parent.size // 2

    def test_split_at_full_depth_rejected(self):
        with pytest.raises(ValueError):
            KeyGroup.from_wildcard("0110101", width=7).split()

    def test_parent_inverts_split(self):
        parent = KeyGroup.from_wildcard("0110*", width=7)
        left, right = parent.split()
        assert left.parent() == parent
        assert right.parent() == parent

    def test_parent_of_root_rejected(self):
        with pytest.raises(ValueError):
            KeyGroup.root(7).parent()

    def test_sibling(self):
        left = KeyGroup.from_wildcard("01100*", width=7)
        right = KeyGroup.from_wildcard("01101*", width=7)
        assert left.sibling() == right
        assert right.sibling() == left

    def test_sibling_of_root_rejected(self):
        with pytest.raises(ValueError):
            KeyGroup.root(7).sibling()

    def test_left_right_child_predicates(self):
        left = KeyGroup.from_wildcard("01100*", width=7)
        right = KeyGroup.from_wildcard("01101*", width=7)
        assert left.is_left_child() and not left.is_right_child()
        assert right.is_right_child() and not right.is_left_child()
        with pytest.raises(ValueError):
            KeyGroup.root(7).is_left_child()

    def test_child_selector(self):
        parent = KeyGroup.from_wildcard("0110*", width=7)
        assert parent.child(0) == parent.split()[0]
        assert parent.child(1) == parent.split()[1]
        with pytest.raises(ValueError):
            parent.child(2)

    def test_descend_towards(self):
        parent = KeyGroup.from_wildcard("011*", width=7)
        key = IdentifierKey.from_bits("0110101")
        descendant = parent.descend_towards(key, 6)
        assert descendant.depth == 6
        assert descendant.contains_key(key)
        assert parent.contains_group(descendant)

    def test_descend_towards_validation(self):
        parent = KeyGroup.from_wildcard("011*", width=7)
        outside = IdentifierKey.from_bits("1110101")
        with pytest.raises(ValueError):
            parent.descend_towards(outside, 5)
        inside = IdentifierKey.from_bits("0110101")
        with pytest.raises(ValueError):
            parent.descend_towards(inside, 2)

    def test_figure1_tree_construction(self):
        """Recreate the Figure 1 splitting sequence starting from '011*'."""
        root = KeyGroup.from_wildcard("011*", width=7)
        g0110, g0111 = root.split()
        assert g0110.wildcard() == "0110*"
        assert g0111.wildcard() == "0111*"
        g01110, g01111 = g0111.split()
        assert g01110.wildcard() == "01110*"
        assert g01111.wildcard() == "01111*"
        g011100, g011101 = g01110.split()
        assert g011100.wildcard() == "011100*"
        assert g011101.wildcard() == "011101*"
        # The four leaves of Figure 1 are mutually prefix-free and cover "011*".
        leaves = [g0110, g011100, g011101, g01111]
        for index, leaf in enumerate(leaves):
            for other in leaves[index + 1 :]:
                assert not leaf.overlaps(other)
        assert sum(leaf.size for leaf in leaves) == root.size
