"""Unit tests for repro.keys.quadtree."""

from __future__ import annotations

import pytest

from repro.keys.keygroup import KeyGroup
from repro.keys.quadtree import GridCell, QuadTreeEncoder


class TestGridCell:
    def test_contains(self):
        cell = GridCell(x_min=0.0, x_max=0.5, y_min=0.5, y_max=1.0)
        assert cell.contains(0.25, 0.75)
        assert not cell.contains(0.75, 0.75)
        assert not cell.contains(0.25, 0.25)

    def test_dimensions_and_centre(self):
        cell = GridCell(x_min=0.0, x_max=0.5, y_min=0.0, y_max=0.25)
        assert cell.width == pytest.approx(0.5)
        assert cell.height == pytest.approx(0.25)
        assert cell.centre == (pytest.approx(0.25), pytest.approx(0.125))

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            GridCell(x_min=0.5, x_max=0.5, y_min=0.0, y_max=1.0)
        with pytest.raises(ValueError):
            GridCell(x_min=0.0, x_max=1.0, y_min=0.9, y_max=0.8)


class TestQuadTreeEncoder:
    def test_key_width_is_two_bits_per_level(self):
        assert QuadTreeEncoder(levels=12).key_width == 24

    def test_levels_must_be_positive(self):
        with pytest.raises(ValueError):
            QuadTreeEncoder(levels=0)

    def test_quadrant_labels_at_first_level(self):
        encoder = QuadTreeEncoder(levels=1)
        assert encoder.encode(0.1, 0.1).bits() == "00"  # south-west
        assert encoder.encode(0.9, 0.1).bits() == "01"  # south-east
        assert encoder.encode(0.1, 0.9).bits() == "10"  # north-west
        assert encoder.encode(0.9, 0.9).bits() == "11"  # north-east

    def test_encode_rejects_points_outside_unit_square(self):
        encoder = QuadTreeEncoder(levels=3)
        with pytest.raises(ValueError):
            encoder.encode(1.0, 0.5)
        with pytest.raises(ValueError):
            encoder.encode(0.5, -0.1)

    def test_decode_cell_contains_original_point(self):
        encoder = QuadTreeEncoder(levels=6)
        points = [(0.12, 0.34), (0.9, 0.01), (0.5, 0.5), (0.999, 0.999)]
        for x, y in points:
            key = encoder.encode(x, y)
            cell = encoder.decode_cell(key)
            assert cell.contains(x, y)

    def test_deeper_prefixes_nest_spatially(self):
        encoder = QuadTreeEncoder(levels=6)
        key = encoder.encode(0.3, 0.7)
        outer = encoder.decode_cell(key, depth=2)
        inner = encoder.decode_cell(key, depth=8)
        assert outer.x_min <= inner.x_min and inner.x_max <= outer.x_max
        assert outer.y_min <= inner.y_min and inner.y_max <= outer.y_max
        assert inner.width < outer.width

    def test_decode_requires_even_depth(self):
        encoder = QuadTreeEncoder(levels=4)
        key = encoder.encode(0.2, 0.2)
        with pytest.raises(ValueError):
            encoder.decode_cell(key, depth=3)

    def test_decode_rejects_wrong_width_key(self):
        encoder = QuadTreeEncoder(levels=4)
        other = QuadTreeEncoder(levels=3).encode(0.2, 0.2)
        with pytest.raises(ValueError):
            encoder.decode_cell(other)

    def test_cell_size_shrinks_exponentially(self):
        encoder = QuadTreeEncoder(levels=8)
        key = encoder.encode(0.3141, 0.2718)
        full_cell = encoder.decode_cell(key)
        assert full_cell.width == pytest.approx(1.0 / 256)
        assert full_cell.height == pytest.approx(1.0 / 256)

    def test_group_cell_matches_decode(self):
        encoder = QuadTreeEncoder(levels=5)
        key = encoder.encode(0.61, 0.37)
        group = KeyGroup.from_key(key, depth=4)
        assert encoder.group_cell(group) == encoder.decode_cell(key, depth=4)

    def test_cell_group_contains_point_key(self):
        encoder = QuadTreeEncoder(levels=5)
        group = encoder.cell_group(0.61, 0.37, depth=6)
        assert group.contains_key(encoder.encode(0.61, 0.37))

    def test_nearby_points_share_prefixes(self):
        """Spatial locality translates into common key prefixes (Section 3)."""
        encoder = QuadTreeEncoder(levels=10)
        a = encoder.encode(0.40001, 0.40001)
        b = encoder.encode(0.40002, 0.40002)
        far = encoder.encode(0.9, 0.1)
        assert a.common_prefix_length(b) > a.common_prefix_length(far)
