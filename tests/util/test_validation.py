"""Unit tests for repro.util.validation."""

from __future__ import annotations

import pytest

from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        check_type("x", 3, int)
        check_type("x", "hello", str)
        check_type("x", 3.5, (int, float))

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "3", int)

    def test_rejects_bool_for_int(self):
        with pytest.raises(TypeError, match="x must be an int"):
            check_type("x", True, int)

    def test_tuple_of_types_in_message(self):
        with pytest.raises(TypeError):
            check_type("x", None, (int, str))


class TestNumericChecks:
    def test_check_positive(self):
        check_positive("x", 0.1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError, match="x must be non-negative"):
            check_non_negative("x", -0.1)

    def test_check_in_range(self):
        check_in_range("x", 5, 0, 10)
        check_in_range("x", 0, 0, 10)
        check_in_range("x", 10, 0, 10)
        with pytest.raises(ValueError, match="x must be in"):
            check_in_range("x", 11, 0, 10)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)
        with pytest.raises(ValueError):
            check_probability("p", -0.01)
