"""Unit tests for repro.util.stats."""

from __future__ import annotations

import math

import pytest

from repro.util.stats import (
    OnlineStats,
    Percentiles,
    TimeSeries,
    WindowedCounter,
    mean,
    percentile,
)


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert mean([5.0]) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3.0, 1.0, 2.0], 50) == pytest.approx(2.0)

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 90) == 7.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestOnlineStats:
    def test_mean_and_variance(self):
        stats = OnlineStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(4.0)
        assert stats.stddev == pytest.approx(2.0)

    def test_min_max(self):
        stats = OnlineStats()
        stats.extend([3.0, -1.0, 10.0])
        assert stats.minimum == -1.0
        assert stats.maximum == 10.0

    def test_empty_behaviour(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        with pytest.raises(ValueError):
            _ = stats.minimum
        with pytest.raises(ValueError):
            _ = stats.maximum

    def test_single_observation_has_zero_variance(self):
        stats = OnlineStats()
        stats.add(4.2)
        assert stats.variance == 0.0

    def test_as_dict_keys(self):
        stats = OnlineStats()
        stats.add(1.0)
        assert set(stats.as_dict()) == {"count", "mean", "stddev", "min", "max"}


class TestPercentiles:
    def test_from_values(self):
        snapshot = Percentiles.from_values(list(range(101)))
        assert snapshot.p50 == pytest.approx(50.0)
        assert snapshot.p90 == pytest.approx(90.0)
        assert snapshot.p99 == pytest.approx(99.0)
        assert snapshot.maximum == 100.0


class TestTimeSeries:
    def test_append_and_iterate(self):
        series = TimeSeries(name="load")
        series.append(0.0, 1.0)
        series.append(10.0, 2.0)
        assert list(series) == [(0.0, 1.0), (10.0, 2.0)]
        assert len(series) == 2

    def test_rejects_time_going_backwards(self):
        series = TimeSeries(name="load")
        series.append(10.0, 1.0)
        with pytest.raises(ValueError):
            series.append(5.0, 2.0)

    def test_latest(self):
        series = TimeSeries(name="load")
        series.append(1.0, 5.0)
        series.append(2.0, 6.0)
        assert series.latest() == (2.0, 6.0)

    def test_latest_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(name="x").latest()

    def test_value_stats(self):
        series = TimeSeries(name="x")
        for index in range(5):
            series.append(float(index), float(index))
        assert series.value_stats().mean == pytest.approx(2.0)

    def test_resample_mean(self):
        series = TimeSeries(name="x")
        for index in range(6):
            series.append(float(index), float(index))
        resampled = series.resample_mean(2.0)
        assert resampled.values == [pytest.approx(0.5), pytest.approx(2.5), pytest.approx(4.5)]

    def test_resample_requires_positive_width(self):
        with pytest.raises(ValueError):
            TimeSeries(name="x").resample_mean(0.0)

    def test_resample_empty_series(self):
        assert len(TimeSeries(name="x").resample_mean(10.0)) == 0

    def test_resample_with_gap(self):
        series = TimeSeries(name="x")
        series.append(0.0, 1.0)
        series.append(10.0, 3.0)
        resampled = series.resample_mean(2.0)
        assert resampled.values[0] == pytest.approx(1.0)
        assert resampled.values[-1] == pytest.approx(3.0)


class TestWindowedCounter:
    def test_rate_computation(self):
        counter = WindowedCounter()
        counter.add(10)
        counter.add(20)
        assert counter.window_total == 30
        assert counter.roll_window(10.0) == pytest.approx(3.0)
        assert counter.window_total == 0
        assert counter.grand_total == 30

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            WindowedCounter().add(-1)

    def test_rejects_non_positive_window(self):
        counter = WindowedCounter()
        with pytest.raises(ValueError):
            counter.roll_window(0.0)

    def test_multiple_windows_accumulate_grand_total(self):
        counter = WindowedCounter()
        counter.add(5)
        counter.roll_window(1.0)
        counter.add(7)
        counter.roll_window(1.0)
        assert counter.grand_total == 12
