"""Unit tests for repro.util.rng."""

from __future__ import annotations

import pytest

from repro.util.rng import RandomStream, SeedSequenceFactory


class TestRandomStream:
    def test_determinism(self):
        a = RandomStream(7)
        b = RandomStream(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = RandomStream(7)
        b = RandomStream(8)
        assert [a.randbits(16) for _ in range(10)] != [b.randbits(16) for _ in range(10)]

    def test_seed_property(self):
        assert RandomStream(42).seed == 42

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStream("seed")

    def test_uniform_bounds(self):
        stream = RandomStream(1)
        for _ in range(100):
            value = stream.uniform(2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_randint_bounds(self):
        stream = RandomStream(1)
        values = [stream.randint(3, 5) for _ in range(200)]
        assert set(values) == {3, 4, 5}

    def test_randint_invalid_range(self):
        with pytest.raises(ValueError):
            RandomStream(1).randint(5, 3)

    def test_randbits_width_zero(self):
        assert RandomStream(1).randbits(0) == 0

    def test_randbits_within_width(self):
        stream = RandomStream(1)
        for _ in range(100):
            assert 0 <= stream.randbits(8) < 256

    def test_randbits_negative_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).randbits(-1)

    def test_exponential_mean(self):
        stream = RandomStream(2)
        samples = [stream.exponential(100.0) for _ in range(5000)]
        assert 90 < sum(samples) / len(samples) < 110

    def test_exponential_requires_positive_mean(self):
        with pytest.raises(ValueError):
            RandomStream(1).exponential(0.0)

    def test_poisson_mean_small(self):
        stream = RandomStream(3)
        samples = [stream.poisson(3.0) for _ in range(5000)]
        assert 2.8 < sum(samples) / len(samples) < 3.2

    def test_poisson_mean_large_uses_normal_approximation(self):
        stream = RandomStream(3)
        samples = [stream.poisson(200.0) for _ in range(2000)]
        assert 195 < sum(samples) / len(samples) < 205

    def test_poisson_zero(self):
        assert RandomStream(1).poisson(0.0) == 0

    def test_poisson_negative_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).poisson(-1.0)

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).choice([])

    def test_sample_pmf_respects_weights(self):
        stream = RandomStream(4)
        counts = [0, 0, 0]
        for _ in range(3000):
            counts[stream.sample_pmf([1.0, 0.0, 3.0])] += 1
        assert counts[1] == 0
        assert counts[2] > counts[0]

    def test_sample_pmf_rejects_zero_total(self):
        with pytest.raises(ValueError):
            RandomStream(1).sample_pmf([0.0, 0.0])

    def test_sample_pmf_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            RandomStream(1).sample_pmf([1.0, -0.5])

    def test_spawn_is_deterministic(self):
        a = RandomStream(9).spawn("child")
        b = RandomStream(9).spawn("child")
        assert a.randbits(32) == b.randbits(32)


class TestSeedSequenceFactory:
    def test_streams_are_independent_by_name(self):
        factory = SeedSequenceFactory(11)
        assert factory.seed_for("sources") != factory.seed_for("queries")

    def test_same_name_same_seed(self):
        assert SeedSequenceFactory(11).seed_for("x") == SeedSequenceFactory(11).seed_for("x")

    def test_master_seed_changes_everything(self):
        assert SeedSequenceFactory(11).seed_for("x") != SeedSequenceFactory(12).seed_for("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(11).seed_for("")

    def test_streams_helper(self):
        streams = SeedSequenceFactory(11).streams(["a", "b"])
        assert set(streams) == {"a", "b"}
        assert streams["a"].randbits(16) != streams["b"].randbits(16) or True

    def test_non_int_master_seed_rejected(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory("nope")

    def test_master_seed_property(self):
        assert SeedSequenceFactory(5).master_seed == 5
