"""Unit tests for repro.util.bitops."""

from __future__ import annotations

import pytest

from repro.util.bitops import (
    bit_length_mask,
    bits_to_int,
    common_prefix_length,
    extract_prefix,
    int_to_bits,
    is_prefix_of,
    pad_prefix_to_width,
    reverse_bits,
    set_bit,
)
from repro.util.bitops import test_bit as bit_at  # aliased: pytest must not collect it


class TestBitLengthMask:
    def test_zero_width(self):
        assert bit_length_mask(0) == 0

    def test_small_widths(self):
        assert bit_length_mask(1) == 1
        assert bit_length_mask(4) == 0b1111
        assert bit_length_mask(24) == (1 << 24) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            bit_length_mask(-1)

    def test_non_int_width_rejected(self):
        with pytest.raises(TypeError):
            bit_length_mask(3.5)


class TestIntToBits:
    def test_paper_example(self):
        assert int_to_bits(0b0110, 4) == "0110"

    def test_leading_zeros_preserved(self):
        assert int_to_bits(1, 7) == "0000001"

    def test_zero_width(self):
        assert int_to_bits(0, 0) == ""

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            int_to_bits(True, 4)


class TestBitsToInt:
    def test_round_trip(self):
        for value in [0, 1, 6, 53, 127]:
            assert bits_to_int(int_to_bits(value, 7)) == value

    def test_empty_string(self):
        assert bits_to_int("") == 0

    def test_invalid_characters_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int("0120")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            bits_to_int(0b0101)


class TestExtractPrefix:
    def test_paper_example(self):
        # "0110101" with depth 4 has prefix "0110" = 6.
        assert extract_prefix(0b0110101, 7, 4) == 0b0110

    def test_full_depth_is_identity(self):
        assert extract_prefix(0b0110101, 7, 7) == 0b0110101

    def test_zero_depth(self):
        assert extract_prefix(0b0110101, 7, 0) == 0

    def test_depth_out_of_range(self):
        with pytest.raises(ValueError):
            extract_prefix(0b0110101, 7, 8)


class TestPadPrefixToWidth:
    def test_paper_example(self):
        # Key group "0110*" over 7-bit keys has virtual key "0110000" = 48.
        assert pad_prefix_to_width(0b0110, 4, 7) == 0b0110000
        assert pad_prefix_to_width(0b0110, 4, 7) == 48

    def test_right_child_virtual_key(self):
        # "01101*" expands to "0110100" = 52 (the paper says decimal 54 for the
        # string "0110110"; the worked number here checks our own arithmetic).
        assert pad_prefix_to_width(0b01101, 5, 7) == 0b0110100

    def test_extract_is_inverse(self):
        padded = pad_prefix_to_width(0b101, 3, 10)
        assert extract_prefix(padded, 10, 3) == 0b101

    def test_prefix_too_large_rejected(self):
        with pytest.raises(ValueError):
            pad_prefix_to_width(0b1000, 3, 7)


class TestIsPrefixOf:
    def test_positive_case(self):
        assert is_prefix_of(0b0110, 4, 0b0110101, 7)

    def test_negative_case(self):
        assert not is_prefix_of(0b0111, 4, 0b0110101, 7)

    def test_zero_depth_matches_everything(self):
        assert is_prefix_of(0, 0, 0b1111111, 7)


class TestCommonPrefixLength:
    def test_identical_values(self):
        assert common_prefix_length(0b0110101, 0b0110101, 7) == 7

    def test_paper_server_table_example(self):
        # "0101010" vs "0101100": common prefix is "0101" -> length 4.
        assert common_prefix_length(0b0101010, 0b0101100, 7) == 4

    def test_differ_in_first_bit(self):
        assert common_prefix_length(0b1000000, 0b0000000, 7) == 0

    def test_symmetry(self):
        assert common_prefix_length(0b0011, 0b0010, 4) == common_prefix_length(
            0b0010, 0b0011, 4
        )


class TestBitAccess:
    def test_test_bit_msb_first(self):
        assert bit_at(0b1000000, 7, 0) is True
        assert bit_at(0b1000000, 7, 6) is False

    def test_set_bit_round_trip(self):
        value = 0b0000000
        value = set_bit(value, 7, 2, True)
        assert value == 0b0010000
        assert bit_at(value, 7, 2) is True
        value = set_bit(value, 7, 2, False)
        assert value == 0

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            bit_at(0, 4, 4)
        with pytest.raises(ValueError):
            set_bit(0, 4, -1, True)


class TestReverseBits:
    def test_palindrome(self):
        assert reverse_bits(0b1001, 4) == 0b1001

    def test_simple(self):
        assert reverse_bits(0b1000, 4) == 0b0001

    def test_involution(self):
        for value in range(16):
            assert reverse_bits(reverse_bits(value, 4), 4) == value
