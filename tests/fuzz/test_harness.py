"""FuzzCase round trips and record→replay bit-identity."""

from __future__ import annotations

import pytest

from repro.fuzz.harness import FuzzCase, run_case
from repro.fuzz.oracle import build_oracle
from repro.net.replay import ReplaySchedule, ReplayTransport


class TestFuzzCase:
    def test_dict_round_trip(self):
        case = FuzzCase(
            transport="event",
            seed=99,
            delivery_seed=None,
            churn_seed=7,
            join_rate=0.02,
            fail_rate=0.01,
            shards=2,
            scale_factor=50,
            phase_periods=3,
        )
        assert FuzzCase.from_dict(case.to_dict()) == case

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            FuzzCase.from_dict({"transport": "async", "warp_factor": 9})

    def test_case_id_distinguishes_axes(self):
        base = FuzzCase(transport="async", seed=1)
        assert base.case_id() != FuzzCase(transport="async", seed=2).case_id()
        assert (
            FuzzCase(transport="async", seed=1, delivery_seed=5).case_id()
            != base.case_id()
        )
        assert FuzzCase(transport="async", seed=1, shards=4).case_id() != base.case_id()

    def test_case_id_carries_the_partition_axis(self):
        static = FuzzCase(transport="async", seed=1, shards=4)
        adaptive = FuzzCase(transport="async", seed=1, shards=4, partition="adaptive")
        assert adaptive.case_id() != static.case_id()
        assert adaptive.case_id().endswith("adaptive")
        # The default mode stays out of the id so existing artifact names
        # (and the golden fuzz reports) are unchanged.
        assert "static" not in static.case_id()

    def test_scale_carries_case_axes(self):
        case = FuzzCase(
            transport="event", seed=42, join_rate=0.05, fail_rate=0.01, shards=2
        )
        scale = case.scale()
        assert scale.transport == "event"
        assert scale.seed == 42
        assert scale.join_rate == 0.05
        assert scale.shards == 2

    def test_scale_carries_the_partition(self):
        case = FuzzCase(transport="event", shards=4, partition="adaptive")
        assert case.scale().partition == "adaptive"

    def test_replay_build_swaps_async_to_replay_transport(self):
        case = FuzzCase(transport="async", scale_factor=100, phase_periods=1)
        simulator = case.build_simulator(schedule=ReplaySchedule())
        try:
            assert isinstance(simulator.transport, ReplayTransport)
        finally:
            simulator.transport.close()


class TestRecordReplayBitIdentity:
    @pytest.mark.parametrize("transport", ["async", "event"])
    def test_churned_run_replays_bit_identically(self, transport):
        case = FuzzCase(
            transport=transport,
            seed=20040324,
            delivery_seed=11 if transport == "async" else None,
            churn_seed=3,
            join_rate=0.01,
            fail_rate=0.01,
            scale_factor=100,
            phase_periods=1,
        )
        recorded = run_case(case, oracle=build_oracle("invariants"), record=True)
        assert recorded.violation is None
        assert recorded.result is not None
        assert recorded.trace.churn  # churn rates high enough to fire events
        replayed = run_case(
            case,
            oracle=build_oracle("invariants"),
            schedule=recorded.trace.schedule(),
        )
        assert replayed.violation is None
        assert replayed.result.diff(recorded.result) == []

    @pytest.mark.parametrize("transport", ["async", "event"])
    def test_adaptive_run_replays_its_rebalances_bit_identically(self, transport):
        """A recorded adaptive run pins its partition history: the replay
        installs the recorded maps verbatim instead of recomputing them, and
        the sample streams must still match bit for bit."""
        case = FuzzCase(
            transport=transport,
            seed=20040324,
            delivery_seed=11 if transport == "async" else None,
            shards=4,
            partition="adaptive",
            scale_factor=100,
            phase_periods=2,
        )
        recorded = run_case(case, oracle=build_oracle("invariants"), record=True)
        assert recorded.violation is None
        assert recorded.trace.rebalances  # skewed workloads always move a cut
        versions = [event.version for event in recorded.trace.rebalances]
        assert versions == sorted(versions)
        replayed = run_case(
            case,
            oracle=build_oracle("invariants"),
            schedule=recorded.trace.schedule(),
        )
        assert replayed.violation is None
        assert replayed.result.diff(recorded.result) == []

    def test_static_recording_pins_an_empty_rebalance_schedule(self):
        case = FuzzCase(transport="event", shards=2, scale_factor=100, phase_periods=1)
        recorded = run_case(case, record=True)
        # Recorded (not None) but empty: the replay knows the run installed
        # no maps, rather than being free to recompute its own.
        assert recorded.trace.rebalances == ()

    def test_recording_captures_tie_draws_on_async(self):
        case = FuzzCase(
            transport="async", delivery_seed=5, scale_factor=100, phase_periods=1
        )
        recorded = run_case(case, record=True)
        assert len(recorded.trace.ties) > 0
        assert all(0.0 <= value <= 1.0 for value in recorded.trace.ties)
        assert recorded.trace.deliveries  # the delivery ring buffer was on

    def test_unrecorded_run_keeps_trace_empty(self):
        case = FuzzCase(transport="async", scale_factor=100, phase_periods=1)
        outcome = run_case(case)
        assert outcome.trace.ties == ()
        assert outcome.trace.churn is None
        assert outcome.trace.rebalances is None
        assert outcome.violation is None
