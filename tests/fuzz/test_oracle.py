"""Oracle behaviour: the invariant oracle, metric sanity, tie-witness."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.fuzz.oracle import (
    ORACLES,
    InvariantOracle,
    OracleViolation,
    TieWitnessOracle,
    build_oracle,
)
from repro.sim.metrics import PeriodSample
from repro.util.rng import RandomStream


def _healthy_sample(**overrides) -> PeriodSample:
    values = dict(
        time=300.0,
        workload="A",
        max_load_percent=60.0,
        avg_load_percent=40.0,
        active_servers=10,
        min_depth=4.0,
        avg_depth=5.5,
        max_depth=8.0,
        splits=2,
        merges=1,
        messages_per_server_per_second=0.5,
        message_breakdown={"LOOKUP": 0.1},
        mean_message_latency=0.01,
    )
    values.update(overrides)
    return PeriodSample(**values)


@pytest.fixture
def small_system() -> ClashSystem:
    system = ClashSystem.create(
        ClashConfig.small_scale(), server_count=4, rng=RandomStream(7)
    )
    return system


class TestInvariantOracle:
    def test_healthy_system_passes(self, small_system):
        oracle = InvariantOracle()
        oracle.check_system(small_system)
        oracle.check_sample(small_system, _healthy_sample())

    def test_assertion_becomes_typed_violation(self, small_system):
        oracle = InvariantOracle()
        # Corrupt the ownership registry behind the servers' backs: register
        # a child of an active group, creating an overlapping pair.
        group = next(iter(small_system.active_groups()))
        owner = small_system._group_owner[group]
        small_system._group_owner[group.child(0)] = owner
        with pytest.raises(OracleViolation) as info:
            oracle.check_system(small_system)
        assert info.value.check == "invariants"

    @pytest.mark.parametrize(
        "overrides, check",
        [
            ({"avg_load_percent": 70.0, "max_load_percent": 60.0}, "metrics:load"),
            ({"max_load_percent": math.nan}, "metrics:load"),
            ({"avg_depth": 3.0, "min_depth": 4.0}, "metrics:depth"),
            ({"messages_per_server_per_second": -1.0}, "metrics:rates"),
            ({"message_breakdown": {"LOOKUP": math.inf}}, "metrics:rates"),
            ({"mean_message_latency": -0.5}, "metrics:latency"),
            ({"dropped_messages": -1}, "metrics:churn"),
            ({"server_failures": -2}, "metrics:churn"),
            ({"shard_count": 4, "shard_peak_loads": (1.0, 2.0)}, "metrics:shards"),
            ({"cross_shard_imbalance": -1.0}, "metrics:shards"),
            ({"groups_migrated": -1}, "metrics:partition"),
            ({"partition_version": -1}, "metrics:partition"),
            # A single ring has no shard boundary to move a group across.
            ({"groups_migrated": 3}, "metrics:partition"),
        ],
    )
    def test_metric_sanity_checks(self, small_system, overrides, check):
        oracle = InvariantOracle()
        with pytest.raises(OracleViolation) as info:
            oracle.check_sample(small_system, _healthy_sample(**overrides))
        assert info.value.check == check

    def test_sharded_sample_checks_group_shard_locality(self):
        system = ClashSystem.create(
            ClashConfig.small_scale(), server_count=8, rng=RandomStream(21), shards=2
        )
        oracle = InvariantOracle()
        sample = _healthy_sample(
            shard_count=2, shard_peak_loads=(50.0, 40.0), cross_shard_imbalance=1.1
        )
        oracle.check_sample(system, sample)
        # Re-home one group onto the wrong shard behind the routers' backs.
        router = system.router
        group = next(iter(system.active_groups()))
        home = router.shard_of_key(group.virtual_key)
        stray = next(
            name
            for name in sorted(system.server_names())
            if router.server_shard(name) != home
        )
        system._group_owner[group] = stray
        # check_sample trips on it too, but verify_invariants (which also
        # polices shard registration) runs first and claims the violation;
        # the partition cross-check must flag the same corruption on its own.
        with pytest.raises(OracleViolation) as info:
            InvariantOracle._check_partition(system)
        assert info.value.check == "metrics:partition"
        with pytest.raises(OracleViolation):
            oracle.check_sample(system, sample)


class _FakeSimulator:
    """Just enough simulator surface for the tie-witness oracle."""

    def __init__(self, draws):
        self.transport = dataclasses.make_dataclass("T", ["ready_source"])(
            ready_source=dataclasses.make_dataclass("S", ["draws"])(draws=draws)
        )


class TestTieWitnessOracle:
    def test_fires_when_all_witnesses_exceed_threshold(self):
        oracle = TieWitnessOracle(indices=[1, 3], threshold=0.0)
        oracle.bind(_FakeSimulator([0.5, 0.9, 0.1, 0.7]))
        with pytest.raises(OracleViolation) as info:
            oracle.check_sample(None, _healthy_sample())
        assert info.value.check == "tie-witness"

    def test_passes_when_a_witness_is_masked_to_fifo(self):
        oracle = TieWitnessOracle(indices=[1, 3], threshold=0.0)
        oracle.bind(_FakeSimulator([0.5, 0.9, 0.1, 0.0]))
        oracle.check_sample(None, _healthy_sample())

    def test_passes_before_enough_draws_exist(self):
        oracle = TieWitnessOracle(indices=[10], threshold=0.0)
        oracle.bind(_FakeSimulator([0.5, 0.9]))
        oracle.check_sample(None, _healthy_sample())

    def test_requires_indices(self):
        with pytest.raises(ValueError):
            TieWitnessOracle(indices=[])


class TestRegistry:
    def test_build_by_name(self):
        assert isinstance(build_oracle("invariants"), InvariantOracle)
        witness = build_oracle("tie-witness", {"indices": [4], "threshold": 0.25})
        assert isinstance(witness, TieWitnessOracle)
        assert witness.indices == (4,)
        assert witness.threshold == 0.25

    def test_fresh_instance_per_build(self):
        assert build_oracle("invariants") is not build_oracle("invariants")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_oracle("psychic")

    def test_params_round_trip(self):
        params = {"indices": [2, 9], "threshold": 0.0}
        oracle = build_oracle("tie-witness", params)
        assert build_oracle(oracle.name, oracle.params()).params() == oracle.params()

    def test_registry_names_match(self):
        for name in ORACLES:
            assert build_oracle(name, {"indices": [0]} if name == "tie-witness" else {}).name == name
