"""ddmin delta-debugging correctness on synthetic predicates."""

from __future__ import annotations

import pytest

from repro.fuzz.shrink import ddmin


def _superset_predicate(required: set):
    """Fails iff the candidate contains every required event."""
    calls = []

    def failing(subset):
        calls.append(tuple(subset))
        return required <= set(subset)

    failing.calls = calls
    return failing


class TestDdmin:
    def test_single_culprit(self):
        events = list(range(64))
        result = ddmin(events, _superset_predicate({17}), max_tests=512)
        assert result.kept == [17]
        assert result.minimal

    def test_multiple_culprits_preserve_order(self):
        events = list(range(40))
        result = ddmin(events, _superset_predicate({3, 21, 38}), max_tests=1024)
        assert result.kept == [3, 21, 38]
        assert result.minimal

    def test_all_events_required(self):
        events = list(range(8))
        result = ddmin(events, _superset_predicate(set(events)), max_tests=1024)
        assert result.kept == events
        assert result.minimal

    def test_empty_input(self):
        result = ddmin([], lambda subset: True, max_tests=10)
        assert result.kept == []
        assert result.tests_run == 0
        assert result.minimal

    def test_single_event_input(self):
        result = ddmin(["only"], _superset_predicate({"only"}), max_tests=10)
        assert result.kept == ["only"]
        assert result.minimal

    def test_budget_exhaustion_returns_failing_subset(self):
        required = {5, 55}
        predicate = _superset_predicate(required)
        result = ddmin(list(range(60)), predicate, max_tests=3)
        assert result.tests_run <= 3
        assert not result.minimal
        # Whatever ddmin returns must still be failing.
        assert required <= set(result.kept)

    def test_deterministic(self):
        events = list(range(50))
        first = ddmin(events, _superset_predicate({2, 30}), max_tests=1024)
        second = ddmin(events, _superset_predicate({2, 30}), max_tests=1024)
        assert first.kept == second.kept
        assert first.tests_run == second.tests_run

    def test_cache_avoids_repeat_evaluations(self):
        predicate = _superset_predicate({0})
        result = ddmin(list(range(16)), predicate, max_tests=4096)
        assert result.kept == [0]
        # Every evaluated candidate was distinct (the cache absorbed repeats).
        assert len(predicate.calls) == len(set(predicate.calls))

    @pytest.mark.parametrize("size", [2, 3, 5, 9, 17])
    def test_various_sizes(self, size):
        events = [f"e{i}" for i in range(size)]
        required = {events[0], events[-1]}
        result = ddmin(events, _superset_predicate(required), max_tests=4096)
        assert set(result.kept) == required
        assert result.minimal
