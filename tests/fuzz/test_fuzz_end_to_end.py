"""The whole fuzz loop: seeded violation → shrink → artifact → replay.

The tie-witness oracle makes the minimal failing schedule *predictable*:
with threshold 0.0 a seeded-RNG recording always fails (genuine uniform
draws are positive), masking any witness entry replays it as FIFO 0.0 and
the failure disappears — so ddmin must converge to exactly the witness tie
entries, and the packaged artifact must reproduce on replay.
"""

from __future__ import annotations

from repro.cli import main
from repro.fuzz import (
    FuzzPlan,
    ReproArtifact,
    enumerate_cases,
    render_report,
    replay_artifact,
    run_fuzz,
)

WITNESS = {"indices": [2, 9], "threshold": 0.0}


def _witness_plan(**overrides) -> FuzzPlan:
    values = dict(
        transports=("async",),
        shards=(1,),
        seeds=(0,),
        churn_rates=((0.0, 0.0),),
        budget=1,
        scale_factor=100,
        phase_periods=1,
        oracle="tie-witness",
        oracle_params=dict(WITNESS),
        shrink_budget=128,
    )
    values.update(overrides)
    return FuzzPlan(**values)


class TestEnumeration:
    def test_budget_truncates_grid(self):
        plan = FuzzPlan(budget=5)
        assert len(enumerate_cases(plan)) == 5

    def test_seed_major_order_covers_structure_first(self):
        plan = FuzzPlan(
            transports=("async", "event"), shards=(1, 2), seeds=(0, 1), budget=8
        )
        cases = enumerate_cases(plan)
        # The first 8 cases all use the first seed but span every
        # transport/shard/churn combination.
        assert len({case.seed for case in cases}) == 1
        assert {case.transport for case in cases} == {"async", "event"}
        assert {case.shards for case in cases} == {1, 2}

    def test_delivery_seed_only_on_async(self):
        plan = FuzzPlan(transports=("async", "event"), budget=1000)
        for case in enumerate_cases(plan):
            if case.transport == "async":
                assert case.delivery_seed is not None
            else:
                assert case.delivery_seed is None

    def test_sharded_cases_sweep_both_partition_modes(self):
        plan = FuzzPlan(
            transports=("async",), shards=(1, 2), seeds=(0,), budget=1000
        )
        combos = {(case.shards, case.partition) for case in enumerate_cases(plan)}
        # A single ring has no boundary to move, so it only runs static.
        assert combos == {(1, "static"), (2, "static"), (2, "adaptive")}

    def test_adaptive_cases_carry_the_partition_in_their_id(self):
        plan = FuzzPlan(transports=("async",), shards=(2,), seeds=(0,), budget=1000)
        adaptive = [
            case for case in enumerate_cases(plan) if case.partition == "adaptive"
        ]
        assert adaptive
        assert all("adaptive" in case.case_id() for case in adaptive)


class TestSeededViolationEndToEnd:
    def test_shrinks_to_witness_set_and_artifact_replays(self, tmp_path):
        report = run_fuzz(_witness_plan(), output_dir=tmp_path)
        assert report.cases_run == 1
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.check == "tie-witness"
        artifact = finding.artifact

        # The minimal schedule is exactly the witness tie entries.
        assert sorted(artifact.ties) == WITNESS["indices"]
        assert artifact.minimal_events == len(WITNESS["indices"])
        assert artifact.shrink_minimal
        assert artifact.original_events > artifact.minimal_events

        # The artifact on disk replays to the same violation.
        assert finding.artifact_path is not None
        loaded = ReproArtifact.load(finding.artifact_path)
        outcome = replay_artifact(loaded)
        assert outcome.violation is not None
        assert outcome.violation.check == "tie-witness"

        # And the report renders the finding.
        text = render_report(report)
        assert "tie-witness" in text
        assert "1 violation(s)" in text

    def test_fuzz_is_deterministic(self, tmp_path):
        first = run_fuzz(_witness_plan(), output_dir=tmp_path / "a")
        second = run_fuzz(_witness_plan(), output_dir=tmp_path / "b")
        a = first.findings[0].artifact_path.read_text()
        b = second.findings[0].artifact_path.read_text()
        assert a == b

    def test_clean_sweep_reports_no_findings(self, tmp_path):
        plan = _witness_plan(oracle="invariants", oracle_params={})
        report = run_fuzz(plan, output_dir=tmp_path)
        assert report.clean
        assert "No oracle violations found" in render_report(report)
        assert not list(tmp_path.glob("fuzz-*.json"))


class TestCli:
    def test_fuzz_command_exit_codes(self, tmp_path):
        base = [
            "--scale-factor", "100", "--phase-periods", "1",
            "--fuzz-budget", "1", "--fuzz-seeds", "0:1",
            "--fuzz-transports", "async", "--fuzz-shards", "1",
            "--join-rate", "0", "--fail-rate", "0",
            "--quiet", "--output-dir", str(tmp_path),
        ]
        assert main(["fuzz", *base]) == 0
        assert (tmp_path / "fuzz.txt").exists()

    def test_repro_command_round_trip(self, tmp_path):
        report = run_fuzz(_witness_plan(), output_dir=tmp_path)
        artifact_path = report.findings[0].artifact_path
        assert (
            main(["repro", "--artifact", str(artifact_path), "--quiet"]) == 0
        )

    def test_repro_command_fails_without_artifact(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["repro", "--quiet"])
