"""Repro artifact JSON round trips and determinism."""

from __future__ import annotations

import json

import pytest

from repro.fuzz.artifact import ARTIFACT_FORMAT, ReproArtifact
from repro.fuzz.harness import FuzzCase
from repro.net.replay import ChurnEvent, RebalanceEvent


def _artifact() -> ReproArtifact:
    return ReproArtifact(
        case=FuzzCase(
            transport="async",
            seed=20040324,
            delivery_seed=7,
            churn_seed=3,
            join_rate=0.01,
            fail_rate=0.01,
            shards=2,
            partition="adaptive",
            scale_factor=100,
            phase_periods=2,
        ),
        oracle="tie-witness",
        oracle_params={"indices": [2, 9], "threshold": 0.0},
        failure_check="tie-witness",
        failure_message="tie draws at [2, 9] all exceed 0.0 at t=300.0",
        ties={2: 0.125, 9: 0.75},
        churn=(
            ChurnEvent(when=120.0, kind="join", server="j0", node_id=12345),
            ChurnEvent(when=240.0, kind="fail", server="s17", node_id=None),
        ),
        rebalances=(
            RebalanceEvent(when=300.0, version=1, boundaries=(0, 1024, 4096)),
            RebalanceEvent(when=600.0, version=2, boundaries=(0, 2048, 4096)),
        ),
        original_events=110,
        minimal_events=4,
        shrink_tests=31,
        shrink_minimal=True,
        delivery_tail=((299.5, "s3", "LoadReport"),),
    )


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        artifact = _artifact()
        restored = ReproArtifact.from_json(artifact.to_json())
        assert restored == artifact

    def test_file_round_trip(self, tmp_path):
        artifact = _artifact()
        path = artifact.save(tmp_path / "nested" / "repro.json")
        assert path.exists()
        assert ReproArtifact.load(path) == artifact

    def test_json_is_deterministic(self):
        assert _artifact().to_json() == _artifact().to_json()

    def test_json_carries_format_version(self):
        payload = json.loads(_artifact().to_json())
        assert payload["format"] == ARTIFACT_FORMAT

    def test_unsupported_format_rejected(self):
        payload = json.loads(_artifact().to_json())
        payload["format"] = ARTIFACT_FORMAT + 1
        with pytest.raises(ValueError):
            ReproArtifact.from_json(json.dumps(payload))

    def test_none_churn_round_trips(self):
        artifact = _artifact()
        artifact.churn = None
        restored = ReproArtifact.from_json(artifact.to_json())
        assert restored.churn is None

    def test_none_rebalances_round_trip(self):
        artifact = _artifact()
        artifact.rebalances = None
        restored = ReproArtifact.from_json(artifact.to_json())
        assert restored.rebalances is None

    def test_format_one_artifacts_rejected(self):
        # Format 1 predates the pinned rebalance schedule; replaying one
        # against a rebalancing build would silently drop that dimension.
        payload = json.loads(_artifact().to_json())
        payload["format"] = 1
        with pytest.raises(ValueError, match="format"):
            ReproArtifact.from_json(json.dumps(payload))

    def test_tie_keys_restored_as_ints(self):
        restored = ReproArtifact.from_json(_artifact().to_json())
        assert all(isinstance(index, int) for index in restored.ties)
        assert restored.ties == {2: 0.125, 9: 0.75}


class TestSchedule:
    def test_schedule_reflects_ties_churn_and_rebalances(self):
        artifact = _artifact()
        schedule = artifact.schedule()
        assert dict(schedule.ties) == artifact.ties
        assert schedule.churn == artifact.churn
        assert schedule.rebalances == artifact.rebalances

    def test_churn_event_json_round_trip(self):
        event = ChurnEvent(when=12.5, kind="fail", server="s9", node_id=None)
        assert ChurnEvent.from_json(event.to_json()) == event

    def test_rebalance_event_json_round_trip(self):
        event = RebalanceEvent(when=300.0, version=3, boundaries=(0, 512, 4096))
        assert RebalanceEvent.from_json(event.to_json()) == event

    def test_churn_event_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            ChurnEvent(when=1.0, kind="reboot", server="s0")
