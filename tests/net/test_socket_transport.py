"""Unit tests for the multi-process socket transport (repro.net.socket_transport).

The golden equivalence batteries (test_equivalence.py,
test_sharded_equivalence.py) already hold socket runs bit-identical to
inline; these tests pin the transport's own mechanics — worker lifecycle and
teardown, the wire protocol's sequencing rules, batching semantics, and the
bound-state mirror the workers keep.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core.messages import AcceptObject, AcceptObjectReply, ReplyStatus
from repro.keys.identifier import IdentifierKey
from repro.net import build_transport
from repro.net.envelope import DhtAddress, Envelope
from repro.net.transport import TransportError

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="socket transport needs a POSIX fork"
)


def _envelope(destination, payload=None) -> Envelope:
    payload = payload if payload is not None else AcceptObject(
        key=IdentifierKey(5, 24), estimated_depth=2, sender="cli"
    )
    return Envelope(source="cli", destination=destination, payload=payload)


class _Recorder:
    def __init__(self, reply=None):
        self.received: list[Envelope] = []
        self.reply = reply

    def __call__(self, envelope: Envelope):
        self.received.append(envelope)
        return self.reply


class _FakeLookup:
    def __init__(self, owner: str, hops: int):
        self.owner = owner
        self.hops = hops


@pytest.fixture
def transport():
    built = build_transport("socket")
    yield built
    built.close()


class TestDelivery:
    def test_request_reply_round_trip(self, transport):
        reply = AcceptObjectReply(status=ReplyStatus.OK, server="srv", correct_depth=3)
        transport.bind("srv", _Recorder(reply=reply))
        delivery = transport.request(_envelope("srv"))
        assert delivery.reply == reply
        assert delivery.server == "srv"
        assert transport.envelopes_delivered == 1

    def test_request_to_unbound_endpoint_raises(self, transport):
        transport.bind("srv", _Recorder())
        transport.unbind("srv")
        with pytest.raises(TransportError):
            transport.request(_envelope("srv"))

    def test_posts_are_deferred_until_flush(self, transport):
        handler = _Recorder()
        transport.bind("srv", handler)
        transport.post(_envelope("srv"))
        transport.post(_envelope("srv"))
        assert handler.received == []
        assert transport.pending == 2
        assert transport.flush() == 2
        assert len(handler.received) == 2
        assert transport.pending == 0

    def test_flush_packs_batches_per_destination(self, transport):
        handlers = {name: _Recorder() for name in ("a", "b")}
        for shard, (name, handler) in enumerate(handlers.items()):
            transport.bind(name, handler, shard=shard)
        for index in range(6):
            transport.post(_envelope("a" if index % 2 == 0 else "b"))
        assert transport.flush() == 6
        stats = transport.socket_stats()
        # One BATCH frame per destination, decoded on the owner shard's core.
        assert stats[0]["batches_received"] == 1
        assert stats[0]["envelopes_decoded"] == 3
        assert stats[1]["batches_received"] == 1
        assert stats[1]["envelopes_decoded"] == 3

    def test_route_cache_replays_identical_hop_charges(self, transport):
        transport.bind("owner", _Recorder(reply="ok"))
        calls = []

        def resolver(key):
            calls.append(key.value)
            return _FakeLookup("owner", 7)

        transport.set_resolver(resolver)
        key = IdentifierKey(42, 24)
        first = transport.request(_envelope(DhtAddress(key)))
        second = transport.request(_envelope(DhtAddress(key)))
        assert first.hops == second.hops == 7
        assert calls == [42]
        assert transport.route_cache_hits == 1
        transport.flush()  # a flush closes the window
        transport.request(_envelope(DhtAddress(key)))
        assert calls == [42, 42]

    def test_handler_unbinding_own_endpoint_mid_batch_drops_remainder(self, transport):
        """Same contract as the (fixed) batching transport: a handler that
        unbinds its own endpoint mid-batch drops the remainder, counted."""
        received = []

        def self_unbinding(envelope):
            received.append(envelope)
            transport.unbind("srv")

        transport.bind("srv", self_unbinding)
        for _ in range(3):
            transport.post(_envelope("srv"))
        assert transport.flush() == 1
        assert len(received) == 1
        assert transport.dropped_messages == 2

    def test_envelopes_for_failed_endpoints_are_dropped_at_flush(self, transport):
        transport.bind("srv", _Recorder())
        transport.post(_envelope("srv"))
        transport.unbind("srv")
        assert transport.flush() == 0
        assert transport.dropped_messages == 1


class TestWorkerLifecycle:
    def test_one_worker_per_shard_spawned_lazily(self, transport):
        assert transport.worker_pids() == {}
        transport.bind("a", _Recorder(), shard=0)
        assert set(transport.worker_pids()) == {0}
        transport.bind("b", _Recorder(), shard=3)
        pids = transport.worker_pids()
        assert set(pids) == {0, 3}
        assert len(set(pids.values())) == 2  # distinct processes
        for pid in pids.values():
            assert pid != os.getpid()

    def test_workers_mirror_bound_state(self, transport):
        transport.bind("a", _Recorder(), shard=0)
        transport.bind("b", _Recorder(), shard=0)
        transport.unbind("b")
        stats = transport.socket_stats()
        assert stats[0]["binds"] == 2
        assert stats[0]["unbinds"] == 1

    def test_close_tears_down_every_worker_process(self):
        transport = build_transport("socket")
        transport.bind("a", _Recorder(), shard=0)
        transport.bind("b", _Recorder(), shard=1)
        transport.request(_envelope("a"))
        processes = [handle.process for handle in transport._workers.values()]
        assert all(process.is_alive() for process in processes)
        transport.close()
        assert transport.closed
        assert transport.worker_pids() == {}
        assert multiprocessing.active_children() == []
        # The BYE handshake delivered each worker's final counters.
        assert transport.final_worker_stats[0]["requests_served"] == 1

    def test_close_is_idempotent(self, transport):
        transport.bind("srv", _Recorder())
        transport.close()
        transport.close()
        assert transport.closed

    def test_closed_transport_refuses_new_workers(self, transport):
        transport.close()
        with pytest.raises(TransportError):
            transport.bind("srv", _Recorder(), shard=1)

    def test_flow_simulator_closes_the_transport(self):
        """The satellite lifecycle fix: FlowSimulator.run() must close its
        transport deterministically — no worker may outlive the run."""
        from repro.experiments.runner import ExperimentScale
        from repro.sim.simulator import FlowSimulator

        scale = ExperimentScale.scaled(factor=100, phase_periods=1)
        simulator = FlowSimulator(
            config=scale.config(),
            params=scale.params(transport="socket"),
            scenario=scale.scenario(),
        )
        assert not simulator.transport.closed
        simulator.run()
        assert simulator.transport.closed
        assert multiprocessing.active_children() == []


class TestWireProtocol:
    def test_sequence_numbers_are_per_connection_monotone(self, transport):
        transport.bind("a", _Recorder(reply="r"), shard=0)
        transport.bind("b", _Recorder(), shard=1)
        for _ in range(3):
            transport.request(_envelope("a"))
        transport.post(_envelope("b"))
        transport.flush()
        # Each connection counts its own frames: 3 REQs on shard 0's
        # connection, 1 BATCH on shard 1's.
        assert transport._workers[0].seq == 3
        assert transport._workers[1].seq == 1

    def test_worker_rejects_a_sequence_gap(self, transport):
        transport.bind("srv", _Recorder(reply="r"))
        transport.request(_envelope("srv"))
        handle = transport._workers[0]
        handle.seq += 5  # desynchronize the stream on purpose
        with pytest.raises(TransportError, match="expected seq"):
            transport.request(_envelope("srv"))

    def test_worker_rejects_a_replayed_sequence_number(self, transport):
        transport.bind("srv", _Recorder(reply="r"))
        transport.request(_envelope("srv"))
        handle = transport._workers[0]
        handle.seq -= 1  # replay the previous sequence number
        with pytest.raises(TransportError, match="expected seq"):
            transport.request(_envelope("srv"))

    def test_stats_round_trip_counts_wire_work(self, transport):
        transport.bind("srv", _Recorder(reply="r"))
        transport.request(_envelope("srv"))
        for _ in range(4):
            transport.post(_envelope("srv"))
        transport.flush()
        stats = transport.socket_stats()[0]
        assert stats["requests_served"] == 1
        assert stats["batches_received"] == 1
        assert stats["envelopes_decoded"] == 5
