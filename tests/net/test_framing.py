"""Property tests for the socket transport's wire codec (repro.net.framing).

Round-trip properties cover every registered protocol record — each
``repro.core.messages`` dataclass, identifier keys and key groups at
arbitrary widths (including beyond msgpack's 64-bit integer ceiling), stored
query records and full envelopes with attachments — plus the frame layer's
rejection of truncated, oversized and trailing-garbage input.  When the real
:mod:`msgpack` package is installed, the pure-python packer is additionally
cross-validated against it.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.query_store import Query
from repro.core.messages import (
    AcceptKeyGroup,
    AcceptObject,
    AcceptObjectReply,
    LoadReport,
    MessageCategory,
    ReleaseKeyGroup,
    ReplyStatus,
)
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup
from repro.net.envelope import DhtAddress, Envelope
from repro.net.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
    packb,
    unpackb,
)

try:
    import msgpack as real_msgpack
except ImportError:  # pragma: no cover - optional cross-validation only
    real_msgpack = None

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
)

# Key widths sweep past 64 bits on purpose: wide key material travels as
# big-endian bytes, so the codec must stay exact where msgpack ints cannot.
key_widths = st.integers(min_value=1, max_value=192)


@st.composite
def identifier_keys(draw) -> IdentifierKey:
    width = draw(key_widths)
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return IdentifierKey(value=value, width=width)


@st.composite
def key_groups(draw) -> KeyGroup:
    width = draw(key_widths)
    depth = draw(st.integers(min_value=0, max_value=width))
    prefix = draw(st.integers(min_value=0, max_value=(1 << depth) - 1 if depth else 0))
    return KeyGroup(prefix=prefix, depth=depth, width=width)


finite_floats = st.floats(allow_nan=False, width=64)

queries = st.builds(
    Query,
    query_id=st.integers(min_value=0, max_value=2**63 - 1),
    key=identifier_keys(),
    client=names,
    expires_at=st.one_of(st.just(math.inf), finite_floats),
)


@st.composite
def accept_object_replies(draw) -> AcceptObjectReply:
    status = draw(st.sampled_from(list(ReplyStatus)))
    depth = draw(st.integers(min_value=0, max_value=64))
    if status is ReplyStatus.INCORRECT_DEPTH:
        return AcceptObjectReply(
            status=status, server=draw(names), longest_prefix_match=depth
        )
    return AcceptObjectReply(status=status, server=draw(names), correct_depth=depth)


payloads = st.one_of(
    st.builds(
        AcceptObject,
        key=identifier_keys(),
        estimated_depth=st.integers(min_value=0, max_value=64),
        sender=names,
    ),
    accept_object_replies(),
    st.builds(
        AcceptKeyGroup,
        group=key_groups(),
        parent_server=st.one_of(st.none(), names),
        migrated_queries=st.integers(min_value=0, max_value=10_000),
    ),
    st.builds(
        ReleaseKeyGroup,
        group=key_groups(),
        child_server=names,
        migrated_queries=st.integers(min_value=0, max_value=10_000),
    ),
    st.builds(LoadReport, group=key_groups(), child_server=names, load=finite_floats),
)

envelopes = st.builds(
    Envelope,
    source=names,
    destination=st.one_of(names, st.builds(DhtAddress, virtual_key=identifier_keys())),
    payload=payloads,
    category=st.one_of(st.none(), st.sampled_from(list(MessageCategory))),
    attachment=st.one_of(st.none(), st.lists(queries, max_size=5)),
)

msgpack_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    finite_floats,
    st.text(max_size=64),
    st.binary(max_size=64),
)


# --------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------- #


class TestMsgpackSubset:
    @given(msgpack_scalars)
    def test_scalar_round_trip(self, value):
        assert unpackb(packb(value)) == value

    @given(st.recursive(msgpack_scalars, lambda inner: st.lists(inner, max_size=4), max_leaves=20))
    def test_nested_array_round_trip(self, value):
        assert unpackb(packb(value)) == value

    @given(st.dictionaries(st.text(max_size=8), msgpack_scalars, max_size=8))
    def test_map_round_trip(self, value):
        assert unpackb(packb(value)) == value

    def test_int_boundaries_round_trip(self):
        for value in (
            0, 127, 128, 255, 256, 65535, 65536, 2**32 - 1, 2**32, 2**63 - 1,
            2**63, 2**64 - 1, -1, -32, -33, -128, -129, -32768, -32769,
            -(2**31), -(2**31) - 1, -(2**63),
        ):
            assert unpackb(packb(value)) == value

    def test_ints_beyond_64_bits_rejected(self):
        with pytest.raises(FrameError):
            packb(2**64)
        with pytest.raises(FrameError):
            packb(-(2**63) - 1)

    def test_non_finite_floats_round_trip(self):
        assert unpackb(packb(math.inf)) == math.inf
        assert unpackb(packb(-math.inf)) == -math.inf
        assert math.isnan(unpackb(packb(math.nan)))

    @pytest.mark.skipif(real_msgpack is None, reason="msgpack not installed")
    @given(st.recursive(msgpack_scalars, lambda inner: st.lists(inner, max_size=4), max_leaves=20))
    def test_cross_validated_against_real_msgpack(self, value):  # pragma: no cover
        assert real_msgpack.unpackb(packb(value), strict_map_key=False) == value
        assert unpackb(real_msgpack.packb(value, use_bin_type=True)) == value


class TestProtocolCodec:
    @given(identifier_keys())
    def test_key_round_trip(self, key):
        assert decode_value(encode_value(key)) == key

    @given(key_groups())
    def test_group_round_trip(self, group):
        assert decode_value(encode_value(group)) == group

    @given(queries)
    def test_query_round_trip(self, query):
        assert decode_value(encode_value(query)) == query

    @given(payloads)
    def test_every_message_type_round_trips(self, payload):
        assert decode_value(encode_value(payload)) == payload

    @settings(max_examples=50)
    @given(envelopes)
    def test_envelope_round_trip_through_a_frame(self, envelope):
        frame = encode_frame(encode_value(envelope))
        size = int.from_bytes(frame[:4], "big")
        assert size == len(frame) - 4
        decoded = decode_frame(frame[4:])
        assert decode_value(decoded) == envelope

    @given(st.sampled_from(list(MessageCategory)), st.sampled_from(list(ReplyStatus)))
    def test_enum_round_trip(self, category, status):
        assert decode_value(encode_value(category)) is category
        assert decode_value(encode_value(status)) is status

    def test_unregistered_type_rejected(self):
        class Surprise:
            pass

        with pytest.raises(FrameError):
            encode_value(Surprise())

    def test_unknown_tag_rejected(self):
        with pytest.raises(FrameError):
            decode_value([999, []])

    def test_malformed_dataclass_body_rejected(self):
        # An INCORRECT_DEPTH reply without longest_prefix_match fails the
        # dataclass's own __post_init__ validation at the frame boundary.
        bad = encode_value(
            AcceptObjectReply(
                status=ReplyStatus.INCORRECT_DEPTH, server="s", longest_prefix_match=3
            )
        )
        bad[1][3] = encode_value(None)  # strip longest_prefix_match
        with pytest.raises(FrameError):
            decode_value(bad)

    def test_wrong_field_count_rejected(self):
        encoded = encode_value(DhtAddress(virtual_key=IdentifierKey(1, 8)))
        encoded[1].append(encode_value("extra"))
        with pytest.raises(FrameError):
            decode_value(encoded)


class TestFrameLayer:
    @given(envelopes)
    @settings(max_examples=25)
    def test_truncated_frames_rejected(self, envelope):
        frame = encode_frame(encode_value(envelope))
        payload = frame[4:]
        for cut in (1, len(payload) // 2, len(payload) - 1):
            if 0 < cut < len(payload):
                with pytest.raises(FrameError):
                    unpackb(payload[:cut])

    def test_trailing_garbage_rejected(self):
        payload = packb([1, "x"])
        with pytest.raises(FrameError):
            unpackb(payload + b"\x00")

    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(FrameError):
            encode_frame(b"\x00" * (MAX_FRAME_BYTES + 1))

    def test_oversized_frame_rejected_on_decode(self):
        with pytest.raises(FrameError):
            decode_frame(b"\x00" * (MAX_FRAME_BYTES + 1))

    def test_oversized_length_prefix_rejected_before_allocation(self):
        # A peer declaring a multi-gigabyte frame must be rejected from the
        # 4-byte prefix alone, without buffering the body.
        import socket

        from repro.net.framing import read_frame

        left, right = socket.socketpair()
        try:
            left.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(FrameError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_rejected(self):
        import socket

        from repro.net.framing import read_frame

        left, right = socket.socketpair()
        try:
            frame = encode_frame(encode_value(IdentifierKey(5, 24)))
            left.sendall(frame[:-2])
            left.close()
            with pytest.raises(FrameError):
                read_frame(right)
        finally:
            right.close()

    def test_clean_eof_between_frames_returns_none(self):
        import socket

        from repro.net.framing import read_frame

        left, right = socket.socketpair()
        try:
            left.sendall(encode_frame([1, 2]))
            left.close()
            assert read_frame(right) == [1, 2]
            assert read_frame(right) is None
        finally:
            right.close()
