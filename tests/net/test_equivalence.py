"""Transport equivalence and integration tests.

Parametrized over the :data:`repro.net.TRANSPORTS` registry: every transport
claiming ``exact_equivalence`` must reproduce the golden seed capture and
inline ``PeriodSample`` streams bit for bit on the reference workloads, and
every transport claiming ``churn_equivalence`` must stay bit-identical under
Poisson membership churn.  The shared machinery lives in
``tests/net/equivalence.py``; registering a new transport automatically
enrols it here.
"""

from __future__ import annotations

import pytest
from equivalence import (
    REFERENCE_WORKLOADS,
    assert_depth_search_matches_golden,
    assert_matches_golden_flow,
    assert_samples_bit_identical,
    build_traced_system,
    churn_scenario,
    load_golden,
    make_transport,
    reference_scale,
    run_flow,
    single_workload_scenario,
)

from repro.experiments.runner import ExperimentScale
from repro.net import TRANSPORTS
from repro.net.batching import BatchingTransport
from repro.net.event import EventTransport
from repro.sim.simulator import FlowSimulator, SimulationParams
from repro.workload.scenario import churn_latency_scenario

EXACT_KINDS = [kind for kind, spec in TRANSPORTS.items() if spec.exact_equivalence]
CHURN_KINDS = [kind for kind, spec in TRANSPORTS.items() if spec.churn_equivalence]


@pytest.fixture(scope="module")
def golden() -> dict:
    return load_golden()


@pytest.fixture(scope="module")
def inline_reference(golden):
    """Inline runs of every reference scenario, computed once per session.

    These are the streams every other transport is compared against
    bit for bit.
    """
    scale = reference_scale(golden)
    reference = {
        workload: run_flow("inline", scale, single_workload_scenario(workload, scale))
        for workload in REFERENCE_WORKLOADS
    }
    reference["churn"] = run_flow(
        "inline", scale, churn_scenario(scale), verify_membership=True
    )
    return reference


class TestGoldenEquivalence:
    """Every exact-equivalence transport against the seed capture."""

    @pytest.mark.parametrize("kind", EXACT_KINDS)
    def test_depth_search_trace_matches_seed(self, kind, golden):
        system, splits, config = build_traced_system(make_transport(kind))
        try:
            assert_depth_search_matches_golden(system, splits, config, golden)
        finally:
            system.transport.close()

    @pytest.mark.parametrize("kind", EXACT_KINDS)
    def test_flow_simulation_matches_seed_metrics(self, kind, golden):
        scale = reference_scale(golden)
        result = run_flow(kind, scale, scale.scenario())
        assert_matches_golden_flow(result, golden)


class TestReferenceWorkloadEquivalence:
    """PeriodSample streams must be bit-identical to inline."""

    @pytest.mark.parametrize("kind", [k for k in EXACT_KINDS if k != "inline"])
    @pytest.mark.parametrize("workload", REFERENCE_WORKLOADS)
    def test_reference_workload_bit_identical(
        self, kind, workload, golden, inline_reference
    ):
        scale = reference_scale(golden)
        result = run_flow(kind, scale, single_workload_scenario(workload, scale))
        assert_samples_bit_identical(result, inline_reference[workload])

    @pytest.mark.parametrize("kind", [k for k in CHURN_KINDS if k != "inline"])
    def test_churn_scenario_bit_identical(self, kind, golden, inline_reference):
        """Period-boundary churn (joins + failures) must not separate the
        clock-less transports: same membership events, same reassignments,
        same drops, same loads — sample for sample."""
        scale = reference_scale(golden)
        result = run_flow(kind, scale, churn_scenario(scale), verify_membership=True)
        churn_ref = inline_reference["churn"]
        assert sum(s.server_joins for s in churn_ref.metrics.samples) > 0
        assert sum(s.server_failures for s in churn_ref.metrics.samples) > 0
        assert_samples_bit_identical(result, churn_ref)


class TestBatchingEquivalence:
    def test_route_cache_actually_engages(self, golden):
        """Route coalescing must not change a single probe, reply or charge —
        while demonstrably serving resolutions from the cache."""
        system, splits, config = build_traced_system(BatchingTransport())
        assert_depth_search_matches_golden(system, splits, config, golden)
        assert system.transport.route_cache_hits > 0


class TestEventTransportIntegration:
    def test_zero_latency_event_run_matches_inline_dynamics(self, golden):
        """With zero latency the event kernel preserves inline ordering, so
        the protocol dynamics (splits/merges/groups) are identical."""
        scale = ExperimentScale.scaled(factor=50, phase_periods=2)
        result = FlowSimulator(
            config=scale.config(),
            params=scale.params(transport="event"),
            scenario=scale.scenario(),
        ).run()
        assert result.total_splits == golden["total_splits"]
        assert result.total_merges == golden["total_merges"]
        assert result.final_active_groups == golden["final_active_groups"]

    def test_end_to_end_latency_scenario(self):
        """The acceptance scenario: churn + per-phase latency on the real
        protocol, driven through the event kernel."""
        scale = ExperimentScale.scaled(factor=100, phase_periods=2)
        scenario = churn_latency_scenario(
            phase_duration=scale.phase_duration,
            fail_servers=(0, 2, 1),
            link_latency=(0.005, 0.02, 0.05),
        )
        simulator = FlowSimulator(
            config=scale.config(),
            params=scale.params(transport="event", link_latency=0.005),
            scenario=scenario,
        )
        before = len(simulator.system.server_names())
        result = simulator.run()
        after = len(simulator.system.server_names())
        simulator.system.verify_invariants()
        assert after == before - 3  # the churn knobs actually fired
        assert isinstance(simulator.transport, EventTransport)
        assert simulator.engine is not None and simulator.engine.now > 0
        # Per-phase latency overrides must be visible in the metrics: phase C
        # exchanges are an order of magnitude slower than phase A's.
        samples = result.metrics.samples
        phase_a = [s.mean_message_latency for s in samples if s.workload == "A"]
        phase_c = [s.mean_message_latency for s in samples if s.workload == "C"]
        assert min(phase_a) > 0.0
        assert min(phase_c) > 5.0 * max(phase_a)

    def test_event_params_validation(self):
        with pytest.raises(ValueError):
            SimulationParams(transport="telepathy")
        with pytest.raises(ValueError):
            SimulationParams(link_latency=-1.0)
