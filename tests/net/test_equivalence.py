"""Transport equivalence and integration tests.

``golden_seed.json`` was captured from the seed implementation *before* the
transport refactor: a small flow-simulation run plus a depth-search trace on a
skew-split deployment.  ``InlineTransport`` (the default) must reproduce it
bit for bit, and ``BatchingTransport`` must match it too — its route cache
replays the same hop charges, so only wall-clock time may differ.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.experiments.runner import ExperimentScale
from repro.keys.identifier import RandomKeyGenerator
from repro.net.batching import BatchingTransport
from repro.net.event import EventTransport
from repro.net.inline import InlineTransport
from repro.sim.simulator import FlowSimulator, SimulationParams
from repro.util.rng import RandomStream
from repro.workload.distributions import workload_b, workload_c
from repro.workload.scenario import churn_latency_scenario

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_seed.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _build_traced_system(transport) -> tuple[ClashSystem, list, ClashConfig]:
    """Replay the golden capture's split workload on a fresh system."""
    config = ClashConfig(server_capacity=400.0)
    system = ClashSystem(
        config,
        [f"s{index}" for index in range(64)],
        rng=RandomStream(13),
        transport=transport,
    )
    system.bootstrap()
    generator = RandomKeyGenerator(
        width=config.key_bits,
        base_bits=8,
        rng=RandomStream(14),
        base_weights=workload_c().weights,
    )
    split_sequence = []
    for _ in range(120):
        key = generator.generate()
        group, owner = system.find_active_group(key)
        if group.depth >= config.effective_max_depth:
            continue
        system.server(owner).set_group_rate(group, 2 * config.server_capacity)
        outcome = system.split_server(owner)
        if outcome is not None:
            split_sequence.append(
                [
                    outcome.parent_server,
                    outcome.group.wildcard(),
                    outcome.child_server,
                    outcome.shed,
                ]
            )
    return system, split_sequence, config


def _assert_matches_depth_search_golden(system, split_sequence, config, golden):
    expected = golden["depth_search"]
    assert split_sequence == expected["split_sequence"]
    client = system.make_client("golden-client")
    probe_gen = RandomKeyGenerator(
        width=config.key_bits,
        base_bits=8,
        rng=RandomStream(99),
        base_weights=workload_b().weights,
    )
    for record in expected["lookups"]:
        result = client.find_group(probe_gen.generate(), use_cache=False)
        assert result.key.value == record["key"]
        assert result.group.depth == record["depth"]
        assert result.server == record["server"]
        assert result.probes == record["probes"]
        assert result.messages == record["messages"]
        assert list(result.probe_depths) == record["probe_depths"]
    snapshot = {k: round(v, 6) for k, v in sorted(system.messages.snapshot().items())}
    assert snapshot == expected["message_snapshot"]


class TestInlineEquivalence:
    def test_depth_search_trace_matches_seed(self, golden):
        system, splits, config = _build_traced_system(InlineTransport())
        _assert_matches_depth_search_golden(system, splits, config, golden)

    def test_flow_simulation_matches_seed_metrics(self, golden):
        scale = ExperimentScale.scaled(
            factor=golden["scale"]["factor"],
            phase_periods=golden["scale"]["phase_periods"],
        )
        result = FlowSimulator(
            config=scale.config(), params=scale.params(), scenario=scale.scenario()
        ).run()
        assert result.total_splits == golden["total_splits"]
        assert result.total_merges == golden["total_merges"]
        assert result.final_active_groups == golden["final_active_groups"]
        assert len(result.metrics.samples) == len(golden["samples"])
        for sample, expected in zip(result.metrics.samples, golden["samples"]):
            assert sample.workload == expected["workload"]
            assert sample.splits == expected["splits"]
            assert sample.merges == expected["merges"]
            assert sample.max_load_percent == pytest.approx(
                expected["max_load_percent"], abs=1e-5
            )
            assert sample.messages_per_server_per_second == pytest.approx(
                expected["messages_per_server_per_second"], abs=1e-5
            )
            for category, rate in expected["breakdown"].items():
                assert sample.message_breakdown[category] == pytest.approx(
                    rate, abs=1e-5
                )


class TestBatchingEquivalence:
    def test_depth_search_trace_matches_seed(self, golden):
        """Route coalescing must not change a single probe, reply or charge."""
        system, splits, config = _build_traced_system(BatchingTransport())
        _assert_matches_depth_search_golden(system, splits, config, golden)
        assert system.transport.route_cache_hits > 0  # the cache actually worked

    def test_flow_simulation_matches_inline(self, golden):
        scale = ExperimentScale.scaled(
            factor=golden["scale"]["factor"],
            phase_periods=golden["scale"]["phase_periods"],
        )
        result = FlowSimulator(
            config=scale.config(),
            params=scale.params(transport="batching"),
            scenario=scale.scenario(),
        ).run()
        assert result.total_splits == golden["total_splits"]
        assert result.total_merges == golden["total_merges"]
        assert result.final_active_groups == golden["final_active_groups"]

    def test_load_reports_flush_before_consolidation(self):
        """Batching defers LOAD_REPORT delivery, but the period's batch window
        closes inside exchange_load_reports — consolidation must observe the
        reports exactly as under inline dispatch."""
        config = ClashConfig.small_scale()
        results = []
        for transport in (InlineTransport(), BatchingTransport()):
            system = ClashSystem(
                config,
                [f"s{index}" for index in range(8)],
                rng=RandomStream(5),
                transport=transport,
            )
            system.bootstrap()
            generator = RandomKeyGenerator(
                width=config.key_bits,
                base_bits=4,
                rng=RandomStream(6),
                base_weights=workload_c(4).weights,
            )
            for _ in range(30):
                key = generator.generate()
                group, owner = system.find_active_group(key)
                if group.depth >= config.effective_max_depth:
                    continue
                system.server(owner).set_group_rate(group, 2 * config.server_capacity)
                system.split_server(owner)
            # Cool everything down so consolidation has work to do, then run
            # a full load check (reports + merges) at the period boundary.
            for server in system.servers().values():
                server.reset_interval()
                for group in server.active_groups():
                    server.set_group_rate(group, 0.0)
            report = system.run_load_check()
            system.verify_invariants()
            results.append(
                (
                    report.merge_count,
                    sorted(group.wildcard() for group in system.active_groups()),
                    {k: round(v, 9) for k, v in system.messages.snapshot().items()},
                )
            )
        assert results[0] == results[1]


class TestEventTransportIntegration:
    def test_zero_latency_event_run_matches_inline_dynamics(self, golden):
        """With zero latency the event kernel preserves inline ordering, so
        the protocol dynamics (splits/merges/groups) are identical."""
        scale = ExperimentScale.scaled(factor=50, phase_periods=2)
        result = FlowSimulator(
            config=scale.config(),
            params=scale.params(transport="event"),
            scenario=scale.scenario(),
        ).run()
        assert result.total_splits == golden["total_splits"]
        assert result.total_merges == golden["total_merges"]
        assert result.final_active_groups == golden["final_active_groups"]

    def test_end_to_end_latency_scenario(self):
        """The acceptance scenario: churn + per-phase latency on the real
        protocol, driven through the event kernel."""
        scale = ExperimentScale.scaled(factor=100, phase_periods=2)
        scenario = churn_latency_scenario(
            phase_duration=scale.phase_duration,
            fail_servers=(0, 2, 1),
            link_latency=(0.005, 0.02, 0.05),
        )
        simulator = FlowSimulator(
            config=scale.config(),
            params=scale.params(transport="event", link_latency=0.005),
            scenario=scenario,
        )
        before = len(simulator.system.server_names())
        result = simulator.run()
        after = len(simulator.system.server_names())
        simulator.system.verify_invariants()
        assert after == before - 3  # the churn knobs actually fired
        assert isinstance(simulator.transport, EventTransport)
        assert simulator.engine is not None and simulator.engine.now > 0
        # Per-phase latency overrides must be visible in the metrics: phase C
        # exchanges are an order of magnitude slower than phase A's.
        samples = result.metrics.samples
        phase_a = [s.mean_message_latency for s in samples if s.workload == "A"]
        phase_c = [s.mean_message_latency for s in samples if s.workload == "C"]
        assert min(phase_a) > 0.0
        assert min(phase_c) > 5.0 * max(phase_a)

    def test_event_params_validation(self):
        with pytest.raises(ValueError):
            SimulationParams(transport="telepathy")
        with pytest.raises(ValueError):
            SimulationParams(link_latency=-1.0)
