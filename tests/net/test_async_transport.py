"""Unit tests for the asyncio transport (repro.net.asyncio_transport)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.protocol import AwaitableHandler
from repro.net.asyncio_transport import AsyncTransport
from repro.net.envelope import DhtAddress, Envelope
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.transport import DeliveryFailed, TransportError
from repro.util.rng import RandomStream


class _Recorder:
    """A handler that records payloads and echoes a canned reply."""

    def __init__(self, reply=None):
        self.received: list[Envelope] = []
        self.reply = reply

    def __call__(self, envelope: Envelope):
        self.received.append(envelope)
        return self.reply


class _FakeLookup:
    def __init__(self, owner: str, hops: int):
        self.owner = owner
        self.hops = hops


class _FakeKey:
    def __init__(self, value: int, width: int = 8):
        self.value = value
        self.width = width


@pytest.fixture
def transport():
    instance = AsyncTransport()
    yield instance
    instance.close()


class TestAsyncDelivery:
    def test_request_returns_the_reply(self, transport):
        handler = _Recorder(reply="pong")
        transport.bind("srv", handler)
        delivery = transport.request(
            Envelope(source="cli", destination="srv", payload="ping")
        )
        assert delivery.reply == "pong"
        assert delivery.server == "srv"
        assert handler.received[0].payload == "ping"

    def test_awaitable_handler_is_awaited(self, transport):
        received = []

        async def handler(envelope: Envelope):
            await asyncio.sleep(0)  # a genuine suspension point
            received.append(envelope.payload)
            return "async-pong"

        transport.bind("srv", handler)
        delivery = transport.request(
            Envelope(source="cli", destination="srv", payload="ping")
        )
        assert delivery.reply == "async-pong"
        assert received == ["ping"]

    def test_posts_are_deferred_until_flush(self, transport):
        handler = _Recorder()
        transport.bind("srv", handler)
        for index in range(4):
            transport.post(Envelope(source="cli", destination="srv", payload=index))
        assert handler.received == []
        assert transport.flush() == 4
        assert [e.payload for e in handler.received] == [0, 1, 2, 3]
        assert transport.flush() == 0

    def test_per_endpoint_inboxes_preserve_per_destination_order(self, transport):
        handlers = {name: _Recorder() for name in ("a", "b")}
        for name, handler in handlers.items():
            transport.bind(name, handler)
        for index in range(6):
            destination = "a" if index % 2 == 0 else "b"
            transport.post(
                Envelope(source="cli", destination=destination, payload=index)
            )
        transport.flush()
        assert [e.payload for e in handlers["a"].received] == [0, 2, 4]
        assert [e.payload for e in handlers["b"].received] == [1, 3, 5]

    def test_dht_destination_resolves_and_charges_hops(self, transport):
        transport.bind("owner", _Recorder(reply="ok"))
        transport.set_resolver(lambda key: _FakeLookup("owner", 3))
        delivery = transport.request(
            Envelope(source="cli", destination=DhtAddress(_FakeKey(5)), payload="p")
        )
        assert delivery.server == "owner"
        assert delivery.hops == 3

    def test_latency_model_prices_the_round_trip(self):
        transport = AsyncTransport(latency=ConstantLatency(0.25))
        try:
            transport.bind("srv", _Recorder(reply="pong"))
            delivery = transport.request(
                Envelope(source="cli", destination="srv", payload="ping")
            )
            assert delivery.latency == pytest.approx(0.5)
            assert transport.now == pytest.approx(0.5)
            samples = transport.drain_latency_samples()
            assert samples == [pytest.approx(0.25), pytest.approx(0.25)]
            assert transport.drain_latency_samples() == []
        finally:
            transport.close()

    def test_handler_error_on_a_post_surfaces_at_flush(self, transport):
        def broken(envelope: Envelope):
            raise RuntimeError("handler blew up")

        transport.bind("srv", broken)
        transport.post(Envelope(source="cli", destination="srv", payload=1))
        with pytest.raises(RuntimeError, match="handler blew up"):
            transport.flush()

    def test_stalls_loudly_when_waiting_on_an_empty_calendar(self, transport):
        transport.bind("srv", _Recorder())
        with pytest.raises(TransportError, match="stalled"):
            transport._step(lambda: False)

    def test_close_is_idempotent(self):
        transport = AsyncTransport()
        transport.bind("srv", _Recorder())
        transport.post(Envelope(source="cli", destination="srv", payload=1))
        transport.flush()
        transport.close()
        transport.close()
        assert transport.loop.is_closed()


class TestAsyncFailureSemantics:
    def test_post_to_endpoint_unbound_after_scheduling_is_dropped(self, transport):
        survivor = _Recorder()
        transport.bind("doomed", _Recorder())
        transport.bind("survivor", survivor)
        transport.post(Envelope(source="cli", destination="doomed", payload=1))
        transport.post(Envelope(source="cli", destination="survivor", payload=2))
        transport.unbind("doomed")
        assert transport.flush() == 2  # both envelopes left the calendar
        assert transport.dropped_messages == 1
        assert [e.payload for e in survivor.received] == [2]

    def test_request_to_endpoint_unbound_mid_flight_raises_delivery_failed(self):
        """The typed mid-flight cancellation: the destination fails while the
        request is travelling, the exchange is cancelled and counted."""
        transport = AsyncTransport(latency=ConstantLatency(1.0))
        try:
            transport.bind("doomed", _Recorder(reply="never"))
            envelope = Envelope(source="cli", destination="doomed", payload="req")
            server, _hops = transport._route(envelope)
            future = transport.loop.create_future()
            transport._schedule(server, envelope, delay=1.0, reply=future)
            transport.unbind("doomed")
            with pytest.raises(DeliveryFailed) as failure:
                transport._step(lambda: future.done())
                raise future.exception()
            assert failure.value.destination == "doomed"
            assert transport.dropped_messages == 1
        finally:
            transport.close()


class TestAsyncDeterminism:
    @staticmethod
    def _delivery_run(seed: int) -> list[tuple[float, str, str]]:
        """Post 24 simultaneously-ready envelopes to 4 endpoints + a request."""
        transport = AsyncTransport(
            latency=UniformLatency(0.0, 1.0, RandomStream(500 + seed % 2)),
            ready_rng=RandomStream(seed),
        )
        try:
            transport.log_deliveries = True
            names = ("a", "b", "c", "d")
            for name in names:
                transport.bind(name, _Recorder(reply=name))
            for index in range(24):
                transport.post(
                    Envelope(
                        source="cli",
                        destination=names[index % len(names)],
                        payload=index,
                    )
                )
            transport.flush()
            transport.request(Envelope(source="cli", destination="a", payload="r"))
            return list(transport.delivery_log)
        finally:
            transport.close()

    def test_same_seed_means_same_delivery_order_across_five_runs(self):
        """The determinism contract: seeded jitter + seeded ready-order
        tie-breaking makes the delivery schedule a pure function of the
        seed."""
        runs = [self._delivery_run(seed=42) for _ in range(5)]
        assert all(run == runs[0] for run in runs[1:])
        assert len(runs[0]) == 25

    def test_different_ready_seed_changes_simultaneous_order(self):
        """With zero latency every post is ready at the same instant; the
        seeded tie-break is then the only thing deciding the order, so two
        seeds must disagree somewhere (24 messages ⇒ astronomically unlikely
        to shuffle identically)."""

        def zero_latency_run(seed: int) -> list[tuple[float, str, str]]:
            transport = AsyncTransport(ready_rng=RandomStream(seed))
            try:
                transport.log_deliveries = True
                recorders = {name: _Recorder() for name in ("a", "b", "c", "d")}
                for name, recorder in recorders.items():
                    transport.bind(name, recorder)
                for index in range(24):
                    transport.post(
                        Envelope(
                            source="cli",
                            destination=("a", "b", "c", "d")[index % 4],
                            payload=index,
                        )
                    )
                transport.flush()
                # Simultaneous arrivals may be shuffled, but every endpoint
                # still receives exactly its own messages.
                for offset, recorder in enumerate(recorders.values()):
                    payloads = [e.payload for e in recorder.received]
                    assert sorted(payloads) == list(range(offset, 24, 4))
                return list(transport.delivery_log)
            finally:
                transport.close()

        assert zero_latency_run(1) != zero_latency_run(2)
        assert zero_latency_run(1) == zero_latency_run(1)


class TestAwaitableHandlerBridge:
    def test_sync_call_path_is_plain_dispatch(self):
        bridge = AwaitableHandler(lambda envelope: ("reply", envelope.payload))
        assert bridge(Envelope(source="a", destination="b", payload=7)) == ("reply", 7)

    def test_async_side_unwraps_awaitable_results(self):
        async def coroutine_handler(envelope: Envelope):
            await asyncio.sleep(0)
            return ("async-reply", envelope.payload)

        bridge = AwaitableHandler(coroutine_handler)
        result = asyncio.run(
            bridge.handle_async(Envelope(source="a", destination="b", payload=9))
        )
        assert result == ("async-reply", 9)

    def test_sync_call_of_a_coroutine_handler_fails_loudly(self):
        async def coroutine_handler(envelope: Envelope):
            return "unreachable"

        bridge = AwaitableHandler(coroutine_handler)
        with pytest.raises(TransportError, match="awaitable"):
            bridge(Envelope(source="a", destination="b", payload=1))
