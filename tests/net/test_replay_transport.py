"""The replay transport: tie tapes, recorders and forced delivery order."""

from __future__ import annotations

import pytest

from repro.net import TRANSPORTS, build_transport
from repro.net.envelope import Envelope
from repro.net.replay import ReplaySchedule, ReplayTransport, TieRecorder, TieTape
from repro.util.rng import RandomStream


class TestTieRecorder:
    def test_passes_through_and_records(self):
        source = RandomStream(7)
        twin = RandomStream(7)
        recorder = TieRecorder(source)
        values = [recorder.uniform(0.0, 1.0) for _ in range(5)]
        assert values == [twin.uniform(0.0, 1.0) for _ in range(5)]
        assert recorder.draws == values

    def test_none_source_records_fifo_zeros(self):
        recorder = TieRecorder(None)
        assert [recorder.uniform(0.0, 1.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        assert recorder.draws == [0.0, 0.0, 0.0]


class TestTieTape:
    def test_replays_sparse_recording_in_draw_order(self):
        tape = TieTape({0: 0.5, 2: 0.25})
        assert [tape.uniform(0.0, 1.0) for _ in range(4)] == [0.5, 0.0, 0.25, 0.0]
        assert tape.draws == [0.5, 0.0, 0.25, 0.0]

    def test_empty_tape_is_fifo(self):
        tape = TieTape()
        assert [tape.uniform(0.0, 1.0) for _ in range(3)] == [0.0, 0.0, 0.0]

    def test_record_then_replay_identical(self):
        recorder = TieRecorder(RandomStream(11))
        recorded = [recorder.uniform(0.0, 1.0) for _ in range(8)]
        tape = TieTape(dict(enumerate(recorded)))
        assert [tape.uniform(0.0, 1.0) for _ in range(8)] == recorded


class _Log:
    def __init__(self, sink, name):
        self.sink = sink
        self.name = name

    def __call__(self, envelope):
        self.sink.append((self.name, envelope.payload))
        return None


class TestReplayTransport:
    def test_registered_in_the_transport_registry(self):
        spec = TRANSPORTS["replay"]
        assert spec.models_time
        assert spec.exact_equivalence
        assert spec.churn_equivalence
        assert spec.shard_aware
        built = build_transport("replay")
        try:
            assert isinstance(built, ReplayTransport)
            assert isinstance(built.ready_source, TieTape)
        finally:
            built.close()

    def test_default_schedule_is_empty(self):
        transport = ReplayTransport()
        try:
            assert transport.schedule.ties == {}
            assert transport.schedule.churn is None
        finally:
            transport.close()

    def test_forced_tie_order_reverses_simultaneous_posts(self):
        """Two same-instant posts deliver in tie order, not send order."""
        # Send-order (FIFO) reference: empty tape.
        for schedule, expected in [
            (ReplaySchedule(), [("a", 1), ("b", 2)]),
            # Force the second send to sort first.
            (ReplaySchedule(ties={0: 0.9, 1: 0.1}), [("b", 2), ("a", 1)]),
        ]:
            transport = ReplayTransport(schedule=schedule)
            sink: list = []
            try:
                transport.bind("a", _Log(sink, "a"))
                transport.bind("b", _Log(sink, "b"))
                transport.post(Envelope(source="c", destination="a", payload=1))
                transport.post(Envelope(source="c", destination="b", payload=2))
                transport.flush()
                assert sink == expected
            finally:
                transport.close()

    def test_build_transport_threads_schedule(self):
        schedule = ReplaySchedule(ties={3: 0.5})
        built = build_transport("replay", schedule=schedule)
        try:
            assert built.schedule is schedule
        finally:
            built.close()


class TestDeliveryLogRingBuffer:
    def test_log_is_opt_in(self):
        transport = build_transport("event")
        transport.bind("srv", _Log([], "srv"))
        transport.post(Envelope(source="c", destination="srv", payload=1))
        transport.flush()
        assert list(transport.delivery_log) == []

    def test_enable_records_and_cap_bounds_growth(self):
        transport = build_transport("event")
        transport.bind("srv", _Log([], "srv"))
        transport.enable_delivery_log(limit=4)
        for index in range(10):
            transport.post(Envelope(source="c", destination="srv", payload=index))
        transport.flush()
        rows = list(transport.delivery_log)
        assert len(rows) == 4  # only the most recent entries are kept
        assert all(server == "srv" for _, server, _ in rows)

    def test_unbounded_mode(self):
        transport = build_transport("event")
        transport.bind("srv", _Log([], "srv"))
        transport.enable_delivery_log(limit=None)
        for index in range(10):
            transport.post(Envelope(source="c", destination="srv", payload=index))
        transport.flush()
        assert len(transport.delivery_log) == 10

    def test_disable_drops_entries(self):
        transport = build_transport("event")
        transport.bind("srv", _Log([], "srv"))
        transport.enable_delivery_log()
        transport.post(Envelope(source="c", destination="srv", payload=1))
        transport.flush()
        assert len(transport.delivery_log) == 1
        transport.disable_delivery_log()
        assert not transport.log_deliveries
        assert len(transport.delivery_log) == 0

    def test_invalid_limit_rejected(self):
        transport = build_transport("event")
        with pytest.raises(ValueError):
            transport.enable_delivery_log(limit=0)
