"""Unit tests for the pluggable transport layer (repro.net)."""

from __future__ import annotations

import pytest

from repro.net import TRANSPORT_KINDS, TRANSPORTS, build_transport, transport_spec
from repro.net.asyncio_transport import AsyncTransport
from repro.net.batching import BatchingTransport
from repro.net.envelope import DhtAddress, Envelope
from repro.net.event import EventTransport
from repro.net.inline import InlineTransport
from repro.net.latency import (
    ConstantLatency,
    PerHopLatency,
    UniformLatency,
    ZeroLatency,
)
from repro.net.transport import DeliveryFailed, TransportError
from repro.sim.engine import SimulationEngine
from repro.util.rng import RandomStream


class _Recorder:
    """A handler that records payloads and echoes a canned reply."""

    def __init__(self, reply=None):
        self.received: list[Envelope] = []
        self.reply = reply

    def __call__(self, envelope: Envelope):
        self.received.append(envelope)
        return self.reply


class _FakeLookup:
    def __init__(self, owner: str, hops: int):
        self.owner = owner
        self.hops = hops


class _FakeKey:
    """Stands in for an IdentifierKey: value/width are all resolve() needs."""

    def __init__(self, value: int, width: int = 8):
        self.value = value
        self.width = width


class TestInlineTransport:
    def test_request_dispatches_synchronously(self):
        transport = InlineTransport()
        handler = _Recorder(reply="pong")
        transport.bind("srv", handler)
        delivery = transport.request(
            Envelope(source="cli", destination="srv", payload="ping")
        )
        assert delivery.reply == "pong"
        assert delivery.server == "srv"
        assert delivery.hops == 0
        assert handler.received[0].payload == "ping"

    def test_post_delivers_immediately_and_flush_is_noop(self):
        transport = InlineTransport()
        handler = _Recorder()
        transport.bind("srv", handler)
        transport.post(Envelope(source="cli", destination="srv", payload=1))
        assert len(handler.received) == 1
        assert transport.flush() == 0

    def test_dht_destination_uses_resolver_and_reports_hops(self):
        transport = InlineTransport()
        handler = _Recorder(reply="ok")
        transport.bind("owner", handler)
        transport.set_resolver(lambda key: _FakeLookup("owner", 3))
        delivery = transport.request(
            Envelope(source="cli", destination=DhtAddress(_FakeKey(5)), payload="p")
        )
        assert delivery.server == "owner"
        assert delivery.hops == 3

    def test_unknown_endpoint_raises(self):
        transport = InlineTransport()
        with pytest.raises(TransportError):
            transport.request(Envelope(source="a", destination="ghost", payload=1))

    def test_dht_destination_without_resolver_raises(self):
        transport = InlineTransport()
        transport.bind("srv", _Recorder())
        with pytest.raises(TransportError):
            transport.request(
                Envelope(source="a", destination=DhtAddress(_FakeKey(1)), payload=1)
            )

    def test_unbind_removes_endpoint(self):
        transport = InlineTransport()
        transport.bind("srv", _Recorder())
        transport.unbind("srv")
        with pytest.raises(TransportError):
            transport.post(Envelope(source="a", destination="srv", payload=1))


class TestEventTransport:
    def test_request_advances_the_clock_by_the_round_trip(self):
        engine = SimulationEngine()
        transport = EventTransport(engine=engine, latency=ConstantLatency(0.25))
        transport.bind("srv", _Recorder(reply="pong"))
        delivery = transport.request(
            Envelope(source="cli", destination="srv", payload="ping")
        )
        assert delivery.reply == "pong"
        assert delivery.latency == pytest.approx(0.5)
        assert engine.now == pytest.approx(0.5)

    def test_posted_envelopes_fire_in_scheduled_order_at_flush(self):
        engine = SimulationEngine()
        transport = EventTransport(engine=engine, latency=ZeroLatency())
        handler = _Recorder()
        transport.bind("srv", handler)
        for index in range(5):
            transport.post(Envelope(source="cli", destination="srv", payload=index))
        assert len(handler.received) == 0  # not delivered until the engine runs
        assert transport.flush() == 5
        assert [envelope.payload for envelope in handler.received] == [0, 1, 2, 3, 4]

    def test_delivery_order_is_deterministic_across_runs(self):
        """Two identically seeded runs deliver the same envelopes at the same
        times in the same order — the determinism EventTransport inherits from
        the engine's (time, sequence) ordering and seeded jitter."""

        def run() -> list[tuple[float, str, str]]:
            engine = SimulationEngine()
            transport = EventTransport(
                engine=engine,
                latency=UniformLatency(0.0, 1.0, RandomStream(77)),
            )
            transport.log_deliveries = True
            for name in ("a", "b", "c"):
                transport.bind(name, _Recorder(reply=name))
            for index in range(20):
                destination = ("a", "b", "c")[index % 3]
                transport.post(
                    Envelope(source="cli", destination=destination, payload=index)
                )
            transport.flush()
            transport.request(Envelope(source="cli", destination="a", payload="r"))
            return list(transport.delivery_log)

        first, second = run(), run()
        assert first == second
        assert len(first) == 21

    def test_jittered_posts_reorder_by_sampled_latency(self):
        engine = SimulationEngine()
        transport = EventTransport(
            engine=engine, latency=UniformLatency(0.0, 10.0, RandomStream(3))
        )
        handler = _Recorder()
        transport.bind("srv", handler)
        for index in range(10):
            transport.post(Envelope(source="cli", destination="srv", payload=index))
        transport.flush()
        delivered = [envelope.payload for envelope in handler.received]
        assert sorted(delivered) == list(range(10))
        assert delivered != list(range(10))  # jitter actually reordered them

    def test_latency_samples_drain(self):
        transport = EventTransport(latency=ConstantLatency(0.1))
        transport.bind("srv", _Recorder())
        transport.post(Envelope(source="cli", destination="srv", payload=1))
        transport.flush()
        samples = transport.drain_latency_samples()
        assert samples == [pytest.approx(0.1)]
        assert transport.drain_latency_samples() == []

    def test_post_to_endpoint_unbound_after_scheduling_is_dropped(self):
        """Regression: a one-way delivery whose destination was unbound after
        scheduling (server failed with the message in flight) used to let
        TransportError escape run_until and abort the run."""
        engine = SimulationEngine()
        transport = EventTransport(engine=engine, latency=ConstantLatency(0.5))
        survivor = _Recorder()
        transport.bind("doomed", _Recorder())
        transport.bind("survivor", survivor)
        transport.post(Envelope(source="cli", destination="doomed", payload=1))
        transport.post(Envelope(source="cli", destination="survivor", payload=2))
        transport.unbind("doomed")
        flushed = transport.flush()  # must not raise
        assert flushed == 2  # both envelopes left the calendar
        assert transport.dropped_messages == 1
        assert [e.payload for e in survivor.received] == [2]

    def test_request_to_endpoint_unbound_mid_flight_raises_delivery_failed(self):
        """The PR 3 follow-up: a request whose destination fails while the
        request is travelling is cancelled with a *typed* error and counted,
        instead of a bare TransportError aborting the run."""
        engine = SimulationEngine()
        transport = EventTransport(engine=engine, latency=ConstantLatency(1.0))
        transport.bind("doomed", _Recorder(reply="never"))
        engine.schedule_at(0.5, lambda now: transport.unbind("doomed"))
        with pytest.raises(DeliveryFailed) as failure:
            transport.request(
                Envelope(source="cli", destination="doomed", payload="req")
            )
        assert failure.value.destination == "doomed"
        assert transport.dropped_messages == 1
        # Only the forward leg was travelled; no reply-leg sample exists.
        assert transport.drain_latency_samples() == [pytest.approx(1.0)]

    def test_per_hop_latency_prices_dht_routes(self):
        engine = SimulationEngine()
        transport = EventTransport(
            engine=engine, latency=PerHopLatency(base=0.01, per_hop=0.05)
        )
        transport.bind("owner", _Recorder(reply="ok"))
        transport.set_resolver(lambda key: _FakeLookup("owner", 4))
        delivery = transport.request(
            Envelope(source="cli", destination=DhtAddress(_FakeKey(9)), payload="p")
        )
        # forward: base + 4 hops; reply: direct (0 hops), base only.
        assert delivery.latency == pytest.approx(0.01 + 4 * 0.05 + 0.01)


class TestBatchingTransport:
    def test_posts_are_deferred_until_flush(self):
        transport = BatchingTransport()
        handler = _Recorder()
        transport.bind("srv", handler)
        transport.post(Envelope(source="cli", destination="srv", payload=1))
        transport.post(Envelope(source="cli", destination="srv", payload=2))
        assert handler.received == []
        assert transport.pending == 2
        assert transport.flush() == 2
        assert [envelope.payload for envelope in handler.received] == [1, 2]
        assert transport.pending == 0
        assert transport.flush() == 0

    def test_flush_preserves_per_destination_order(self):
        transport = BatchingTransport()
        handlers = {name: _Recorder() for name in ("a", "b")}
        for name, handler in handlers.items():
            transport.bind(name, handler)
        for index in range(6):
            destination = "a" if index % 2 == 0 else "b"
            transport.post(
                Envelope(source="cli", destination=destination, payload=index)
            )
        transport.flush()
        assert [e.payload for e in handlers["a"].received] == [0, 2, 4]
        assert [e.payload for e in handlers["b"].received] == [1, 3, 5]

    def test_route_cache_replays_identical_hop_charges(self):
        transport = BatchingTransport()
        transport.bind("owner", _Recorder(reply="ok"))
        calls = []

        def resolver(key):
            calls.append(key.value)
            return _FakeLookup("owner", 7)

        transport.set_resolver(resolver)
        key = _FakeKey(42)
        first = transport.request(
            Envelope(source="c", destination=DhtAddress(key), payload="x")
        )
        second = transport.request(
            Envelope(source="c", destination=DhtAddress(key), payload="y")
        )
        assert first.hops == second.hops == 7
        assert calls == [42]  # one real DHT walk, one cache hit
        assert transport.route_cache_hits == 1

    def test_flush_opens_a_new_route_window(self):
        transport = BatchingTransport()
        transport.bind("owner", _Recorder())
        calls = []

        def resolver(key):
            calls.append(key.value)
            return _FakeLookup("owner", 1)

        transport.set_resolver(resolver)
        transport.request(
            Envelope(source="c", destination=DhtAddress(_FakeKey(1)), payload="x")
        )
        transport.flush()
        transport.request(
            Envelope(source="c", destination=DhtAddress(_FakeKey(1)), payload="x")
        )
        assert calls == [1, 1]  # re-resolved after the window closed

    def test_unbind_drops_cached_routes(self):
        transport = BatchingTransport()
        transport.bind("owner", _Recorder())
        transport.set_resolver(lambda key: _FakeLookup("owner", 2))
        transport.resolve(_FakeKey(9))
        transport.unbind("owner")
        assert transport._route_cache == {}

    def test_envelopes_for_failed_endpoints_are_dropped_at_flush(self):
        transport = BatchingTransport()
        transport.bind("srv", _Recorder())
        transport.post(Envelope(source="cli", destination="srv", payload=1))
        transport.unbind("srv")
        assert transport.flush() == 0  # dropped, not raised
        assert transport.dropped_messages == 1

    def test_all_dropped_flush_is_not_counted_as_a_batch(self):
        """A flush where every queued envelope was dropped delivered nothing,
        so it must not inflate batches_flushed."""
        transport = BatchingTransport()
        transport.bind("srv", _Recorder())
        transport.post(Envelope(source="cli", destination="srv", payload=1))
        transport.post(Envelope(source="cli", destination="srv", payload=2))
        transport.unbind("srv")
        assert transport.flush() == 0
        assert transport.batches_flushed == 0
        assert transport.dropped_messages == 2
        # A flush that delivers something still counts.
        transport.bind("srv", _Recorder())
        transport.post(Envelope(source="cli", destination="srv", payload=3))
        assert transport.flush() == 1
        assert transport.batches_flushed == 1

    def test_handler_unbinding_own_endpoint_mid_batch_drops_remainder(self):
        """Regression: the bound check must run per envelope, not once per
        destination.  A handler that unbinds its *own* endpoint while its
        batch is draining (failure-triggered re-root) used to let the next
        envelope reach ``_dispatch`` and abort the run with a bare
        ``TransportError``; the remainder must be dropped and counted."""
        transport = BatchingTransport()
        received = []

        def self_unbinding(envelope):
            received.append(envelope.payload)
            transport.unbind("srv")

        transport.bind("srv", self_unbinding)
        transport.bind("other", _Recorder())
        for payload in (1, 2, 3):
            transport.post(Envelope(source="cli", destination="srv", payload=payload))
        transport.post(Envelope(source="cli", destination="other", payload=4))
        assert transport.flush() == 2  # the first srv envelope + other's
        assert received == [1]
        assert transport.dropped_messages == 2

    def test_rebind_mid_batch_resumes_delivery(self):
        """The per-envelope recheck also means a handler that unbinds and
        then *rebinds* its endpoint (recovery) sees delivery resume."""
        transport = BatchingTransport()
        received = []

        def flapping(envelope):
            received.append(envelope.payload)
            transport.unbind("srv")
            transport.bind("srv", flapping)

        transport.bind("srv", flapping)
        for payload in (1, 2, 3):
            transport.post(Envelope(source="cli", destination="srv", payload=payload))
        assert transport.flush() == 3
        assert received == [1, 2, 3]
        assert transport.dropped_messages == 0


class TestBuildTransport:
    def test_kinds(self):
        assert isinstance(build_transport("inline"), InlineTransport)
        assert isinstance(build_transport("batching"), BatchingTransport)
        assert isinstance(build_transport("event"), EventTransport)
        built = build_transport("async")
        assert isinstance(built, AsyncTransport)
        built.close()

    def test_registry_is_the_single_source_of_truth(self):
        """Every enumeration derives from net.TRANSPORTS."""
        assert TRANSPORT_KINDS == tuple(TRANSPORTS)
        assert set(TRANSPORT_KINDS) == {
            "inline",
            "event",
            "batching",
            "async",
            "replay",
            "socket",
        }
        for kind, spec in TRANSPORTS.items():
            assert spec.kind == kind
            assert transport_spec(kind) is spec
            built = spec.factory(engine=None, latency=None, ready_rng=None)
            try:
                assert built.endpoints() == []
            finally:
                built.close()
        # The equivalence contracts the golden harness relies on.
        assert TRANSPORTS["inline"].exact_equivalence
        assert TRANSPORTS["async"].exact_equivalence
        assert TRANSPORTS["async"].churn_equivalence
        assert not TRANSPORTS["event"].churn_equivalence
        assert TRANSPORTS["event"].needs_engine
        assert not TRANSPORTS["async"].needs_engine
        # The socket transport is clock-less like batching: both equivalence
        # contracts hold, and it is the shard-aware multi-process carrier.
        assert TRANSPORTS["socket"].exact_equivalence
        assert TRANSPORTS["socket"].churn_equivalence
        assert TRANSPORTS["socket"].shard_aware
        assert not TRANSPORTS["socket"].models_time
        assert not TRANSPORTS["socket"].needs_engine

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_transport("carrier-pigeon")
        with pytest.raises(ValueError):
            transport_spec("carrier-pigeon")

    def test_event_latency_selection(self):
        constant = build_transport("event", link_latency=0.5)
        assert isinstance(constant.latency_model, ConstantLatency)
        per_hop = build_transport("event", link_latency=0.1, per_hop_latency=0.05)
        assert isinstance(per_hop.latency_model, PerHopLatency)
        jittered = build_transport(
            "event", link_latency=0.1, latency_jitter=0.05, rng=RandomStream(1)
        )
        assert isinstance(jittered.latency_model, UniformLatency)
        zero = build_transport("event")
        assert isinstance(zero.latency_model, ZeroLatency)

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            build_transport("event", link_latency=0.1, latency_jitter=0.05)

    def test_per_hop_and_jitter_cannot_be_combined(self):
        with pytest.raises(ValueError):
            build_transport(
                "event",
                per_hop_latency=0.01,
                latency_jitter=0.01,
                rng=RandomStream(1),
            )
