"""Sharded-ring federation: equivalence and shard-locality invariants.

Two contracts, parametrized over the :data:`repro.net.TRANSPORTS` registry:

* **``shards=1`` is the seed.**  An explicit single-shard run routes through
  :class:`~repro.dht.router.SingleRingRouter` and must reproduce the
  committed golden capture — depth-search trace and flow metrics — on every
  registered transport, exactly as the default (shard-less) configuration
  does.  (The default *is* ``shards=1``, so ``tests/net/test_equivalence.py``
  already holds every transport's full golden battery to the router path;
  this module additionally pins the explicit knob and the sample-stream
  comparison between the two spellings.)
* **Sharded runs keep the shard-locality invariants under churn.**  After
  every join/failure event of a churn scenario, every key group must be
  registered on exactly one shard (its owner lives on the shard owning its
  virtual key) and no consolidation linkage may cross shards —
  ``ClashSystem.verify_invariants`` enforces both for sharded deployments
  and runs after every membership event via ``verify_after_membership``.
"""

from __future__ import annotations

import pytest
from equivalence import (
    assert_depth_search_matches_golden,
    assert_matches_golden_flow,
    assert_samples_bit_identical,
    churn_scenario,
    load_golden,
    make_transport,
    reference_scale,
    run_flow,
)

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.dht.router import ShardedRingRouter, SingleRingRouter
from repro.net import TRANSPORTS
from repro.util.rng import RandomStream

EXACT_KINDS = [kind for kind, spec in TRANSPORTS.items() if spec.exact_equivalence]
CHURN_KINDS = [kind for kind, spec in TRANSPORTS.items() if spec.churn_equivalence]
SHARD_KINDS = [kind for kind, spec in TRANSPORTS.items() if spec.shard_aware]


@pytest.fixture(scope="module")
def golden() -> dict:
    return load_golden()


class TestSingleShardIsTheSeed:
    """`--shards 1` must be indistinguishable from the pre-router seed."""

    def test_default_router_is_the_single_ring_wrapper(self, small_config):
        system = ClashSystem.create(small_config, server_count=8, rng=RandomStream(3))
        assert isinstance(system.router, SingleRingRouter)
        assert system.shard_count == 1
        # The back-compat single-ring accessor still works.
        assert len(system.ring) == 8

    @pytest.mark.parametrize("kind", EXACT_KINDS)
    def test_depth_search_trace_matches_seed(self, kind, golden):
        """The golden depth-search trace, replayed on an explicit shards=1
        system, transport by transport."""
        from equivalence import build_traced_system

        system, splits, config = build_traced_system(make_transport(kind))
        try:
            assert isinstance(system.router, SingleRingRouter)
            assert_depth_search_matches_golden(system, splits, config, golden)
        finally:
            system.transport.close()

    def test_explicit_single_shard_flow_matches_seed_metrics(self, golden):
        scale = reference_scale(golden)
        result = run_flow("inline", scale, scale.scenario(), shards=1)
        assert_matches_golden_flow(result, golden)

    @pytest.mark.parametrize("kind", [k for k in CHURN_KINDS if k != "inline"])
    def test_explicit_single_shard_churn_bit_identical(self, kind, golden):
        """Explicit shards=1 under churn: every churn-equivalence transport
        emits the inline stream sample for sample."""
        scale = reference_scale(golden)
        scenario = churn_scenario(scale)
        reference = run_flow(
            "inline", scale, scenario, verify_membership=True, shards=1
        )
        result = run_flow(kind, scale, scenario, verify_membership=True, shards=1)
        assert_samples_bit_identical(result, reference)


class TestShardedChurnInvariants:
    """Per-shard invariants hold after every membership event."""

    @pytest.mark.parametrize("kind", ["inline", "async"])
    def test_churn_scenario_keeps_shard_invariants(self, kind, golden):
        """verify_after_membership runs the full invariant battery — shard
        registration and parent-link locality included — after every join
        and failure of the churn scenario."""
        assert kind in SHARD_KINDS
        scale = reference_scale(golden)
        result = run_flow(
            kind, scale, churn_scenario(scale), verify_membership=True, shards=4
        )
        samples = result.metrics.samples
        assert sum(s.server_joins for s in samples) > 0
        assert sum(s.server_failures for s in samples) > 0
        assert all(s.shard_count == 4 for s in samples)
        assert all(len(s.shard_peak_loads) == 4 for s in samples)
        # Peak-to-mean per-shard load is >= 1 whenever a period carries load
        # (0.0 is the documented idle-period value).
        assert all(
            s.cross_shard_imbalance >= 1.0 or s.cross_shard_imbalance == 0.0
            for s in samples
        )
        assert any(s.cross_shard_imbalance >= 1.0 for s in samples)

    def test_sharded_churn_bit_identical_across_clockless_transports(self, golden):
        """Sharding composes with the transport-equivalence contract: the
        clock-less transports stay bit-identical on a sharded churn run."""
        scale = reference_scale(golden)
        scenario = churn_scenario(scale)
        reference = run_flow(
            "inline", scale, scenario, verify_membership=True, shards=2
        )
        for kind in [k for k in CHURN_KINDS if k != "inline"]:
            result = run_flow(kind, scale, scenario, verify_membership=True, shards=2)
            assert_samples_bit_identical(result, reference)


class TestStaticPartitionIsTheGolden:
    """The partition-map refactor must be invisible when the map is static.

    ``partition="static"`` routes every shard decision through an explicit
    :class:`~repro.dht.partition.StaticPrefixPartition` instead of the old
    hard-coded top-bits rule; a sharded run spelt either way must stay
    bit-identical on every shard-aware transport — with and without churn.
    """

    @pytest.mark.parametrize("kind", SHARD_KINDS)
    def test_sharded_flow_bit_identical_to_the_default(self, kind, golden):
        scale = reference_scale(golden)
        scenario = scale.scenario()
        reference = run_flow(kind, scale, scenario, shards=4)
        result = run_flow(kind, scale, scenario, shards=4, partition="static")
        assert_samples_bit_identical(result, reference)
        assert all(s.partition_version == 0 for s in result.metrics.samples)
        assert all(s.groups_migrated == 0 for s in result.metrics.samples)

    @pytest.mark.parametrize("kind", SHARD_KINDS)
    def test_sharded_churn_bit_identical_to_the_default(self, kind, golden):
        scale = reference_scale(golden)
        scenario = churn_scenario(scale)
        reference = run_flow(
            kind, scale, scenario, verify_membership=True, shards=4
        )
        result = run_flow(
            kind,
            scale,
            scenario,
            verify_membership=True,
            shards=4,
            partition="static",
        )
        assert_samples_bit_identical(result, reference)


class TestShardedSystemMechanics:
    """Direct protocol-level checks on a sharded deployment."""

    @pytest.fixture
    def sharded_system(self, small_config):
        system = ClashSystem.create(
            small_config, server_count=16, rng=RandomStream(12345), shards=4
        )
        return system

    def test_every_group_registers_on_its_keys_shard(self, sharded_system):
        assert isinstance(sharded_system.router, ShardedRingRouter)
        sharded_system.verify_invariants()
        router = sharded_system.router
        shards_seen = set()
        for group, owner in sharded_system.active_groups().items():
            shard = router.shard_of_key(group.virtual_key)
            assert router.server_shard(owner) == shard
            shards_seen.add(shard)
        assert shards_seen == {0, 1, 2, 3}

    def test_join_and_failure_stay_shard_local(self, sharded_system):
        system = sharded_system
        joined = system.handle_server_join("late-joiner")
        system.verify_invariants()
        joiner_shard = system.router.server_shard("late-joiner")
        for group in joined:
            assert system.router.shard_of_key(group.virtual_key) == joiner_shard
        victim = next(
            name
            for name in sorted(system.server_names())
            if system.can_remove_server(name)
        )
        system.handle_server_failure(victim)
        system.verify_invariants()

    def test_failure_of_a_shards_last_server_is_refused(self, small_config):
        # 4 servers over 4 shards: every server is its shard's last.
        system = ClashSystem.create(
            small_config, server_count=4, rng=RandomStream(9), shards=4
        )
        assert not system.can_remove_server("s0")
        with pytest.raises(ValueError):
            system.handle_server_failure("s0")

    def test_too_many_shards_for_the_depth_is_rejected(self, small_config):
        # small_scale has initial_depth=2: 8 shards would need 3 prefix bits.
        with pytest.raises(ValueError):
            ClashSystem.create(
                small_config, server_count=16, rng=RandomStream(1), shards=8
            )

    def test_more_shards_than_servers_rejected(self, small_config):
        with pytest.raises(ValueError):
            ClashSystem.create(
                small_config, server_count=2, rng=RandomStream(1), shards=4
            )

    def test_endpoints_are_namespaced_per_shard(self, sharded_system):
        transport = sharded_system.transport
        router = sharded_system.router
        for shard in range(4):
            names = transport.endpoints(shard=shard)
            assert sorted(names) == sorted(router.servers_in_shard(shard))
            for name in names:
                assert transport.endpoint_shard(name) == shard
        assert sorted(transport.endpoints()) == sorted(sharded_system.server_names())
