"""Reusable transport-equivalence harness.

``golden_seed.json`` was captured from the seed implementation *before* the
transport refactor: a small flow-simulation run plus a depth-search trace on a
skew-split deployment.  Any transport whose registry entry claims
``exact_equivalence`` must reproduce those golden numbers — and inline
``PeriodSample`` streams bit for bit — on the reference workloads; transports
claiming ``churn_equivalence`` must stay bit-identical under period-boundary
membership churn too.

The helpers here are deliberately transport-agnostic so the equivalence tests
parametrize over :data:`repro.net.TRANSPORTS` instead of hand-maintaining a
transport list; a future transport gets the whole battery by registering
itself.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.experiments.runner import ExperimentScale
from repro.keys.identifier import RandomKeyGenerator
from repro.net import build_transport
from repro.sim.simulator import FlowSimulator, SimulationResult
from repro.util.rng import RandomStream
from repro.workload.distributions import (
    workload_a,
    workload_b,
    workload_c,
)
from repro.workload.scenario import PhasedScenario, ScenarioPhase

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_seed.json"

#: The reference workloads every registered transport is checked on (the
#: paper's three skew levels), plus the churn scenario built by
#: :func:`churn_scenario`.
REFERENCE_WORKLOADS = ("A", "B", "C")

_WORKLOAD_FACTORIES = {"A": workload_a, "B": workload_b, "C": workload_c}


def load_golden() -> dict:
    """The committed golden capture from the seed implementation."""
    return json.loads(GOLDEN_PATH.read_text())


# --------------------------------------------------------------------- #
# Depth-search trace (golden capture replay)
# --------------------------------------------------------------------- #


def build_traced_system(transport) -> tuple[ClashSystem, list, ClashConfig]:
    """Replay the golden capture's split workload on a fresh system."""
    config = ClashConfig(server_capacity=400.0)
    system = ClashSystem(
        config,
        [f"s{index}" for index in range(64)],
        rng=RandomStream(13),
        transport=transport,
    )
    system.bootstrap()
    generator = RandomKeyGenerator(
        width=config.key_bits,
        base_bits=8,
        rng=RandomStream(14),
        base_weights=workload_c().weights,
    )
    split_sequence = []
    for _ in range(120):
        key = generator.generate()
        group, owner = system.find_active_group(key)
        if group.depth >= config.effective_max_depth:
            continue
        system.server(owner).set_group_rate(group, 2 * config.server_capacity)
        outcome = system.split_server(owner)
        if outcome is not None:
            split_sequence.append(
                [
                    outcome.parent_server,
                    outcome.group.wildcard(),
                    outcome.child_server,
                    outcome.shed,
                ]
            )
    return system, split_sequence, config


def assert_depth_search_matches_golden(system, split_sequence, config, golden) -> None:
    """Every probe, reply, hop charge and counter must match the seed capture."""
    expected = golden["depth_search"]
    assert split_sequence == expected["split_sequence"]
    client = system.make_client("golden-client")
    probe_gen = RandomKeyGenerator(
        width=config.key_bits,
        base_bits=8,
        rng=RandomStream(99),
        base_weights=workload_b().weights,
    )
    for record in expected["lookups"]:
        result = client.find_group(probe_gen.generate(), use_cache=False)
        assert result.key.value == record["key"]
        assert result.group.depth == record["depth"]
        assert result.server == record["server"]
        assert result.probes == record["probes"]
        assert result.messages == record["messages"]
        assert list(result.probe_depths) == record["probe_depths"]
    snapshot = {k: round(v, 6) for k, v in sorted(system.messages.snapshot().items())}
    assert snapshot == expected["message_snapshot"]


# --------------------------------------------------------------------- #
# Flow-simulation runs (PeriodSample stream comparison)
# --------------------------------------------------------------------- #


def reference_scale(golden: dict | None = None) -> ExperimentScale:
    """The scale the golden flow simulation was captured at."""
    golden = golden if golden is not None else load_golden()
    return ExperimentScale.scaled(
        factor=golden["scale"]["factor"],
        phase_periods=golden["scale"]["phase_periods"],
    )


def single_workload_scenario(workload: str, scale: ExperimentScale) -> PhasedScenario:
    """A one-phase scenario running just one of the reference workloads."""
    spec = _WORKLOAD_FACTORIES[workload]()
    return PhasedScenario([ScenarioPhase(spec=spec, duration=scale.phase_duration)])


def churn_scenario(scale: ExperimentScale) -> PhasedScenario:
    """The A → B → C scenario with Poisson join/fail churn on every phase."""
    return dataclasses.replace(scale, join_rate=0.005, fail_rate=0.005).scenario()


def run_flow(
    transport_kind: str,
    scale: ExperimentScale,
    scenario: PhasedScenario,
    verify_membership: bool = False,
    shards: int = 1,
    partition: str = "static",
) -> SimulationResult:
    """One flow simulation on the given transport (zero link latency).

    ``shards`` routes the run through the ring federation; the default 1
    (the :class:`~repro.dht.router.SingleRingRouter`) is the configuration
    the golden capture pins.  ``partition`` selects the sharded runs' map
    (naming ``"static"`` explicitly must be indistinguishable from the
    pre-partition-map default — the golden guard asserts exactly that).
    """
    simulator = FlowSimulator(
        config=scale.config(),
        params=scale.params(
            transport=transport_kind, shards=shards, partition=partition
        ),
        scenario=scenario,
    )
    simulator.verify_after_membership = verify_membership
    try:
        result = simulator.run()
        simulator.system.verify_invariants()
    finally:
        simulator.transport.close()
    return result


def assert_samples_bit_identical(
    result: SimulationResult, reference: SimulationResult
) -> None:
    """The two runs must match field for field, sample for sample.

    ``PeriodSample`` is a plain dataclass, so equality compares every field —
    including the floating-point load, depth and message-rate series — with
    exact (bit-level) equality, not a tolerance
    (:meth:`repro.sim.simulator.SimulationResult.diff` is the canonical
    comparator).
    """
    differences = result.diff(reference)
    assert not differences, "; ".join(differences)


def assert_matches_golden_flow(result: SimulationResult, golden: dict) -> None:
    """The run must reproduce the golden capture's recorded metrics."""
    assert result.total_splits == golden["total_splits"]
    assert result.total_merges == golden["total_merges"]
    assert result.final_active_groups == golden["final_active_groups"]
    assert len(result.metrics.samples) == len(golden["samples"])
    for sample, expected in zip(result.metrics.samples, golden["samples"]):
        assert sample.workload == expected["workload"]
        assert sample.splits == expected["splits"]
        assert sample.merges == expected["merges"]
        assert abs(sample.max_load_percent - expected["max_load_percent"]) < 1e-5
        assert (
            abs(sample.messages_per_server_per_second - expected["messages_per_server_per_second"])
            < 1e-5
        )
        for category, rate in expected["breakdown"].items():
            assert abs(sample.message_breakdown[category] - rate) < 1e-5


# --------------------------------------------------------------------- #
# Transport construction for the parametrized tests
# --------------------------------------------------------------------- #


def make_transport(kind: str):
    """A zero-latency instance of the registered transport ``kind``."""
    return build_transport(kind)
