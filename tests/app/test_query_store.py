"""Unit tests for repro.app.query_store."""

from __future__ import annotations

import math

import pytest

from repro.app.query_store import Query, QueryStore
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup


def key(bits: str) -> IdentifierKey:
    return IdentifierKey.from_bits(bits)


class TestQuery:
    def test_defaults(self):
        query = Query(query_id=1, key=key("0101"))
        assert query.expires_at == math.inf
        assert query.client == "client"


class TestQueryStore:
    def test_add_and_len(self):
        store = QueryStore()
        store.add(Query(query_id=1, key=key("0101")))
        store.add(Query(query_id=2, key=key("0111")))
        assert len(store) == 2
        assert 1 in store and 3 not in store

    def test_duplicate_id_rejected(self):
        store = QueryStore()
        store.add(Query(query_id=1, key=key("0101")))
        with pytest.raises(ValueError):
            store.add(Query(query_id=1, key=key("0111")))

    def test_remove(self):
        store = QueryStore()
        store.add(Query(query_id=1, key=key("0101")))
        removed = store.remove(1)
        assert removed.query_id == 1
        assert len(store) == 0
        with pytest.raises(KeyError):
            store.remove(1)

    def test_count_in_group(self):
        store = QueryStore()
        store.add_all(
            [
                Query(query_id=1, key=key("0101")),
                Query(query_id=2, key=key("0111")),
                Query(query_id=3, key=key("1101")),
            ]
        )
        assert store.count_in_group(KeyGroup.from_wildcard("01*", width=4)) == 2
        assert store.count_in_group(KeyGroup.from_wildcard("11*", width=4)) == 1
        assert store.count_in_group(KeyGroup.from_wildcard("00*", width=4)) == 0

    def test_extract_group_removes_and_returns(self):
        store = QueryStore()
        store.add_all(
            [
                Query(query_id=1, key=key("0101")),
                Query(query_id=2, key=key("0111")),
                Query(query_id=3, key=key("1101")),
            ]
        )
        moved = store.extract_group(KeyGroup.from_wildcard("01*", width=4))
        assert {query.query_id for query in moved} == {1, 2}
        assert len(store) == 1
        assert store.count_in_group(KeyGroup.from_wildcard("01*", width=4)) == 0

    def test_extract_empty_group(self):
        store = QueryStore()
        assert store.extract_group(KeyGroup.from_wildcard("0*", width=4)) == []

    def test_expire_removes_old_queries(self):
        store = QueryStore()
        store.add(Query(query_id=1, key=key("0101"), expires_at=10.0))
        store.add(Query(query_id=2, key=key("0111"), expires_at=20.0))
        store.add(Query(query_id=3, key=key("1101")))
        expired = store.expire(now=15.0)
        assert [query.query_id for query in expired] == [1]
        assert len(store) == 2
        assert store.expire(now=15.0) == []

    def test_queries_listing(self):
        store = QueryStore()
        store.add(Query(query_id=5, key=key("0000")))
        assert [query.query_id for query in store.queries()] == [5]
