"""Unit tests for repro.app.streams."""

from __future__ import annotations

import pytest

from repro.app.streams import VirtualStream
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream


def make_stream(rate: float = 2.0, mean_length: float = 10.0, seed: int = 3) -> VirtualStream:
    return VirtualStream(
        source="src0",
        key=IdentifierKey(value=99, width=12),
        rate=rate,
        mean_length=mean_length,
        rng=RandomStream(seed),
        started_at=100.0,
    )


class TestVirtualStream:
    def test_length_is_at_least_one(self):
        for seed in range(20):
            stream = make_stream(mean_length=1.0, seed=seed)
            assert stream.length >= 1

    def test_packets_share_the_stream_key(self):
        stream = make_stream()
        packets = [stream.next_packet() for _ in range(min(stream.length, 5))]
        assert all(packet.key == stream.key for packet in packets)
        assert [packet.sequence for packet in packets] == list(range(len(packets)))

    def test_timestamps_advance_at_rate(self):
        stream = make_stream(rate=2.0)
        first = stream.next_packet()
        if stream.length > 1:
            second = stream.next_packet()
            assert second.timestamp - first.timestamp == pytest.approx(0.5)
        assert first.timestamp == pytest.approx(100.0)

    def test_exhaustion(self):
        stream = make_stream(mean_length=3.0)
        for _ in range(stream.length):
            stream.next_packet()
        assert stream.exhausted
        with pytest.raises(ValueError):
            stream.next_packet()

    def test_expected_duration(self):
        stream = make_stream(rate=4.0)
        assert stream.expected_duration == pytest.approx(stream.length / 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_stream(rate=0.0)
        with pytest.raises(ValueError):
            make_stream(mean_length=0.0)

    def test_mean_length_statistics(self):
        lengths = [make_stream(mean_length=50.0, seed=seed).length for seed in range(300)]
        assert 35 < sum(lengths) / len(lengths) < 65
