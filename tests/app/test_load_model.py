"""Unit tests for repro.app.load_model."""

from __future__ import annotations

import pytest

from repro.app.load_model import LoadModel
from repro.core.config import ClashConfig

CONFIG = ClashConfig(server_capacity=1000.0, data_rate_weight=1.0, query_load_weight=10.0)
MODEL = LoadModel(CONFIG)


class TestLoadFunction:
    def test_zero_load(self):
        assert MODEL.load(0.0, 0.0) == 0.0

    def test_linear_in_data_rate(self):
        assert MODEL.load(200.0) == pytest.approx(200.0)
        assert MODEL.load(400.0) == pytest.approx(2 * MODEL.load(200.0))

    def test_logarithmic_in_queries(self):
        one = MODEL.load(0.0, 1.0)
        three = MODEL.load(0.0, 3.0)
        seven = MODEL.load(0.0, 7.0)
        assert one == pytest.approx(10.0)
        assert three == pytest.approx(20.0)
        assert seven == pytest.approx(30.0)

    def test_combined_terms_add(self):
        assert MODEL.load(100.0, 3.0) == pytest.approx(100.0 + 20.0)

    def test_percent_and_fraction(self):
        assert MODEL.load_fraction(500.0) == pytest.approx(0.5)
        assert MODEL.load_percent(500.0) == pytest.approx(50.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            MODEL.load(-1.0)
        with pytest.raises(ValueError):
            MODEL.load(0.0, -1.0)


class TestThresholds:
    def test_overload_detection(self):
        assert MODEL.is_overloaded(901.0)
        assert not MODEL.is_overloaded(900.0)

    def test_underload_detection(self):
        assert MODEL.is_underloaded(539.0)
        assert not MODEL.is_underloaded(540.0)

    def test_cold_group_threshold_is_half_underload(self):
        assert MODEL.is_cold(270.0)
        assert not MODEL.is_cold(271.0)

    def test_siblings_mergeable(self):
        assert MODEL.siblings_mergeable(200.0, 200.0)
        assert not MODEL.siblings_mergeable(300.0, 300.0)

    def test_negative_loads_rejected(self):
        with pytest.raises(ValueError):
            MODEL.is_overloaded(-1.0)
        with pytest.raises(ValueError):
            MODEL.siblings_mergeable(-1.0, 1.0)

    def test_config_accessor(self):
        assert MODEL.config is CONFIG
