"""Benchmark smoke test (``pytest -m bench_smoke``).

The benchmark files under ``benchmarks/`` are not collected by the regular
test run (they are named ``bench_*.py``), so an import error or a drifted API
there would only surface when someone runs the full suite.  This smoke test
imports every benchmark module and executes one tiny benchmark configuration,
keeping the suite import-clean at tier-1 cost.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def _import_from_path(path: pathlib.Path):
    # ``benchmarks`` is importable as a namespace package only when the repo
    # root is on sys.path; the bench modules import their shared conftest
    # through it.
    if str(REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(REPO_ROOT))
    name = f"benchmarks.{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    # Register before executing (the documented importlib recipe): dataclass
    # decorators resolve string annotations through sys.modules[__module__],
    # which is None for an unregistered module.
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.bench_smoke
def test_every_benchmark_module_imports_cleanly():
    paths = sorted(BENCH_DIR.glob("bench_*.py"))
    assert paths, "no benchmark modules found"
    for path in paths:
        _import_from_path(path)


@pytest.mark.bench_smoke
def test_tiny_async_benchmark_config_executes():
    """One miniature async-vs-inline run of the bench_async workload."""
    bench = _import_from_path(BENCH_DIR / "bench_async.py")

    inline_result, _ = bench._timed_run("inline", factor=50, phase_periods=2)
    async_result, _ = bench._timed_run("async", factor=50, phase_periods=2)
    bench._assert_streams_identical(async_result, inline_result)


@pytest.mark.bench_smoke
def test_tiny_sharded_benchmark_config_executes():
    """One miniature sharded-vs-single-ring run of the bench_sharded workload."""
    bench = _import_from_path(BENCH_DIR / "bench_sharded.py")

    single_result, _ = bench._timed_run(1, factor=50, phase_periods=2)
    sharded_result, _ = bench._timed_run(4, factor=50, phase_periods=2)
    assert single_result.total_splits > 0
    assert all(s.shard_count == 4 for s in sharded_result.metrics.samples)
    # Peak-to-mean per-shard load is >= 1 whenever a period carries load
    # (0.0 is the documented idle-period value).
    assert all(
        s.cross_shard_imbalance >= 1.0 or s.cross_shard_imbalance == 0.0
        for s in sharded_result.metrics.samples
    )


@pytest.mark.bench_smoke
def test_tiny_socket_benchmark_config_executes():
    """One miniature multi-process run of the bench_socket workload.

    Asserts the two portable halves of the benchmark's contract — the
    socket stream is bit-identical to inline and the wire plane really ran
    inside worker processes — plus clean worker teardown, so CI can never
    hang on a leaked child process.
    """
    import multiprocessing

    bench = _import_from_path(BENCH_DIR / "bench_socket.py")

    inline_result, _ = bench._timed_run("inline", factor=50, phase_periods=2)
    socket_result, socket_sample = bench._timed_run("socket", factor=50, phase_periods=2)
    bench._assert_streams_identical(socket_result, inline_result)
    assert socket_sample.worker_envelopes > 0
    assert multiprocessing.active_children() == []


@pytest.mark.bench_smoke
def test_tiny_paper_scale_benchmark_config_executes():
    """The paper-scale benchmark machinery on a miniature configuration.

    Runs the same ``_run``/``_metrics`` pipeline ``make bench-paper`` gates,
    but at scaled(factor=100) so it executes at tier-1 cost on every CI run.
    """
    import dataclasses

    bench = _import_from_path(BENCH_DIR / "bench_paper_scale.py")
    from repro.experiments.runner import ExperimentScale

    tiny = dataclasses.replace(
        ExperimentScale.scaled(factor=100, phase_periods=2),
        join_rate=bench.CHURN_RATE,
        fail_rate=bench.CHURN_RATE,
    )
    metrics = bench._metrics(bench._run(tiny))
    assert metrics["periods"] == 6
    assert metrics["total_splits"] > 0
    # The routing-tier work counters ride along as drift-gated metrics.
    assert metrics["ring_full_rebuilds"] == 1
    assert metrics["ring_finger_recomputations"] > 0
    assert metrics["memo_hits"] > 0


@pytest.mark.bench_smoke
def test_tiny_depth_search_benchmark_config_executes():
    """One miniature run of the depth-search benchmark workload."""
    bench = _import_from_path(BENCH_DIR / "bench_depth_search.py")
    from repro.keys.identifier import RandomKeyGenerator
    from repro.util.rng import RandomStream
    from repro.workload.distributions import workload_b

    system = bench._build_skewed_system(seed=13, splits=30)
    client = system.make_client("smoke-client")
    generator = RandomKeyGenerator(
        width=system.config.key_bits,
        base_bits=8,
        rng=RandomStream(99),
        base_weights=workload_b().weights,
    )
    probes = [
        client.find_group(generator.generate(), use_cache=False).probes
        for _ in range(25)
    ]
    assert all(1 <= count <= system.config.key_bits + 1 for count in probes)
