"""Tests for the membership-churn sweep experiment."""

from __future__ import annotations

import pytest

from repro.experiments.churn import (
    ChurnSweepResult,
    render_churn_sweep,
    run_churn_sweep,
)
from repro.experiments.runner import ExperimentScale

SMALL_SCALE = ExperimentScale.scaled(factor=100, phase_periods=2)


@pytest.fixture(scope="module")
def sweep() -> ChurnSweepResult:
    return run_churn_sweep(SMALL_SCALE, rates=((0.0, 0.0), (0.01, 0.01)))


class TestChurnSweep:
    def test_sweep_runs_every_point(self, sweep: ChurnSweepResult):
        assert len(sweep.points) == 2
        assert [(p.join_rate, p.fail_rate) for p in sweep.points] == [
            (0.0, 0.0),
            (0.01, 0.01),
        ]

    def test_baseline_point_has_no_churn(self, sweep: ChurnSweepResult):
        baseline = sweep.baseline()
        assert baseline.server_joins == 0
        assert baseline.server_failures == 0
        assert baseline.groups_reassigned == 0

    def test_churned_point_records_membership_activity(self, sweep: ChurnSweepResult):
        churned = sweep.points[-1]
        assert churned.server_joins > 0
        assert churned.server_failures > 0
        assert churned.groups_reassigned > 0

    def test_depth_statistics_are_reported(self, sweep: ChurnSweepResult):
        for point in sweep.points:
            assert point.mean_depth > 0
            assert point.max_depth >= point.mean_depth
            assert point.peak_load_percent > 0

    def test_render_produces_a_table(self, sweep: ChurnSweepResult):
        text = render_churn_sweep(sweep)
        assert "Churn sweep" in text
        assert "peak load %" in text
        assert "join/sec" in text
        assert SMALL_SCALE.name in text

    def test_missing_baseline_raises(self):
        result = run_churn_sweep(SMALL_SCALE, rates=((0.01, 0.0),))
        with pytest.raises(KeyError):
            result.baseline()
