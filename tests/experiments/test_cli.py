"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_figure(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.figure == "fig3"
        assert args.scale_factor == 10
        assert not args.paper_scale

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_transport_defaults_to_inline(self):
        args = build_parser().parse_args(["fig4"])
        assert args.transport == "inline"
        assert args.link_latency == 0.0

    def test_transport_choices(self):
        for kind in ("inline", "event", "batching"):
            assert build_parser().parse_args(["fig4", "--transport", kind]).transport == kind
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--transport", "smoke-signals"])

    def test_churn_rates_default_to_unset(self):
        # None (not 0.0) so the churn command can tell an explicit
        # `--join-rate 0` apart from "no rate given".
        args = build_parser().parse_args(["fig4"])
        assert args.join_rate is None
        assert args.fail_rate is None

    def test_churn_rates_parse(self):
        args = build_parser().parse_args(
            ["churn", "--join-rate", "0.01", "--fail-rate", "0.02"]
        )
        assert args.figure == "churn"
        assert args.join_rate == 0.01
        assert args.fail_rate == 0.02


class TestMain:
    def test_fig1_writes_report(self, tmp_path: pathlib.Path, capsys):
        exit_code = main(["fig1", "--output-dir", str(tmp_path)])
        assert exit_code == 0
        report = tmp_path / "figure1_figure2.txt"
        assert report.exists()
        content = report.read_text()
        assert "Figure 1" in content and "Figure 2" in content
        printed = capsys.readouterr().out
        assert "report file(s) written" in printed

    def test_fig3_quiet_mode_only_writes(self, tmp_path: pathlib.Path, capsys):
        exit_code = main(["fig3", "--output-dir", str(tmp_path), "--quiet"])
        assert exit_code == 0
        assert (tmp_path / "figure3.txt").exists()
        assert capsys.readouterr().out == ""

    def test_profile_writes_stats_and_prints_table(self, tmp_path: pathlib.Path, capsys):
        exit_code = main(
            [
                "fig1",
                "--output-dir",
                str(tmp_path),
                "--quiet",
                "--profile",
                "--profile-top",
                "5",
            ]
        )
        assert exit_code == 0
        stats_path = tmp_path / "profile.pstats"
        assert stats_path.exists() and stats_path.stat().st_size > 0
        # The profile table prints even under --quiet: it is what the flag
        # was asked for.
        printed = capsys.readouterr().out
        assert "Profile — top 5 functions by cumulative time" in printed
        assert "cumtime (s)" in printed

    def test_profile_is_written_even_when_generation_fails(
        self, tmp_path: pathlib.Path, monkeypatch, capsys
    ):
        import repro.cli as cli_module

        def explode(args):
            raise RuntimeError("boom mid-figure")

        monkeypatch.setitem(cli_module._COMMANDS, "fig1", explode)
        with pytest.raises(RuntimeError, match="boom mid-figure"):
            main(["fig1", "--output-dir", str(tmp_path), "--quiet", "--profile"])
        # The interrupted run still yields its profile — that is the run
        # most worth diagnosing.
        assert (tmp_path / "profile.pstats").exists()

    def test_fig4_writes_table_and_csv(self, tmp_path: pathlib.Path):
        exit_code = main(
            [
                "fig4",
                "--output-dir",
                str(tmp_path),
                "--scale-factor",
                "50",
                "--phase-periods",
                "2",
                "--quiet",
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "figure4.txt").exists()
        csv_text = (tmp_path / "figure4_max_load_series.csv").read_text()
        assert csv_text.startswith("time,")
        assert "CLASH" not in csv_text.splitlines()[1]  # data rows are numeric

    def test_custom_seed_changes_nothing_structural(self, tmp_path: pathlib.Path):
        exit_code = main(["fig1", "--output-dir", str(tmp_path), "--seed", "7", "--quiet"])
        assert exit_code == 0
        content = (tmp_path / "figure1_figure2.txt").read_text()
        assert "0110*" in content

    def test_same_seed_reproduces_figure4_byte_for_byte(self, tmp_path: pathlib.Path):
        argv = [
            "fig4",
            "--scale-factor",
            "100",
            "--phase-periods",
            "2",
            "--seed",
            "99",
            "--quiet",
        ]
        assert main([*argv, "--output-dir", str(tmp_path / "first")]) == 0
        assert main([*argv, "--output-dir", str(tmp_path / "second")]) == 0
        for name in ("figure4.txt", "figure4_max_load_series.csv"):
            first = (tmp_path / "first" / name).read_text()
            second = (tmp_path / "second" / name).read_text()
            assert first == second

    def test_fig4_runs_over_batching_transport(self, tmp_path: pathlib.Path):
        exit_code = main(
            [
                "fig4",
                "--output-dir",
                str(tmp_path),
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--transport",
                "batching",
                "--quiet",
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "figure4.txt").exists()

    def test_churn_command_writes_sweep_report(self, tmp_path: pathlib.Path):
        exit_code = main(
            [
                "churn",
                "--output-dir",
                str(tmp_path),
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--join-rate",
                "0.01",
                "--fail-rate",
                "0.01",
                "--quiet",
            ]
        )
        assert exit_code == 0
        text = (tmp_path / "churn.txt").read_text()
        assert "Churn sweep" in text
        assert "0.01" in text

    def test_fig4_runs_with_churn_rates(self, tmp_path: pathlib.Path):
        exit_code = main(
            [
                "fig4",
                "--output-dir",
                str(tmp_path),
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--join-rate",
                "0.01",
                "--fail-rate",
                "0.01",
                "--quiet",
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "figure4.txt").exists()

    def test_fig4_runs_over_event_transport_with_latency(self, tmp_path: pathlib.Path):
        exit_code = main(
            [
                "fig4",
                "--output-dir",
                str(tmp_path),
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--transport",
                "event",
                "--link-latency",
                "0.01",
                "--quiet",
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "figure4.txt").exists()
