"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_figure(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.figure == "fig3"
        assert args.scale_factor == 10
        assert not args.paper_scale

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestMain:
    def test_fig1_writes_report(self, tmp_path: pathlib.Path, capsys):
        exit_code = main(["fig1", "--output-dir", str(tmp_path)])
        assert exit_code == 0
        report = tmp_path / "figure1_figure2.txt"
        assert report.exists()
        content = report.read_text()
        assert "Figure 1" in content and "Figure 2" in content
        printed = capsys.readouterr().out
        assert "report file(s) written" in printed

    def test_fig3_quiet_mode_only_writes(self, tmp_path: pathlib.Path, capsys):
        exit_code = main(["fig3", "--output-dir", str(tmp_path), "--quiet"])
        assert exit_code == 0
        assert (tmp_path / "figure3.txt").exists()
        assert capsys.readouterr().out == ""

    def test_fig4_writes_table_and_csv(self, tmp_path: pathlib.Path):
        exit_code = main(
            [
                "fig4",
                "--output-dir",
                str(tmp_path),
                "--scale-factor",
                "50",
                "--phase-periods",
                "2",
                "--quiet",
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "figure4.txt").exists()
        csv_text = (tmp_path / "figure4_max_load_series.csv").read_text()
        assert csv_text.startswith("time,")
        assert "CLASH" not in csv_text.splitlines()[1]  # data rows are numeric

    def test_custom_seed_changes_nothing_structural(self, tmp_path: pathlib.Path):
        exit_code = main(["fig1", "--output-dir", str(tmp_path), "--seed", "7", "--quiet"])
        assert exit_code == 0
        content = (tmp_path / "figure1_figure2.txt").read_text()
        assert "0110*" in content
