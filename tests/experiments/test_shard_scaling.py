"""Tests for the shard-scaling sweep (experiments/shard_scaling.py + CLI)."""

from __future__ import annotations

import dataclasses
import pathlib

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import ExperimentScale
from repro.experiments.shard_scaling import (
    DEFAULT_SHARD_COUNTS,
    render_shard_scaling,
    run_shard_scaling,
)

TINY = ExperimentScale.scaled(factor=100, phase_periods=2)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_shard_scaling(
            TINY, shard_counts=(1, 2, 4), churn_rates=((0.0, 0.0), (0.01, 0.02))
        )

    def test_one_point_per_combination(self, sweep):
        combos = [(p.shards, p.join_rate, p.fail_rate) for p in sweep.points]
        assert combos == [
            (1, 0.0, 0.0),
            (1, 0.01, 0.02),
            (2, 0.0, 0.0),
            (2, 0.01, 0.02),
            (4, 0.0, 0.0),
            (4, 0.01, 0.02),
        ]

    def test_baseline_is_the_unsharded_churn_free_control(self, sweep):
        control = sweep.baseline()
        assert control.shards == 1
        assert control.join_rate == control.fail_rate == 0.0

    def test_sharded_points_record_per_shard_metrics(self, sweep):
        for point in sweep.points:
            samples = point.result.metrics.samples
            assert all(s.shard_count == point.shards for s in samples)
            if point.shards == 1:
                assert all(s.shard_peak_loads == () for s in samples)
                assert point.mean_imbalance == 1.0
            else:
                assert all(len(s.shard_peak_loads) == point.shards for s in samples)
                assert point.mean_imbalance >= 1.0
                # The per-shard peaks bound the global peak from below.
                for s in samples:
                    assert max(s.shard_peak_loads) <= s.max_load_percent + 1e-9

    def test_churn_points_actually_churn(self, sweep):
        for point in sweep.points:
            if point.join_rate > 0.0:
                samples = point.result.metrics.samples
                assert (
                    sum(s.server_joins for s in samples)
                    + sum(s.server_failures for s in samples)
                    > 0
                )

    def test_render_produces_one_row_per_point(self, sweep):
        text = render_shard_scaling(sweep)
        assert "imbalance" in text
        # Header + separator + one row per point.
        table_rows = [
            line for line in text.splitlines() if line and line[0].isdigit()
        ]
        assert len(table_rows) == len(sweep.points)

    def test_default_shard_counts_are_the_acceptance_ladder(self):
        assert DEFAULT_SHARD_COUNTS == (1, 2, 4, 8)


class TestCli:
    def test_shards_option_defaults_to_unset(self):
        args = build_parser().parse_args(["fig4"])
        assert args.shards is None

    def test_shards_option_parses(self):
        args = build_parser().parse_args(["shards", "--shards", "4"])
        assert args.figure == "shards"
        assert args.shards == 4

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_shards_sweep_runs_from_the_cli(self, shards, tmp_path: pathlib.Path):
        exit_code = main(
            [
                "shards",
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--shards",
                str(shards),
                "--join-rate",
                "0.01",
                "--fail-rate",
                "0.01",
                "--quiet",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        report = (tmp_path / "shard_scaling.txt").read_text()
        assert report.splitlines()[0].startswith("Shard scaling")
        rows = [line for line in report.splitlines() if line and line[0].isdigit()]
        assert len(rows) == 1
        assert rows[0].split("|")[0].strip() == str(shards)

    def test_asymmetric_churn_knobs_are_honoured(self, tmp_path: pathlib.Path):
        """`--fail-rate` alone must not inject joins (and vice versa)."""
        exit_code = main(
            [
                "shards",
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--shards",
                "2",
                "--fail-rate",
                "0.02",
                "--quiet",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        report = (tmp_path / "shard_scaling.txt").read_text()
        row = next(line for line in report.splitlines() if line and line[0].isdigit())
        cells = [cell.strip() for cell in row.split("|")]
        assert cells[:3] == ["2", "0", "0.02"]

    def test_fig4_accepts_shards(self, tmp_path: pathlib.Path):
        exit_code = main(
            [
                "fig4",
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--shards",
                "2",
                "--quiet",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "figure4.txt").exists()


class TestScaleValidation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TINY, shards=3)

    def test_params_carry_the_shard_count(self):
        scale = dataclasses.replace(TINY, shards=4)
        assert scale.params().shards == 4
