"""Tests for the shard-scaling sweep (experiments/shard_scaling.py + CLI)."""

from __future__ import annotations

import dataclasses
import pathlib

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import ExperimentScale
from repro.experiments.shard_scaling import (
    DEFAULT_SHARD_COUNTS,
    render_shard_scaling,
    run_shard_scaling,
)

TINY = ExperimentScale.scaled(factor=100, phase_periods=2)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_shard_scaling(
            TINY, shard_counts=(1, 2, 4), churn_rates=((0.0, 0.0), (0.01, 0.02))
        )

    def test_one_point_per_combination(self, sweep):
        combos = [
            (p.shards, p.partition, p.join_rate, p.fail_rate) for p in sweep.points
        ]
        # shards=1 has no boundaries to move, so only the static map runs
        # there; every sharded count runs static and adaptive side by side.
        assert combos == [
            (1, "static", 0.0, 0.0),
            (1, "static", 0.01, 0.02),
            (2, "static", 0.0, 0.0),
            (2, "static", 0.01, 0.02),
            (2, "adaptive", 0.0, 0.0),
            (2, "adaptive", 0.01, 0.02),
            (4, "static", 0.0, 0.0),
            (4, "static", 0.01, 0.02),
            (4, "adaptive", 0.0, 0.0),
            (4, "adaptive", 0.01, 0.02),
        ]

    def test_every_sweep_point_closes_its_transport(self, monkeypatch):
        """The lifecycle contract: no transport outlives its sweep point."""
        import repro.experiments.shard_scaling as shard_scaling

        simulators = []
        original = shard_scaling.FlowSimulator

        def tracking(*args, **kwargs):
            simulator = original(*args, **kwargs)
            simulators.append(simulator)
            return simulator

        monkeypatch.setattr(shard_scaling, "FlowSimulator", tracking)
        run_shard_scaling(TINY, shard_counts=(1, 2), churn_rates=((0.0, 0.0),))
        assert len(simulators) == 3
        assert all(simulator.transport.closed for simulator in simulators)

    def test_baseline_is_the_unsharded_churn_free_control(self, sweep):
        control = sweep.baseline()
        assert control.shards == 1
        assert control.partition == "static"
        assert control.join_rate == control.fail_rate == 0.0

    def test_static_points_never_rebalance(self, sweep):
        for point in sweep.points:
            if point.partition == "static":
                assert point.groups_migrated == 0
                samples = point.result.metrics.samples
                assert all(s.partition_version == 0 for s in samples)

    def test_adaptive_points_version_monotonically(self, sweep):
        for point in sweep.points:
            if point.partition != "adaptive":
                continue
            versions = [s.partition_version for s in point.result.metrics.samples]
            assert versions == sorted(versions)
            # The paper workloads are skewed, so an adaptive 2+-shard run
            # must install at least one non-trivial map.
            assert versions[-1] >= 1

    def test_sharded_points_record_per_shard_metrics(self, sweep):
        for point in sweep.points:
            samples = point.result.metrics.samples
            assert all(s.shard_count == point.shards for s in samples)
            if point.shards == 1:
                assert all(s.shard_peak_loads == () for s in samples)
                assert point.mean_imbalance == 1.0
            else:
                assert all(len(s.shard_peak_loads) == point.shards for s in samples)
                assert point.mean_imbalance >= 1.0
                # The per-shard peaks bound the global peak from below.
                for s in samples:
                    assert max(s.shard_peak_loads) <= s.max_load_percent + 1e-9

    def test_churn_points_actually_churn(self, sweep):
        for point in sweep.points:
            if point.join_rate > 0.0:
                samples = point.result.metrics.samples
                assert (
                    sum(s.server_joins for s in samples)
                    + sum(s.server_failures for s in samples)
                    > 0
                )

    def test_render_produces_one_row_per_point(self, sweep):
        text = render_shard_scaling(sweep)
        assert "imbalance" in text
        # Header + separator + one row per point.
        table_rows = [
            line for line in text.splitlines() if line and line[0].isdigit()
        ]
        assert len(table_rows) == len(sweep.points)

    def test_default_shard_counts_are_the_acceptance_ladder(self):
        assert DEFAULT_SHARD_COUNTS == (1, 2, 4, 8)


class TestAdaptiveImbalance:
    """The headline claim: skew-aware boundaries even out the shard loads."""

    @pytest.fixture(scope="class")
    def four_shard_points(self):
        # Four periods per phase give the bounded rebalance room to converge
        # after each workload switch (it moves at most a few key-space
        # blocks per period).
        scale = ExperimentScale.scaled(factor=100, phase_periods=4)
        sweep = run_shard_scaling(
            scale, shard_counts=(4,), churn_rates=((0.0, 0.0),)
        )
        return {point.partition: point for point in sweep.points}

    def test_adaptive_meets_the_imbalance_target(self, four_shard_points):
        adaptive = four_shard_points["adaptive"]
        # The acceptance bar: ≤ 1.3× peak-to-mean shard load at 4 shards
        # once converged, on every workload phase (A, B and C).
        assert adaptive.converged_imbalance <= 1.3

    def test_adaptive_beats_static(self, four_shard_points):
        static = four_shard_points["static"]
        adaptive = four_shard_points["adaptive"]
        assert adaptive.converged_imbalance < static.converged_imbalance
        assert adaptive.mean_imbalance < static.mean_imbalance
        assert adaptive.groups_migrated > 0
        assert static.groups_migrated == 0

    def test_adaptive_leaves_headline_metrics_within_noise(self, four_shard_points):
        static = four_shard_points["static"]
        adaptive = four_shard_points["adaptive"]
        # Rebalancing changes which shard serves a key range, not how CLASH
        # splits: lookup depth must be untouched and the global peak load
        # must not regress (evening the shards can only relieve it).
        assert adaptive.mean_depth == pytest.approx(static.mean_depth, rel=0.1)
        assert adaptive.max_depth <= static.max_depth + 1
        assert adaptive.peak_load_percent <= static.peak_load_percent * 1.05


class TestCli:
    def test_shards_option_defaults_to_unset(self):
        args = build_parser().parse_args(["fig4"])
        assert args.shards is None

    def test_shards_option_parses(self):
        args = build_parser().parse_args(["shards", "--shards", "4"])
        assert args.figure == "shards"
        assert args.shards == 4

    def test_partition_option_defaults_to_unset(self):
        args = build_parser().parse_args(["shards"])
        assert args.partition is None

    def test_partition_option_parses(self):
        args = build_parser().parse_args(
            ["shards", "--shards", "4", "--partition", "adaptive"]
        )
        assert args.partition == "adaptive"

    def test_partition_option_rejects_unknown_modes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shards", "--partition", "wild"])

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_shards_sweep_runs_from_the_cli(self, shards, tmp_path: pathlib.Path):
        exit_code = main(
            [
                "shards",
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--shards",
                str(shards),
                "--join-rate",
                "0.01",
                "--fail-rate",
                "0.01",
                "--quiet",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        report = (tmp_path / "shard_scaling.txt").read_text()
        assert report.splitlines()[0].startswith("Shard scaling")
        rows = [line for line in report.splitlines() if line and line[0].isdigit()]
        # Without an explicit --partition, sharded points run static and
        # adaptive side by side; a single ring has only the static mode.
        assert len(rows) == (1 if shards == 1 else 2)
        for row in rows:
            assert row.split("|")[0].strip() == str(shards)

    def test_explicit_partition_pins_a_single_sweep_mode(
        self, tmp_path: pathlib.Path
    ):
        exit_code = main(
            [
                "shards",
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--shards",
                "2",
                "--partition",
                "adaptive",
                "--join-rate",
                "0",
                "--fail-rate",
                "0",
                "--quiet",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        report = (tmp_path / "shard_scaling.txt").read_text()
        rows = [line for line in report.splitlines() if line and line[0].isdigit()]
        assert len(rows) == 1
        cells = [cell.strip() for cell in rows[0].split("|")]
        assert cells[0] == "2"
        assert cells[3] == "adaptive"

    def test_asymmetric_churn_knobs_are_honoured(self, tmp_path: pathlib.Path):
        """`--fail-rate` alone must not inject joins (and vice versa)."""
        exit_code = main(
            [
                "shards",
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--shards",
                "2",
                "--fail-rate",
                "0.02",
                "--quiet",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        report = (tmp_path / "shard_scaling.txt").read_text()
        row = next(line for line in report.splitlines() if line and line[0].isdigit())
        cells = [cell.strip() for cell in row.split("|")]
        assert cells[:3] == ["2", "0", "0.02"]

    def test_fig4_accepts_shards(self, tmp_path: pathlib.Path):
        exit_code = main(
            [
                "fig4",
                "--scale-factor",
                "100",
                "--phase-periods",
                "2",
                "--shards",
                "2",
                "--quiet",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "figure4.txt").exists()


class TestScaleValidation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TINY, shards=3)

    def test_params_carry_the_shard_count(self):
        scale = dataclasses.replace(TINY, shards=4)
        assert scale.params().shards == 4

    def test_rejects_unknown_partition(self):
        with pytest.raises(ValueError, match="partition"):
            dataclasses.replace(TINY, partition="wild")

    def test_params_carry_the_partition(self):
        scale = dataclasses.replace(TINY, shards=4, partition="adaptive")
        assert scale.params().partition == "adaptive"
