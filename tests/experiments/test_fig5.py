"""Tests for the Figure 5 experiment driver (communication overhead)."""

from __future__ import annotations

import pytest

from repro.experiments.fig5 import _mean_rate, run_figure5
from repro.experiments.reporting import render_figure5
from repro.experiments.runner import ExperimentScale


@pytest.fixture(scope="module")
def result():
    scale = ExperimentScale.scaled(factor=50, phase_periods=2)
    return run_figure5(scale, stream_lengths=(50.0, 1000.0), include_query_clients=True)


class TestFigure5Shape:
    def test_four_cases_present(self, result):
        assert len(result.cases) == 4
        stream_lengths = {case.mean_stream_length for case in result.cases}
        assert stream_lengths == {50.0, 1000.0}
        assert any(case.query_clients > 0 for case in result.cases)
        assert any(case.query_clients == 0 for case in result.cases)

    def test_each_case_reports_all_workloads(self, result):
        for case in result.cases:
            assert set(case.messages_per_server_per_second()) == {"A", "B", "C"}

    def test_short_streams_cost_more_than_long_streams(self, result):
        ratio = result.overhead_ratio_short_vs_long_streams(with_queries=False)
        assert ratio > 2.0

    def test_rates_are_modest_per_server(self, result):
        """The paper reports ~1–12 messages/sec/server; we stay the same order."""
        for case in result.cases:
            for rate in case.messages_per_server_per_second().values():
                assert 0.0 < rate < 100.0

    def test_query_clients_add_overhead(self, result):
        # The query population adds lookup arrivals and state-transfer traffic;
        # allow a small tolerance because the per-lookup cost is estimated from
        # a finite sample of real searches.
        increment = result.state_transfer_increment(mean_stream_length=1000.0)
        without = result.case(1000.0, with_queries=False)
        assert increment > -0.25 * _mean_rate(without)

    def test_case_lookup_and_errors(self, result):
        case = result.case(50.0, with_queries=False)
        assert case.query_clients == 0
        with pytest.raises(KeyError):
            result.case(123.0, with_queries=False)

    def test_render_contains_case_rows(self, result):
        text = render_figure5(result)
        assert "Ld" in text
        assert "messages/sec/server" in text
