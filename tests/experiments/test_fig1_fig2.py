"""Tests for the Figure 1 / Figure 2 structural reproduction."""

from __future__ import annotations

import pytest

from repro.experiments.fig1_fig2 import run_figure1_figure2


@pytest.fixture(scope="module")
def result():
    return run_figure1_figure2(seed=20040324)


class TestFigure1:
    def test_tree_has_the_papers_leaf_set(self, result):
        # Figure 1's leaves after three splits: 0110*, 011100*, 011101*, 01111*.
        assert result.leaf_groups == ["0110*", "011100*", "011101*", "01111*"]

    def test_leaves_have_owners(self, result):
        assert len(result.leaf_owners) == 4
        assert all(owner for owner in result.leaf_owners)

    def test_tree_text_mentions_every_leaf(self, result):
        for pattern in result.leaf_groups:
            assert pattern in result.tree_text
        assert "[split]" in result.tree_text


class TestFigure2:
    def test_table_text_has_figure2_columns(self, result):
        for column in ["VirtualKeyGroup", "Depth", "ParentID", "RightChildID", "Active"]:
            assert column in result.table_text

    def test_root_server_still_manages_the_left_spine(self, result):
        # After splitting 011*, the root server keeps 0110* (same virtual key).
        assert "0110*" in result.table_text
        assert result.root_server in result.table_text

    def test_root_entry_rendered_with_minus_one_parent(self, result):
        assert "-1" in result.table_text
