"""Unit tests for the text reporting helpers."""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_series, format_table, series_to_csv
from repro.util.stats import TimeSeries


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "value"], [["a", 1], ["longer-name", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert "2.50" in lines[3]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.14" in text
        assert "3.14159" not in text


class TestFormatSeries:
    def test_times_rendered_in_hours(self):
        series = TimeSeries(name="max_load")
        series.append(3600.0, 42.0)
        text = format_series(series)
        assert "max_load" in text
        assert "t=  1.00" in text
        assert "42.00" in text


class TestSeriesToCsv:
    def test_header_and_rows(self):
        a = TimeSeries(name="clash")
        b = TimeSeries(name="dht6")
        for t, (va, vb) in zip([0.0, 3600.0], [(1.0, 2.0), (3.0, 4.0)]):
            a.append(t, va)
            b.append(t, vb)
        csv_text = series_to_csv([a, b])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "time,clash,dht6"
        assert lines[1].startswith("0.0000,1.0000,2.0000")
        assert len(lines) == 3

    def test_mismatched_lengths_rejected(self):
        a = TimeSeries(name="a")
        a.append(0.0, 1.0)
        b = TimeSeries(name="b")
        with pytest.raises(ValueError):
            series_to_csv([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            series_to_csv([])
