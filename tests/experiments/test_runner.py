"""Unit tests for the experiment scale presets."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentScale, scaled_setup


class TestExperimentScale:
    def test_paper_scale_matches_section_6_1(self):
        scale = ExperimentScale.paper(query_clients=True)
        assert scale.server_count == 1000
        assert scale.source_count == 100_000
        assert scale.query_client_count == 50_000
        assert scale.phase_duration == 7200.0
        assert scale.load_check_period == 300.0

    def test_scaled_preserves_per_group_load_fraction(self):
        paper = ExperimentScale.paper()
        scaled = ExperimentScale.scaled(10)
        paper_fraction = paper.source_count / paper.server_capacity
        scaled_fraction = scaled.source_count / scaled.server_capacity
        assert scaled_fraction == pytest.approx(paper_fraction)

    def test_scaled_keeps_spare_capacity(self):
        scale = ExperimentScale.scaled(20)
        # Peak offered load (workload B/C: 2 pkt/s per source) must stay well
        # below the aggregate capacity, as it does at paper scale.
        peak_load = 2.0 * scale.source_count
        total_capacity = scale.server_count * scale.server_capacity
        assert peak_load < 0.5 * total_capacity

    def test_config_uses_scale_capacity_and_period(self):
        scale = ExperimentScale.scaled(10)
        config = scale.config()
        assert config.server_capacity == pytest.approx(scale.server_capacity)
        assert config.load_check_period == pytest.approx(scale.load_check_period)

    def test_config_overrides(self):
        config = ExperimentScale.scaled(10).config(initial_depth=8)
        assert config.initial_depth == 8

    def test_params_reflect_scale(self):
        scale = ExperimentScale.scaled(10, query_clients=True)
        params = scale.params(mean_stream_length=50.0)
        assert params.server_count == scale.server_count
        assert params.source_count == scale.source_count
        assert params.query_client_count == scale.query_client_count
        assert params.mean_stream_length == 50.0

    def test_scenario_duration(self):
        scale = ExperimentScale.scaled(10, phase_periods=4)
        scenario = scale.scenario()
        assert scenario.total_duration == pytest.approx(3 * 4 * 300.0)

    def test_scaled_setup_consistency(self):
        config, params, scenario = scaled_setup(factor=25, phase_periods=2)
        assert config.server_capacity == pytest.approx(
            4000.0 * params.source_count / 100_000
        )
        assert scenario.total_duration == pytest.approx(3 * 2 * 300.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad", server_count=0, source_count=1, query_client_count=0,
                server_capacity=1.0, phase_duration=1.0, load_check_period=1.0,
            )
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad", server_count=1, source_count=1, query_client_count=-1,
                server_capacity=1.0, phase_duration=1.0, load_check_period=1.0,
            )
