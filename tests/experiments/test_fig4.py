"""Tests for the Figure 4 experiment driver (scaled-down, qualitative shape).

These tests assert the *comparative shape* the paper reports rather than
absolute numbers: CLASH bounds the worst-case server load under skew while
using far fewer servers than fine-grained DHT, and the CLASH tree deepens as
load and skew grow.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig4 import run_figure4
from repro.experiments.reporting import render_figure4
from repro.experiments.runner import ExperimentScale


@pytest.fixture(scope="module")
def result():
    scale = ExperimentScale.scaled(factor=50, phase_periods=3)
    return run_figure4(scale, fixed_depths=(6, 12))


class TestFigure4Shape:
    def test_all_systems_present(self, result):
        assert set(result.labels()) == {"CLASH", "DHT(6)", "DHT(12)"}

    def test_series_cover_all_periods(self, result):
        for label, series in result.max_load_series().items():
            assert len(series) == 9  # 3 phases x 3 periods

    def test_clash_bounds_hotspots_better_than_coarse_dht(self, result):
        clash_peak = result.clash_peak_load()
        dht6_peak = result.baseline_peak_load("DHT(6)")
        assert dht6_peak > 2 * clash_peak

    def test_fine_dht_uses_many_more_servers_than_clash(self, result):
        advantage = result.server_utilisation_advantage("DHT(12)")
        assert advantage > 1.5

    def test_clash_average_utilisation_beats_fine_dht(self, result):
        clash_avg = [
            phase.mean_avg_load_percent for phase in result.results["CLASH"].phase_summaries()
        ]
        dht12_avg = [
            phase.mean_avg_load_percent for phase in result.results["DHT(12)"].phase_summaries()
        ]
        assert sum(clash_avg) > sum(dht12_avg)

    def test_clash_depth_grows_with_skew_and_load(self, result):
        depth_series = result.depth_series()
        assert depth_series["max"].values[-1] >= depth_series["max"].values[0]
        summaries = result.results["CLASH"].phase_summaries()
        by_name = {summary.workload: summary for summary in summaries}
        assert by_name["C"].mean_depth >= by_name["A"].mean_depth
        # The tree becomes more unbalanced as skew grows (depth spread widens).
        assert by_name["C"].depth_spread >= by_name["A"].depth_spread

    def test_active_servers_table_has_all_phases(self, result):
        table = result.active_servers_by_phase()
        for label in result.labels():
            assert set(table[label]) == {"A", "B", "C"}

    def test_render_mentions_every_system(self, result):
        text = render_figure4(result)
        for label in result.labels():
            assert label in text
