"""Tests for the Figure 3 experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments.fig3 import run_figure3
from repro.experiments.reporting import render_figure3


@pytest.fixture(scope="module")
def result():
    return run_figure3(population=100_000, sample_size=4000, seed=3)


class TestFigure3:
    def test_all_three_workloads_present(self, result):
        assert result.workload_names == ["A", "B", "C"]
        assert set(result.counts) == {"A", "B", "C"}

    def test_expected_counts_sum_to_population(self, result):
        for name in result.workload_names:
            assert sum(result.counts[name]) == pytest.approx(100_000, rel=1e-6)

    def test_sampled_counts_sum_to_sample_size(self, result):
        for name in result.workload_names:
            assert sum(result.sampled_counts[name]) == 4000

    def test_skew_ordering(self, result):
        assert (
            result.skew["A"]["max_over_mean"]
            < result.skew["B"]["max_over_mean"]
            < result.skew["C"]["max_over_mean"]
        )

    def test_sampled_distribution_tracks_expected_peak(self, result):
        hottest = result.hottest_value("C")
        sampled = result.sampled_counts["C"]
        # The empirical histogram's peak should sit near the analytic peak.
        peak_region = range(max(0, hottest - 8), min(256, hottest + 9))
        assert sum(sampled[i] for i in peak_region) > 0.15 * sum(sampled)

    def test_workload_a_sample_is_roughly_flat(self, result):
        sampled = result.sampled_counts["A"]
        mean_count = sum(sampled) / len(sampled)
        assert max(sampled) < 4 * mean_count

    def test_render_contains_tables(self, result):
        text = render_figure3(result)
        assert "workload A" in text
        assert "Skew statistics" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_figure3(population=0)
        with pytest.raises(ValueError):
            run_figure3(sample_size=0)
