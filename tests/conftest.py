"""Shared fixtures for the CLASH reproduction test-suite."""

from __future__ import annotations

import pytest

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.util.rng import RandomStream, SeedSequenceFactory


@pytest.fixture
def rng() -> RandomStream:
    """A deterministic random stream for tests."""
    return RandomStream(12345)


@pytest.fixture
def seed_factory() -> SeedSequenceFactory:
    """A deterministic seed-sequence factory for tests."""
    return SeedSequenceFactory(12345)


@pytest.fixture
def small_config() -> ClashConfig:
    """A reduced configuration that makes splits cheap to trigger."""
    return ClashConfig.small_scale()


@pytest.fixture
def paper_config() -> ClashConfig:
    """The paper's default configuration (24-bit keys)."""
    return ClashConfig.paper_defaults()


@pytest.fixture
def small_system(small_config: ClashConfig, rng: RandomStream) -> ClashSystem:
    """A bootstrapped 16-server CLASH deployment with 12-bit keys."""
    return ClashSystem.create(small_config, server_count=16, rng=rng)
