"""Property-based tests for workload distributions (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distributions import WorkloadSpec

BASE_BITS = 4


@st.composite
def workload_specs(draw):
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1 << BASE_BITS,
            max_size=1 << BASE_BITS,
        ).filter(lambda values: sum(values) > 0)
    )
    rate = draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    return WorkloadSpec(name="prop", base_bits=BASE_BITS, weights=tuple(weights), source_rate=rate)


class TestPrefixProbabilityProperties:
    @given(spec=workload_specs(), depth=st.integers(min_value=0, max_value=10))
    @settings(max_examples=150)
    def test_probabilities_sum_to_one_at_every_depth(self, spec: WorkloadSpec, depth: int):
        total = sum(spec.prefix_probability(prefix, depth) for prefix in range(1 << depth))
        assert abs(total - 1.0) < 1e-9

    @given(spec=workload_specs(), depth=st.integers(min_value=0, max_value=9))
    @settings(max_examples=150)
    def test_children_split_the_parent_mass(self, spec: WorkloadSpec, depth: int):
        for prefix in range(min(8, 1 << depth)):
            parent = spec.prefix_probability(prefix, depth)
            left = spec.prefix_probability(prefix << 1, depth + 1)
            right = spec.prefix_probability((prefix << 1) | 1, depth + 1)
            assert abs(parent - (left + right)) < 1e-9

    @given(spec=workload_specs())
    @settings(max_examples=100)
    def test_expected_counts_scale_linearly(self, spec: WorkloadSpec):
        small = spec.expected_counts(100)
        large = spec.expected_counts(10_000)
        for a, b in zip(small, large):
            assert abs(b - 100 * a) < 1e-6
