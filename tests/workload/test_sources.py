"""Unit tests for repro.workload.sources."""

from __future__ import annotations

import pytest

from repro.keys.identifier import RandomKeyGenerator
from repro.util.rng import RandomStream
from repro.workload.distributions import workload_a, workload_b
from repro.workload.sources import DataSource, SourcePopulation


def make_source(rate: float = 2.0, mean_stream_length: float = 20.0) -> DataSource:
    rng = RandomStream(5)
    generator = RandomKeyGenerator(width=12, base_bits=4, rng=rng)
    return DataSource(
        name="src0",
        key_generator=generator,
        rate=rate,
        mean_stream_length=mean_stream_length,
        rng=rng,
    )


class TestDataSource:
    def test_first_packet_starts_a_stream(self):
        source = make_source()
        assert source.current_key is None
        packet, key_changed = source.next_packet(now=0.0)
        assert key_changed
        assert source.current_key == packet.key
        assert source.streams_started == 1

    def test_key_stays_constant_within_a_stream(self):
        source = make_source(mean_stream_length=1000.0)
        first, _ = source.next_packet()
        for _ in range(20):
            packet, key_changed = source.next_packet()
            assert not key_changed
            assert packet.key == first.key

    def test_key_changes_when_stream_exhausts(self):
        source = make_source(mean_stream_length=2.0)
        keys = set()
        changes = 0
        for _ in range(200):
            packet, key_changed = source.next_packet()
            keys.add(packet.key)
            changes += key_changed
        assert changes > 10
        assert len(keys) > 5

    def test_expected_key_change_rate(self):
        source = make_source(rate=2.0, mean_stream_length=50.0)
        assert source.expected_key_change_rate() == pytest.approx(0.04)

    def test_set_rate(self):
        source = make_source(rate=1.0)
        source.set_rate(2.0)
        assert source.rate == 2.0
        with pytest.raises(ValueError):
            source.set_rate(0.0)

    def test_validation(self):
        rng = RandomStream(1)
        generator = RandomKeyGenerator(width=12, base_bits=4, rng=rng)
        with pytest.raises(ValueError):
            DataSource("s", generator, rate=0.0, mean_stream_length=10.0, rng=rng)
        with pytest.raises(ValueError):
            DataSource("s", generator, rate=1.0, mean_stream_length=0.0, rng=rng)


class TestSourcePopulation:
    def make_population(self, count: int = 100) -> SourcePopulation:
        return SourcePopulation(
            count=count,
            spec=workload_a(base_bits=4),
            key_bits=12,
            mean_stream_length=100.0,
            rng=RandomStream(9),
        )

    def test_total_rate(self):
        population = self.make_population(100)
        assert population.total_rate() == pytest.approx(100.0)  # workload A: 1 pkt/s each

    def test_switch_workload_changes_rate(self):
        population = self.make_population(100)
        population.switch_workload(workload_b(base_bits=4))
        assert population.total_rate() == pytest.approx(200.0)
        assert population.spec.name == "B"

    def test_switch_workload_base_bits_must_match(self):
        population = self.make_population()
        with pytest.raises(ValueError):
            population.switch_workload(workload_b(base_bits=6))

    def test_expected_key_changes(self):
        population = self.make_population(100)
        assert population.expected_key_changes(300.0) == pytest.approx(100 * 1.0 * 300.0 / 100.0)
        with pytest.raises(ValueError):
            population.expected_key_changes(0.0)

    def test_materialise_creates_sources(self):
        population = self.make_population(5)
        sources = population.materialise()
        assert len(sources) == 5
        assert {source.name for source in sources} == {f"src{i}" for i in range(5)}

    def test_key_generator_uses_spec_weights(self):
        population = self.make_population()
        generator = population.make_key_generator()
        key = generator.generate()
        assert key.width == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            SourcePopulation(
                count=-1,
                spec=workload_a(base_bits=4),
                key_bits=12,
                mean_stream_length=10.0,
                rng=RandomStream(1),
            )
        with pytest.raises(ValueError):
            SourcePopulation(
                count=1,
                spec=workload_a(base_bits=8),
                key_bits=6,
                mean_stream_length=10.0,
                rng=RandomStream(1),
            )
