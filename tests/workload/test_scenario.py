"""Unit tests for repro.workload.scenario."""

from __future__ import annotations

import pytest

from repro.workload.distributions import workload_a, workload_b
from repro.workload.scenario import PhasedScenario, ScenarioPhase, paper_scenario


class TestPhasedScenario:
    def test_paper_scenario_structure(self):
        scenario = paper_scenario()
        assert [phase.spec.name for phase in scenario.phases] == ["A", "B", "C"]
        assert scenario.total_duration == pytest.approx(3 * 7200.0)

    def test_workload_at_boundaries(self):
        scenario = paper_scenario(phase_duration=100.0)
        assert scenario.workload_at(0.0).name == "A"
        assert scenario.workload_at(99.9).name == "A"
        assert scenario.workload_at(100.0).name == "B"
        assert scenario.workload_at(250.0).name == "C"
        # Beyond the end the final workload persists.
        assert scenario.workload_at(10_000.0).name == "C"

    def test_phase_index_at(self):
        scenario = paper_scenario(phase_duration=100.0)
        assert scenario.phase_index_at(50.0) == 0
        assert scenario.phase_index_at(150.0) == 1
        assert scenario.phase_index_at(500.0) == 2

    def test_phase_boundaries(self):
        scenario = paper_scenario(phase_duration=100.0)
        assert scenario.phase_boundaries() == [0.0, 100.0, 200.0]

    def test_negative_time_rejected(self):
        scenario = paper_scenario()
        with pytest.raises(ValueError):
            scenario.workload_at(-1.0)
        with pytest.raises(ValueError):
            scenario.phase_index_at(-1.0)

    def test_custom_scenario(self):
        scenario = PhasedScenario(
            [
                ScenarioPhase(spec=workload_b(), duration=10.0),
                ScenarioPhase(spec=workload_a(), duration=20.0),
            ]
        )
        assert scenario.workload_at(5.0).name == "B"
        assert scenario.workload_at(15.0).name == "A"
        assert scenario.total_duration == 30.0

    def test_empty_scenario_rejected(self):
        with pytest.raises(ValueError):
            PhasedScenario([])

    def test_mixed_base_bits_rejected(self):
        with pytest.raises(ValueError):
            PhasedScenario(
                [
                    ScenarioPhase(spec=workload_a(base_bits=8), duration=10.0),
                    ScenarioPhase(spec=workload_b(base_bits=6), duration=10.0),
                ]
            )

    def test_zero_duration_phase_rejected(self):
        with pytest.raises(ValueError):
            ScenarioPhase(spec=workload_a(), duration=0.0)
