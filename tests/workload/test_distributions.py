"""Unit tests for the Figure 3 workload distributions."""

from __future__ import annotations

import pytest

from repro.workload.distributions import (
    WorkloadSpec,
    skew_statistics,
    uniform_weights,
    workload_a,
    workload_b,
    workload_c,
    zipf_weights,
)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="X", base_bits=4, weights=(1.0,) * 15, source_rate=1.0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="X", base_bits=4, weights=(-1.0,) + (1.0,) * 15, source_rate=1.0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="X", base_bits=4, weights=(0.0,) * 16, source_rate=1.0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="X", base_bits=4, weights=(1.0,) * 16, source_rate=0.0)

    def test_probability_normalisation(self):
        spec = WorkloadSpec(name="X", base_bits=4, weights=tuple(range(1, 17)), source_rate=1.0)
        assert sum(spec.probability(value) for value in range(16)) == pytest.approx(1.0)

    def test_prefix_probability_aggregates_below_base_depth(self):
        spec = WorkloadSpec(name="X", base_bits=2, weights=(1.0, 2.0, 3.0, 4.0), source_rate=1.0)
        assert spec.prefix_probability(0, 1) == pytest.approx(0.3)
        assert spec.prefix_probability(1, 1) == pytest.approx(0.7)
        assert spec.prefix_probability(0, 0) == pytest.approx(1.0)

    def test_prefix_probability_splits_uniformly_beyond_base(self):
        spec = WorkloadSpec(name="X", base_bits=2, weights=(1.0, 2.0, 3.0, 4.0), source_rate=1.0)
        base_probability = spec.probability(2)
        assert spec.prefix_probability(0b100, 3) == pytest.approx(base_probability / 2)
        assert spec.prefix_probability(0b1001, 4) == pytest.approx(base_probability / 4)

    def test_prefix_probability_total_is_one_at_any_depth(self):
        spec = workload_c(base_bits=4)
        for depth in [2, 4, 6]:
            total = sum(spec.prefix_probability(prefix, depth) for prefix in range(1 << depth))
            assert total == pytest.approx(1.0)

    def test_prefix_probability_validation(self):
        spec = workload_a(base_bits=4)
        with pytest.raises(ValueError):
            spec.prefix_probability(4, 2)
        with pytest.raises(ValueError):
            spec.prefix_probability(0, -1)

    def test_expected_counts_scale_with_population(self):
        spec = workload_a(base_bits=4)
        counts = spec.expected_counts(1000)
        assert sum(counts) == pytest.approx(1000.0)
        assert len(counts) == 16


class TestPaperWorkloads:
    def test_rates_match_section_6_1(self):
        assert workload_a().source_rate == 1.0
        assert workload_b().source_rate == 2.0
        assert workload_c().source_rate == 2.0

    def test_skew_ordering_a_less_than_b_less_than_c(self):
        stats = {name: skew_statistics(spec) for name, spec in
                 [("A", workload_a()), ("B", workload_b()), ("C", workload_c())]}
        assert stats["A"]["max_over_mean"] < stats["B"]["max_over_mean"] < stats["C"]["max_over_mean"]
        assert stats["A"]["normalised_entropy"] > stats["B"]["normalised_entropy"] > stats["C"]["normalised_entropy"]

    def test_workload_a_is_nearly_uniform(self):
        stats = skew_statistics(workload_a())
        assert stats["max_over_mean"] < 1.1
        assert stats["normalised_entropy"] > 0.99

    def test_workload_c_hot_window_carries_quarter_of_mass(self):
        stats = skew_statistics(workload_c())
        assert stats["hottest_window_share"] > 0.2

    def test_default_base_bits_is_eight(self):
        assert len(workload_a().weights) == 256


class TestGenericWeights:
    def test_uniform_weights(self):
        weights = uniform_weights(4)
        assert len(weights) == 16
        assert len(set(weights)) == 1

    def test_zipf_weights_decay(self):
        weights = zipf_weights(4, exponent=1.0)
        assert weights[0] > weights[1] > weights[15]
        assert weights[1] == pytest.approx(weights[0] / 2)

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(4, exponent=0.0)
