"""Unit tests for repro.workload.queries."""

from __future__ import annotations

import pytest

from repro.util.rng import RandomStream
from repro.workload.distributions import workload_b, workload_c
from repro.workload.queries import QueryPopulation


def make_population(count: int = 50) -> QueryPopulation:
    return QueryPopulation(
        count=count,
        spec=workload_b(base_bits=4),
        key_bits=12,
        mean_lifetime=1800.0,
        rng=RandomStream(13),
    )


class TestQueryPopulation:
    def test_expected_arrivals_steady_state(self):
        population = make_population(count=60)
        assert population.expected_arrivals(300.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            population.expected_arrivals(0.0)

    def test_spawn_clients_have_future_expiry(self):
        population = make_population()
        clients = population.spawn_clients(10, now=100.0)
        assert len(clients) == 10
        assert all(client.expires_at > 100.0 for client in clients)
        assert all(client.registered_at == 100.0 for client in clients)

    def test_client_names_are_unique_across_batches(self):
        population = make_population()
        first = population.spawn_clients(5, now=0.0)
        second = population.spawn_clients(5, now=10.0)
        names = {client.name for client in first + second}
        assert len(names) == 10

    def test_initial_clients_matches_count(self):
        population = make_population(count=25)
        assert len(population.initial_clients()) == 25

    def test_to_query_conversion(self):
        population = make_population()
        client = population.spawn_clients(1, now=0.0)[0]
        query = client.to_query(query_id=7)
        assert query.query_id == 7
        assert query.key == client.key
        assert query.expires_at == client.expires_at

    def test_switch_workload(self):
        population = make_population()
        population.switch_workload(workload_c(base_bits=4))
        assert population.spec.name == "C"
        with pytest.raises(ValueError):
            population.switch_workload(workload_c(base_bits=6))

    def test_lifetimes_average_to_mean(self):
        population = make_population(count=2000)
        clients = population.initial_clients(now=0.0)
        mean_lifetime = sum(client.expires_at for client in clients) / len(clients)
        assert 1600 < mean_lifetime < 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryPopulation(
                count=-1, spec=workload_b(base_bits=4), key_bits=12,
                mean_lifetime=10.0, rng=RandomStream(1),
            )
        with pytest.raises(ValueError):
            QueryPopulation(
                count=1, spec=workload_b(base_bits=8), key_bits=4,
                mean_lifetime=10.0, rng=RandomStream(1),
            )
        with pytest.raises(ValueError):
            make_population().spawn_clients(-1, now=0.0)
