"""Tests for server-join handoff in the redirection layer."""

from __future__ import annotations

import pytest

from repro.app.query_store import Query
from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream


@pytest.fixture
def system() -> ClashSystem:
    config = ClashConfig.small_scale()
    return ClashSystem.create(config, server_count=16, rng=RandomStream(55))


def _split_some_groups(system: ClashSystem, count: int, seed: int = 3) -> None:
    rng = RandomStream(seed)
    for _ in range(count):
        groups = list(system.active_groups().items())
        group, owner = groups[rng.randint(0, len(groups) - 1)]
        system.server(owner).set_group_rate(group, 3 * system.config.server_capacity)
        system.split_server(owner)


def _join_capturing(system: ClashSystem, name: str, group) -> dict:
    """Join ``name`` exactly at ``group``'s hash point so it takes over."""
    node_id = system.ring.hash_function.hash_key(group.virtual_key)
    return system.handle_server_join(name, node_id=node_id)


class TestServerJoin:
    def test_duplicate_name_rejected(self, system: ClashSystem):
        with pytest.raises(ValueError):
            system.handle_server_join("s0")

    def test_joiner_is_bound_and_on_the_ring(self, system: ClashSystem):
        system.handle_server_join("newcomer")
        assert "newcomer" in system.server_names()
        assert "newcomer" in system.ring
        assert "newcomer" in system.transport.endpoints()
        system.verify_invariants()

    def test_captured_groups_are_handed_off(self, system: ClashSystem):
        _split_some_groups(system, 10)
        target = sorted(system.active_groups())[0]
        former = system.owner_of_group(target)
        handed = _join_capturing(system, "joiner", target)
        assert target in handed
        assert handed[target] == former
        assert system.owner_of_group(target) == "joiner"
        assert target not in system.server(former).table
        system.verify_invariants()

    def test_every_handed_off_group_hashes_to_the_joiner(self, system: ClashSystem):
        _split_some_groups(system, 20)
        handed = system.handle_server_join("joiner")
        ring = system.ring
        for group in handed:
            owner = ring.owner_of(ring.hash_function.hash_key(group.virtual_key))
            assert owner == "joiner"
            assert system.owner_of_group(group) == "joiner"
        system.verify_invariants()

    def test_queries_migrate_with_the_group(self, system: ClashSystem):
        key = IdentifierKey(value=0, width=system.config.key_bits)
        group, owner = system.find_active_group(key)
        system.server(owner).store_query(Query(key=key, client="c1", query_id=1))
        handed = _join_capturing(system, "joiner", group)
        assert group in handed
        assert len(system.server("joiner").query_store) == 1
        assert len(system.server(owner).query_store) == 0

    def test_parent_right_child_linkage_follows_the_joiner(self, system: ClashSystem):
        key = IdentifierKey(value=0, width=system.config.key_bits)
        group, owner = system.find_active_group(key)
        system.server(owner).set_group_rate(group, 3 * system.config.server_capacity)
        outcome = system.split_server(owner)
        assert outcome is not None and outcome.shed
        handed = _join_capturing(system, "joiner", outcome.right)
        assert outcome.right in handed
        parent_entry = system.server(outcome.parent_server).table.entry(outcome.group)
        assert parent_entry.right_child_id == "joiner"
        # Consolidation still reaches the right child through the new owner.
        for server in system.servers().values():
            server.reset_interval()
        system.run_load_check()
        system.verify_invariants()

    def test_moved_left_child_restarts_as_a_root(self, system: ClashSystem):
        """The merge protocol needs the left child local to the parent-entry
        holder, so a handed-off left child cannot keep its linkage; it
        restarts as a root (and therefore never addresses load reports no
        parent could act on)."""
        key = IdentifierKey(value=0, width=system.config.key_bits)
        group, owner = system.find_active_group(key)
        system.server(owner).set_group_rate(group, 3 * system.config.server_capacity)
        outcome = system.split_server(owner)
        assert outcome is not None and outcome.shed
        handed = _join_capturing(system, "joiner", outcome.left)
        assert outcome.left in handed
        assert system.server("joiner").table.entry(outcome.left).is_root
        # No leaf → parent report is built for a root entry.
        parents = [p for p, _ in system.server("joiner").addressed_load_reports()]
        assert outcome.parent_server not in parents
        system.verify_invariants()

    def test_root_groups_stay_roots_on_the_joiner(self, system: ClashSystem):
        target = sorted(system.active_groups())[0]  # bootstrap group = root
        handed = _join_capturing(system, "joiner", target)
        assert target in handed
        entry = system.server("joiner").table.entry(target)
        assert entry.is_root
        system.verify_invariants()

    def test_join_charges_signalling_messages(self, system: ClashSystem):
        target = sorted(system.active_groups())[0]
        system.reset_messages()
        handed = _join_capturing(system, "joiner", target)
        assert len(handed) >= 1
        # Release exchange + ACCEPT_KEYGROUP transfer per handed-off group.
        assert system.messages.total() >= 4 * len(handed)

    def test_clients_resolve_every_key_after_join(self, system: ClashSystem):
        _split_some_groups(system, 15)
        system.handle_server_join("joiner")
        system.verify_invariants()
        client = system.make_client("post-join")
        rng = RandomStream(9)
        for _ in range(25):
            key = IdentifierKey(
                value=rng.randbits(system.config.key_bits), width=system.config.key_bits
            )
            result = client.find_group(key, use_cache=False)
            registry_group, registry_owner = system.find_active_group(key)
            assert result.group == registry_group
            assert result.server == registry_owner

    def test_interleaved_joins_and_failures_keep_the_system_usable(
        self, system: ClashSystem
    ):
        _split_some_groups(system, 12)
        rng = RandomStream(77)
        for index in range(6):
            if index % 2 == 0:
                system.handle_server_join(f"j{index}")
            else:
                victim = system.active_servers()[
                    rng.randint(0, len(system.active_servers()) - 1)
                ]
                system.handle_server_failure(victim)
            system.verify_invariants()
        for server in system.servers().values():
            server.reset_interval()
        system.run_load_check()
        system.verify_invariants()

    def test_rejoining_a_failed_servers_name_is_allowed(self, system: ClashSystem):
        victim = system.active_servers()[0]
        system.handle_server_failure(victim)
        system.handle_server_join(victim)
        system.verify_invariants()
        assert victim in system.server_names()
