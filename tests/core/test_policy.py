"""Unit tests for repro.core.policy."""

from __future__ import annotations

from repro.core.policy import (
    CoolestGroupMergePolicy,
    HottestGroupSplitPolicy,
    RandomGroupSplitPolicy,
    RoundRobinSplitPolicy,
)
from repro.keys.keygroup import KeyGroup
from repro.util.rng import RandomStream


def group(pattern: str) -> KeyGroup:
    return KeyGroup.from_wildcard(pattern, width=8)


LOADS = {
    group("000*"): 10.0,
    group("001*"): 50.0,
    group("01*"): 30.0,
}


class TestHottestGroupSplitPolicy:
    def test_selects_highest_load(self):
        assert HottestGroupSplitPolicy().select(LOADS, max_depth=8) == group("001*")

    def test_respects_max_depth(self):
        loads = {group("00110011"): 99.0, group("01*"): 1.0}
        assert HottestGroupSplitPolicy().select(loads, max_depth=8) == group("01*")

    def test_returns_none_when_nothing_splittable(self):
        loads = {group("00110011"): 99.0}
        assert HottestGroupSplitPolicy().select(loads, max_depth=8) is None

    def test_empty_loads(self):
        assert HottestGroupSplitPolicy().select({}, max_depth=8) is None

    def test_deterministic_tie_break(self):
        loads = {group("000*"): 5.0, group("111*"): 5.0}
        first = HottestGroupSplitPolicy().select(loads, max_depth=8)
        second = HottestGroupSplitPolicy().select(dict(reversed(list(loads.items()))), max_depth=8)
        assert first == second


class TestRandomGroupSplitPolicy:
    def test_selects_a_candidate(self):
        policy = RandomGroupSplitPolicy(RandomStream(5))
        assert policy.select(LOADS, max_depth=8) in LOADS

    def test_never_selects_unsplittable(self):
        policy = RandomGroupSplitPolicy(RandomStream(5))
        loads = {group("00110011"): 10.0, group("01*"): 1.0}
        for _ in range(20):
            assert policy.select(loads, max_depth=8) == group("01*")

    def test_empty(self):
        assert RandomGroupSplitPolicy(RandomStream(1)).select({}, max_depth=8) is None


class TestRoundRobinSplitPolicy:
    def test_cycles_through_candidates(self):
        policy = RoundRobinSplitPolicy()
        seen = [policy.select(LOADS, max_depth=8) for _ in range(6)]
        assert set(seen[:3]) == set(LOADS)
        assert seen[:3] == seen[3:]

    def test_empty(self):
        assert RoundRobinSplitPolicy().select({}, max_depth=8) is None


class TestCoolestGroupMergePolicy:
    def test_selects_coldest_below_threshold(self):
        policy = CoolestGroupMergePolicy()
        assert policy.select(LOADS, cold_threshold=40.0, min_depth=2) == group("000*")

    def test_ignores_groups_at_min_depth(self):
        policy = CoolestGroupMergePolicy()
        loads = {group("00*"): 1.0, group("010*"): 2.0}
        assert policy.select(loads, cold_threshold=40.0, min_depth=2) == group("010*")

    def test_returns_none_when_nothing_cold(self):
        policy = CoolestGroupMergePolicy()
        assert policy.select(LOADS, cold_threshold=5.0, min_depth=0) is None
