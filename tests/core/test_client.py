"""Unit tests for the CLASH client depth-discovery search."""

from __future__ import annotations

import pytest

from repro.core.client import ClashClient
from repro.core.messages import AcceptObjectReply, ReplyStatus
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup

WIDTH = 12


class TreeRouter:
    """A scripted router backed by an explicit prefix-free set of key groups.

    It answers ``ACCEPT_OBJECT`` probes exactly as the distributed system
    would: the probe is addressed by the virtual key of the *estimated* group,
    and this router pretends each active group lives on its own dedicated
    server whose table contains only that group.  A probe reaching the right
    server (same virtual key as the true group) gets OK; other probes get
    INCORRECT_DEPTH with the longest prefix match against that server's lone
    entry — a conservative (least informative) but protocol-faithful reply.
    """

    def __init__(self, groups: list[KeyGroup]) -> None:
        for index, group in enumerate(groups):
            for other in groups[index + 1 :]:
                if group.overlaps(other):
                    raise ValueError("router groups must be prefix-free")
        self.groups = groups
        self.probes = 0

    def _true_group(self, key: IdentifierKey) -> KeyGroup:
        for group in self.groups:
            if group.contains_key(key):
                return group
        raise LookupError(f"no group covers {key}")

    def route_accept_object(self, key, estimated_depth, sender):
        self.probes += 1
        probe_group = KeyGroup.from_key(key, estimated_depth)
        true_group = self._true_group(key)
        if probe_group.virtual_key == true_group.virtual_key:
            status = (
                ReplyStatus.OK
                if estimated_depth == true_group.depth
                else ReplyStatus.OK_CORRECTED_DEPTH
            )
            return (
                AcceptObjectReply(
                    status=status, server=f"owner-of-{true_group.wildcard()}",
                    correct_depth=true_group.depth,
                ),
                2,
            )
        # The probed server manages some other group; its longest prefix match
        # with the key is bounded by that group's depth.
        owner_group = None
        for group in self.groups:
            if group.virtual_key == probe_group.virtual_key:
                owner_group = group
                break
        if owner_group is None:
            owner_group = probe_group
        match = min(
            key.common_prefix_length(owner_group.virtual_key), owner_group.depth
        )
        return (
            AcceptObjectReply(
                status=ReplyStatus.INCORRECT_DEPTH,
                server=f"owner-of-{owner_group.wildcard()}",
                longest_prefix_match=match,
            ),
            2,
        )


def balanced_tree(depth: int) -> list[KeyGroup]:
    """All 2**depth groups of a uniform-depth tree."""
    return [KeyGroup(prefix=prefix, depth=depth, width=WIDTH) for prefix in range(1 << depth)]


def skewed_tree() -> list[KeyGroup]:
    """A deliberately unbalanced tree: one branch split to depth 9."""
    groups: list[KeyGroup] = []
    current = KeyGroup(prefix=0, depth=1, width=WIDTH)  # "0*"
    groups.append(KeyGroup(prefix=1, depth=1, width=WIDTH))  # "1*"
    for _ in range(8):
        left, right = current.split()
        groups.append(right)
        current = left
    groups.append(current)
    return groups


class TestDepthSearch:
    def test_finds_group_in_balanced_tree(self):
        router = TreeRouter(balanced_tree(4))
        client = ClashClient(name="c", router=router, key_bits=WIDTH, initial_depth_hint=6)
        key = IdentifierKey(value=0b101010101010, width=WIDTH)
        result = client.find_group(key)
        assert result.group.depth == 4
        assert result.group.contains_key(key)
        assert result.probes >= 1
        assert result.probes <= WIDTH + 1

    def test_first_probe_succeeds_with_exact_hint(self):
        router = TreeRouter(balanced_tree(5))
        client = ClashClient(name="c", router=router, key_bits=WIDTH, initial_depth_hint=5)
        result = client.find_group(IdentifierKey(value=123, width=WIDTH))
        assert result.probes == 1
        assert result.messages == 2

    def test_finds_groups_in_skewed_tree(self):
        groups = skewed_tree()
        router = TreeRouter(groups)
        client = ClashClient(name="c", router=router, key_bits=WIDTH, initial_depth_hint=3)
        for value in range(0, 1 << WIDTH, 257):
            key = IdentifierKey(value=value, width=WIDTH)
            result = client.find_group(key, use_cache=False)
            expected = next(group for group in groups if group.contains_key(key))
            assert result.group == expected

    def test_convergence_bounded_by_key_bits_plus_one(self):
        router = TreeRouter(skewed_tree())
        client = ClashClient(name="c", router=router, key_bits=WIDTH, initial_depth_hint=1)
        for value in range(0, 1 << WIDTH, 101):
            result = client.find_group(IdentifierKey(value=value, width=WIDTH), use_cache=False)
            assert result.probes <= WIDTH + 1

    def test_average_probe_count_beats_exhaustive_scan(self):
        """The paper claims convergence faster than log N on average."""
        router = TreeRouter(balanced_tree(6))
        client = ClashClient(name="c", router=router, key_bits=WIDTH, initial_depth_hint=6)
        total = 0
        samples = 100
        for value in range(samples):
            result = client.find_group(
                IdentifierKey(value=value * 37 % (1 << WIDTH), width=WIDTH), use_cache=False
            )
            total += result.probes
        assert total / samples < WIDTH / 2

    def test_probe_depths_are_recorded(self):
        router = TreeRouter(balanced_tree(4))
        client = ClashClient(name="c", router=router, key_bits=WIDTH, initial_depth_hint=9)
        result = client.find_group(IdentifierKey(value=999, width=WIDTH))
        assert len(result.probe_depths) == result.probes
        assert result.probe_depths[0] == 9


class TestCaching:
    def test_cache_hit_costs_nothing(self):
        router = TreeRouter(balanced_tree(4))
        client = ClashClient(name="c", router=router, key_bits=WIDTH, initial_depth_hint=4)
        key = IdentifierKey(value=77, width=WIDTH)
        first = client.find_group(key)
        probes_before = router.probes
        second = client.find_group(key)
        assert router.probes == probes_before
        assert second.probes == 0
        assert second.messages == 0
        assert second.group == first.group
        assert client.cache_hits == 1

    def test_cache_covers_sibling_keys_in_same_group(self):
        router = TreeRouter(balanced_tree(4))
        client = ClashClient(name="c", router=router, key_bits=WIDTH, initial_depth_hint=4)
        client.find_group(IdentifierKey(value=0b000000000000, width=WIDTH))
        result = client.find_group(IdentifierKey(value=0b000011111111, width=WIDTH))
        assert result.probes == 0

    def test_handle_redirect_invalidates_and_researches(self):
        router = TreeRouter(balanced_tree(4))
        client = ClashClient(name="c", router=router, key_bits=WIDTH, initial_depth_hint=4)
        key = IdentifierKey(value=0b010101010101, width=WIDTH)
        first = client.find_group(key)
        # The group splits: replace the router with a deeper tree.
        new_groups = [group for group in balanced_tree(4) if not group.contains_key(key)]
        deeper = KeyGroup.from_key(key, 4)
        new_groups.extend(deeper.split())
        client._router = TreeRouter(new_groups)  # simulate redirection after a split
        result = client.handle_redirect(key)
        assert result.group.depth == 5
        assert result.group != first.group
        assert client.cached_server_for(key)[0] == result.group

    def test_invalidate_all(self):
        router = TreeRouter(balanced_tree(3))
        client = ClashClient(name="c", router=router, key_bits=WIDTH)
        client.find_group(IdentifierKey(value=1, width=WIDTH))
        assert client.cache
        client.invalidate_all()
        assert not client.cache


class TestValidation:
    def test_bad_constructor_arguments(self):
        router = TreeRouter(balanced_tree(2))
        with pytest.raises(ValueError):
            ClashClient(name="", router=router, key_bits=WIDTH)
        with pytest.raises(ValueError):
            ClashClient(name="c", router=router, key_bits=0)
        with pytest.raises(ValueError):
            ClashClient(name="c", router=router, key_bits=WIDTH, initial_depth_hint=13)

    def test_key_width_mismatch_rejected(self):
        client = ClashClient(name="c", router=TreeRouter(balanced_tree(2)), key_bits=WIDTH)
        with pytest.raises(ValueError):
            client.find_group(IdentifierKey(value=1, width=WIDTH + 1))
