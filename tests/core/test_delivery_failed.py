"""Mid-flight destination failure: typed cancellation + protocol recovery.

A request/reply exchange whose destination dies while the request is
travelling used to let a bare ``TransportError`` escape and abort the whole
run (the PR 3 follow-up).  These tests pin the fixed behaviour on the
time-modelling transports: the exchange is cancelled, the lost request is
counted in ``dropped_messages``, the caller sees a typed
:class:`~repro.net.transport.DeliveryFailed`, and every protocol-level caller
recovers instead of crashing.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.keys.identifier import RandomKeyGenerator
from repro.net import ConstantLatency
from repro.net.event import EventTransport
from repro.net.transport import DeliveryFailed
from repro.sim.engine import SimulationEngine
from repro.sim.simulator import FlowSimulator
from repro.util.rng import RandomStream
from repro.workload.scenario import paper_scenario


def _latency_system(server_count: int = 8) -> tuple[ClashSystem, SimulationEngine]:
    engine = SimulationEngine()
    transport = EventTransport(engine=engine, latency=ConstantLatency(1.0))
    config = ClashConfig.small_scale()
    system = ClashSystem(
        config,
        [f"s{index}" for index in range(server_count)],
        rng=RandomStream(7),
        transport=transport,
    )
    system.bootstrap()
    return system, engine


class TestLookupRetry:
    def test_client_lookup_survives_destination_failing_mid_probe(self):
        """The probed owner dies while the ACCEPT_OBJECT probe travels: the
        exchange is cancelled (typed + counted) and the client's retry
        resolves against the re-stabilised ring."""
        system, engine = _latency_system()
        client = system.make_client("cli")
        key = RandomKeyGenerator(
            width=system.config.key_bits, base_bits=4, rng=RandomStream(21)
        ).generate()
        # The owner the client's first probe will be routed to.
        first_estimate = system.config.initial_depth
        from repro.keys.keygroup import KeyGroup

        probe_group = KeyGroup.from_key(key, first_estimate)
        victim = system.ring.lookup_key(probe_group.virtual_key).owner
        engine.schedule_at(0.5, lambda now: system.handle_server_failure(victim))
        result = client.find_group(key, use_cache=False)
        system.verify_invariants()
        assert victim not in system.server_names()
        assert result.server in system.server_names()
        assert system.transport.dropped_messages == 1
        # The lost probe crossed the wire and is accounted on both sides.
        assert result.probes == len(result.probe_depths)
        assert result.probe_depths[0] == result.probe_depths[1] == first_estimate

    def test_route_accept_object_reraises_the_typed_failure(self):
        system, engine = _latency_system()
        key = RandomKeyGenerator(
            width=system.config.key_bits, base_bits=4, rng=RandomStream(21)
        ).generate()
        from repro.keys.keygroup import KeyGroup

        probe_group = KeyGroup.from_key(key, system.config.initial_depth)
        victim = system.ring.lookup_key(probe_group.virtual_key).owner
        engine.schedule_at(0.5, lambda now: system.handle_server_failure(victim))
        lookups_before = system.messages.snapshot()["lookup"]
        with pytest.raises(DeliveryFailed) as failure:
            system.route_accept_object(key, system.config.initial_depth, "cli")
        assert failure.value.destination == victim
        # The lost (reply-less) probe is charged as a single message.
        assert system.messages.snapshot()["lookup"] == lookups_before + 1


class TestSplitTransferCancellation:
    def test_split_is_undone_when_the_child_dies_mid_transfer(self):
        """The ACCEPT_KEYGROUP transfer dies in flight: the parent reverts
        the local split, ownership never moves, and the deployment stays
        invariant-clean."""
        system, engine = _latency_system(server_count=12)
        generator = RandomKeyGenerator(
            width=system.config.key_bits, base_bits=4, rng=RandomStream(3)
        )
        # Find a (group, owner) whose right child resolves to a *different*
        # server, so the split would genuinely transfer responsibility.
        for _ in range(64):
            key = generator.generate()
            group, owner = system.find_active_group(key)
            if group.depth >= system.config.effective_max_depth:
                continue
            server = system.server(owner)
            server.set_group_rate(group, 2 * system.config.server_capacity)
            if server.choose_group_to_split() != group:
                server.set_group_rate(group, 0.0)
                continue
            _left, right = group.split()
            child_owner = system.ring.lookup_key(right.virtual_key).owner
            if child_owner != owner:
                break
            server.set_group_rate(group, 0.0)
        else:  # pragma: no cover - seed-dependent safety net
            pytest.fail("no transferable split found")
        splits_before = server.splits_performed
        engine.schedule_at(
            engine.now + 0.5, lambda now: system.handle_server_failure(child_owner)
        )
        outcome = system.split_server(owner)
        assert outcome is None  # the failed attempt reports no split
        assert server.splits_performed == splits_before
        assert system.transport.dropped_messages == 1
        # Ownership of the would-be-split group never moved, and the failed
        # child's own groups were re-homed by recovery (invariants cover it).
        assert system.owner_of_group(group) == owner
        assert child_owner not in system.server_names()
        assert all(o != child_owner for o in system.active_groups().values())
        system.verify_invariants()


class TestConsolidationCancellation:
    def test_release_request_to_a_dead_child_skips_the_merge(self):
        """The RELEASE_KEYGROUP request dies in flight because the child
        failed: the merge is skipped, the child's groups were already
        re-homed by failure recovery, and nothing crashes."""
        system, engine = _latency_system(server_count=6)
        generator = RandomKeyGenerator(
            width=system.config.key_bits, base_bits=4, rng=RandomStream(5)
        )
        # Manufacture one real split so a parent entry with a remote right
        # child exists.
        for _ in range(64):
            key = generator.generate()
            group, owner = system.find_active_group(key)
            if group.depth >= system.config.effective_max_depth:
                continue
            server = system.server(owner)
            server.set_group_rate(group, 2 * system.config.server_capacity)
            if server.choose_group_to_split() != group:
                server.set_group_rate(group, 0.0)
                continue
            outcome = system.split_server(owner)
            if outcome is not None and outcome.shed:
                break
        else:  # pragma: no cover - seed-dependent safety net
            pytest.fail("no shed split produced")
        parent, child = outcome.parent_server, outcome.child_server
        # Cool the deployment and let the child report, so the parent sees a
        # consolidation candidate.
        for member in system.servers().values():
            member.reset_interval()
            for active in member.active_groups():
                member.set_group_rate(active, 0.0)
        system.exchange_load_reports()
        assert system.server(parent).consolidation_candidates()
        merges_before = system.server(parent).merges_performed
        engine.schedule_at(
            engine.now + 0.5, lambda now: system.handle_server_failure(child)
        )
        outcomes = system.consolidate_server(parent)
        assert outcomes == []  # the merge was skipped, not crashed
        assert system.server(parent).merges_performed == merges_before
        assert system.transport.dropped_messages >= 1
        assert child not in system.server_names()
        system.verify_invariants()


class TestEndToEndChurnWithLatency:
    def test_mid_phase_churn_with_large_link_latencies_completes(self):
        """The PR 3 follow-up scenario: Poisson churn arriving *mid-phase*
        while exchanges take seconds of simulated time.  Requests routinely
        have their destination die mid-flight; the run must complete with
        invariants intact instead of aborting on a TransportError."""
        from repro.experiments.runner import ExperimentScale

        scale = ExperimentScale.scaled(factor=100, phase_periods=2)
        scale = dataclasses.replace(
            scale, transport="event", link_latency=2.0, join_rate=0.02, fail_rate=0.02
        )
        scenario = paper_scenario(
            phase_duration=scale.phase_duration,
            join_rate=scale.join_rate,
            fail_rate=scale.fail_rate,
        )
        # A phase-entry failure burst layered on top of the Poisson arrivals
        # maximises the chance of in-flight exchanges losing their peer.
        scenario = type(scenario)(
            [
                dataclasses.replace(phase, fail_servers=2 if index else 0)
                for index, phase in enumerate(scenario.phases)
            ]
        )
        simulator = FlowSimulator(
            config=scale.config(), params=scale.params(), scenario=scenario
        )
        simulator.verify_after_membership = True
        result = simulator.run()
        simulator.system.verify_invariants()
        samples = result.metrics.samples
        assert len(samples) == 6
        assert sum(s.server_failures for s in samples) > 0
        assert sum(s.server_joins for s in samples) > 0

    def test_async_transport_survives_boundary_churn_with_latency(self):
        """The asyncio transport under the same stress (period-boundary
        churn + non-zero latency) also completes cleanly."""
        from repro.experiments.runner import ExperimentScale

        scale = ExperimentScale.scaled(factor=100, phase_periods=2)
        scale = dataclasses.replace(
            scale, transport="async", link_latency=2.0, join_rate=0.02, fail_rate=0.02
        )
        simulator = FlowSimulator(
            config=scale.config(), params=scale.params(), scenario=scale.scenario()
        )
        simulator.verify_after_membership = True
        try:
            result = simulator.run()
            simulator.system.verify_invariants()
        finally:
            simulator.transport.close()
        assert sum(s.server_failures for s in result.metrics.samples) > 0
        assert all(s.mean_message_latency > 0 for s in result.metrics.samples)
