"""Property-based tests for range-query planning (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.range_query import KeyRange, canonical_cover, fixed_depth_replica_count
from repro.keys.identifier import IdentifierKey

WIDTH = 14
MAX_VALUE = (1 << WIDTH) - 1


@st.composite
def key_ranges(draw):
    low = draw(st.integers(min_value=0, max_value=MAX_VALUE))
    high = draw(st.integers(min_value=low, max_value=MAX_VALUE))
    return KeyRange(low=low, high=high, width=WIDTH)


class TestCanonicalCoverProperties:
    @given(key_range=key_ranges())
    @settings(max_examples=200)
    def test_cover_partitions_the_range_exactly(self, key_range: KeyRange):
        cover = canonical_cover(key_range)
        assert sum(group.size for group in cover) == key_range.size
        for index, group in enumerate(cover):
            for other in cover[index + 1 :]:
                assert not group.overlaps(other)

    @given(key_range=key_ranges())
    @settings(max_examples=200)
    def test_cover_is_within_the_range(self, key_range: KeyRange):
        for group in canonical_cover(key_range):
            assert group.virtual_key.value >= key_range.low
            assert group.virtual_key.value + group.size - 1 <= key_range.high

    @given(key_range=key_ranges())
    @settings(max_examples=200)
    def test_cover_size_bound(self, key_range: KeyRange):
        assert len(canonical_cover(key_range)) <= 2 * WIDTH

    @given(key_range=key_ranges(), value=st.integers(min_value=0, max_value=MAX_VALUE))
    @settings(max_examples=200)
    def test_membership_matches_cover(self, key_range: KeyRange, value: int):
        key = IdentifierKey(value=value, width=WIDTH)
        in_cover = any(group.contains_key(key) for group in canonical_cover(key_range))
        assert in_cover == key_range.contains(key)

    @given(key_range=key_ranges(), depth=st.integers(min_value=0, max_value=WIDTH))
    @settings(max_examples=200)
    def test_fixed_depth_count_bounds_cover_restricted_to_depth(self, key_range, depth):
        """The number of depth-d prefixes intersecting the range is monotone in d."""
        shallower = fixed_depth_replica_count(key_range, depth)
        if depth < WIDTH:
            deeper = fixed_depth_replica_count(key_range, depth + 1)
            assert shallower <= deeper <= 2 * shallower
