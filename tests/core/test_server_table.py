"""Unit tests for repro.core.server_table (Figure 2 of the paper)."""

from __future__ import annotations

import pytest

from repro.core.server_table import SELF_PARENT, ServerTable, ServerTableEntry
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup


def group(pattern: str) -> KeyGroup:
    return KeyGroup.from_wildcard(pattern, width=7)


def key(bits: str) -> IdentifierKey:
    return IdentifierKey.from_bits(bits)


@pytest.fixture
def figure2_table() -> ServerTable:
    """The exact table of Figure 2 (server s25)."""
    table = ServerTable(key_bits=7)
    table.add_entry(
        ServerTableEntry(group=group("011*"), parent_id=None, right_child_id="45", active=False)
    )
    table.add_entry(
        ServerTableEntry(group=group("01011*"), parent_id="22", right_child_id="26", active=False)
    )
    table.add_entry(ServerTableEntry(group=group("010110*"), parent_id=SELF_PARENT, active=True))
    table.add_entry(
        ServerTableEntry(
            group=group("0110*"), parent_id=SELF_PARENT, right_child_id="11", active=False
        )
    )
    table.add_entry(ServerTableEntry(group=group("01100*"), parent_id=SELF_PARENT, active=True))
    return table


class TestEntry:
    def test_describe_matches_figure2_columns(self):
        entry = ServerTableEntry(group=group("011*"), parent_id=None, right_child_id="45", active=False)
        description = entry.describe()
        assert description == {
            "VirtualKeyGroup": "011*",
            "Depth": 3,
            "ParentID": -1,
            "RightChildID": "45",
            "Active": "N",
        }

    def test_is_root(self):
        assert ServerTableEntry(group=group("011*"), parent_id=None).is_root
        assert not ServerTableEntry(group=group("011*"), parent_id="s1").is_root


class TestFigure2Semantics:
    def test_active_groups(self, figure2_table: ServerTable):
        assert figure2_table.active_groups() == sorted([group("010110*"), group("01100*")])
        assert len(figure2_table.inactive_groups()) == 3

    def test_case_a_right_depth(self, figure2_table: ServerTable):
        """Client sends '0110001' with depth 5: s25 manages '01100*'."""
        matched = figure2_table.active_group_for(key("0110001"))
        assert matched == group("01100*")
        assert matched.depth == 5

    def test_case_c_wrong_server_prefix_match(self, figure2_table: ServerTable):
        """Client sends '0101010': the longest prefix match in the table is 4."""
        assert figure2_table.active_group_for(key("0101010")) is None
        assert figure2_table.longest_prefix_match(key("0101010")) == 4

    def test_longest_prefix_match_counts_inactive_entries(self, figure2_table: ServerTable):
        # "0111111" matches the inactive root entry "011*" in 3 bits.
        assert figure2_table.longest_prefix_match(key("0111111")) == 3

    def test_describe_rows(self, figure2_table: ServerTable):
        rows = figure2_table.describe()
        assert len(rows) == 5
        assert any(row["VirtualKeyGroup"] == "01011*" and row["ParentID"] == "22" for row in rows)


class TestMutation:
    def test_add_rejects_overlapping_active_groups(self):
        table = ServerTable(key_bits=7)
        table.add_entry(ServerTableEntry(group=group("011*"), parent_id=None))
        with pytest.raises(ValueError):
            table.add_entry(ServerTableEntry(group=group("0110*"), parent_id=SELF_PARENT))

    def test_add_allows_inactive_ancestor(self):
        table = ServerTable(key_bits=7)
        table.add_entry(
            ServerTableEntry(group=group("011*"), parent_id=None, right_child_id="x", active=False)
        )
        table.add_entry(ServerTableEntry(group=group("0110*"), parent_id=SELF_PARENT))
        table.check_invariants()

    def test_add_duplicate_rejected(self):
        table = ServerTable(key_bits=7)
        table.add_entry(ServerTableEntry(group=group("011*"), parent_id=None))
        with pytest.raises(ValueError):
            table.add_entry(ServerTableEntry(group=group("011*"), parent_id=None))

    def test_add_rejects_width_mismatch(self):
        table = ServerTable(key_bits=7)
        with pytest.raises(ValueError):
            table.add_entry(
                ServerTableEntry(group=KeyGroup.from_wildcard("011*", width=8), parent_id=None)
            )

    def test_record_split_keeps_left_and_marks_parent(self):
        table = ServerTable(key_bits=7)
        table.add_entry(ServerTableEntry(group=group("011*"), parent_id=None))
        left, right = table.record_split(group("011*"), right_child_server="s12")
        assert left == group("0110*")
        assert right == group("0111*")
        parent_entry = table.entry(group("011*"))
        assert not parent_entry.active
        assert parent_entry.right_child_id == "s12"
        left_entry = table.entry(left)
        assert left_entry.active
        assert left_entry.parent_id == SELF_PARENT
        assert right not in table
        table.check_invariants()

    def test_record_split_requires_active_entry(self):
        table = ServerTable(key_bits=7)
        table.add_entry(
            ServerTableEntry(group=group("011*"), parent_id=None, right_child_id="x", active=False)
        )
        with pytest.raises(ValueError):
            table.record_split(group("011*"), right_child_server="s1")

    def test_record_consolidation_restores_parent(self):
        table = ServerTable(key_bits=7)
        table.add_entry(ServerTableEntry(group=group("011*"), parent_id=None))
        table.record_split(group("011*"), right_child_server="s12")
        removed_left = table.record_consolidation(group("011*"))
        assert removed_left == group("0110*")
        entry = table.entry(group("011*"))
        assert entry.active
        assert entry.right_child_id is None
        assert group("0110*") not in table
        table.check_invariants()

    def test_consolidation_requires_unsplit_left_child(self):
        table = ServerTable(key_bits=7)
        table.add_entry(ServerTableEntry(group=group("011*"), parent_id=None))
        table.record_split(group("011*"), right_child_server="s12")
        table.record_split(group("0110*"), right_child_server="s13")
        with pytest.raises(ValueError):
            table.record_consolidation(group("011*"))

    def test_consolidation_of_active_group_rejected(self):
        table = ServerTable(key_bits=7)
        table.add_entry(ServerTableEntry(group=group("011*"), parent_id=None))
        with pytest.raises(ValueError):
            table.record_consolidation(group("011*"))

    def test_consolidation_requires_left_child_present(self):
        table = ServerTable(key_bits=7)
        table.add_entry(
            ServerTableEntry(group=group("011*"), parent_id=None, right_child_id="x", active=False)
        )
        with pytest.raises(KeyError):
            table.record_consolidation(group("011*"))

    def test_remove_entry(self):
        table = ServerTable(key_bits=7)
        table.add_entry(ServerTableEntry(group=group("011*"), parent_id=None))
        removed = table.remove_entry(group("011*"))
        assert removed.group == group("011*")
        assert len(table) == 0
        with pytest.raises(KeyError):
            table.remove_entry(group("011*"))

    def test_entry_lookup_unknown_group(self):
        with pytest.raises(KeyError):
            ServerTable(key_bits=7).entry(group("011*"))

    def test_invalid_key_bits(self):
        with pytest.raises(ValueError):
            ServerTable(key_bits=0)

    def test_queries_reject_wrong_width_keys(self, figure2_table: ServerTable):
        with pytest.raises(ValueError):
            figure2_table.active_group_for(IdentifierKey.from_bits("01100010"))
        with pytest.raises(ValueError):
            figure2_table.longest_prefix_match(IdentifierKey.from_bits("01100010"))
