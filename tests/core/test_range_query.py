"""Unit tests for range queries over the identifier key space (E9 extension)."""

from __future__ import annotations

import pytest

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.core.range_query import (
    KeyRange,
    RangeQueryPlanner,
    canonical_cover,
    fixed_depth_replica_count,
)
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup
from repro.util.rng import RandomStream

WIDTH = 12


class TestKeyRange:
    def test_validation(self):
        with pytest.raises(ValueError):
            KeyRange(low=5, high=4, width=WIDTH)
        with pytest.raises(ValueError):
            KeyRange(low=0, high=1 << WIDTH, width=WIDTH)
        with pytest.raises(ValueError):
            KeyRange(low=-1, high=4, width=WIDTH)

    def test_size_and_contains(self):
        key_range = KeyRange(low=16, high=31, width=WIDTH)
        assert key_range.size == 16
        assert key_range.contains(IdentifierKey(value=20, width=WIDTH))
        assert not key_range.contains(IdentifierKey(value=32, width=WIDTH))

    def test_from_prefix_round_trip(self):
        group = KeyGroup.from_wildcard("0110*", width=WIDTH)
        key_range = KeyRange.from_prefix(group)
        assert key_range.size == group.size
        assert key_range.overlaps_group(group)

    def test_overlaps_group(self):
        key_range = KeyRange(low=0, high=255, width=WIDTH)
        assert key_range.overlaps_group(KeyGroup.from_wildcard("0000*", width=WIDTH))
        assert not key_range.overlaps_group(KeyGroup.from_wildcard("1111*", width=WIDTH))


class TestCanonicalCover:
    def test_aligned_range_is_a_single_group(self):
        group = KeyGroup.from_wildcard("0110*", width=WIDTH)
        cover = canonical_cover(KeyRange.from_prefix(group))
        assert cover == [group]

    def test_full_space_is_the_root(self):
        cover = canonical_cover(KeyRange(low=0, high=(1 << WIDTH) - 1, width=WIDTH))
        assert cover == [KeyGroup.root(WIDTH)]

    def test_cover_is_disjoint_and_exact(self):
        key_range = KeyRange(low=37, high=1234, width=WIDTH)
        cover = canonical_cover(key_range)
        assert sum(group.size for group in cover) == key_range.size
        for index, group in enumerate(cover):
            for other in cover[index + 1 :]:
                assert not group.overlaps(other)
        # Every covered key is inside the range.
        for group in cover:
            group_range = KeyRange.from_prefix(group)
            assert group_range.low >= key_range.low
            assert group_range.high <= key_range.high

    def test_cover_size_is_bounded(self):
        key_range = KeyRange(low=1, high=(1 << WIDTH) - 2, width=WIDTH)
        assert len(canonical_cover(key_range)) <= 2 * WIDTH

    def test_single_key_range(self):
        cover = canonical_cover(KeyRange(low=77, high=77, width=WIDTH))
        assert len(cover) == 1
        assert cover[0].depth == WIDTH


class TestFixedDepthReplicaCount:
    def test_counts_prefixes_intersecting_the_range(self):
        key_range = KeyRange(low=0, high=1023, width=WIDTH)
        assert fixed_depth_replica_count(key_range, depth=2) == 1
        assert fixed_depth_replica_count(key_range, depth=4) == 4
        assert fixed_depth_replica_count(key_range, depth=12) == 1024

    def test_unaligned_range(self):
        key_range = KeyRange(low=100, high=400, width=WIDTH)
        assert fixed_depth_replica_count(key_range, depth=WIDTH) == 301

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            fixed_depth_replica_count(KeyRange(low=0, high=1, width=WIDTH), depth=13)


class TestRangeQueryPlanner:
    @pytest.fixture
    def system(self) -> ClashSystem:
        config = ClashConfig(
            key_bits=WIDTH, hash_bits=16, base_bits=4, initial_depth=3, min_depth=2,
            server_capacity=100.0,
        )
        return ClashSystem.create(config, server_count=16, rng=RandomStream(44))

    def test_plan_covers_range_with_active_groups(self, system: ClashSystem):
        planner = RangeQueryPlanner(system)
        key_range = KeyRange(low=0, high=1023, width=WIDTH)
        plan = planner.plan(key_range)
        assert plan.replica_count >= 1
        covered = sum(group.size for group in plan.groups)
        assert covered >= key_range.size

    def test_plan_expands_when_groups_split(self, system: ClashSystem):
        key_range = KeyRange(low=0, high=511, width=WIDTH)
        planner = RangeQueryPlanner(system)
        before = planner.plan(key_range).replica_count
        # Split the group containing the start of the range a few times.
        for _ in range(3):
            key = IdentifierKey(value=5, width=WIDTH)
            group, owner = system.find_active_group(key)
            system.server(owner).set_group_rate(group, 3 * system.config.server_capacity)
            system.split_server(owner)
        after = planner.plan(key_range).replica_count
        assert after >= before

    def test_protocol_resolution_charges_messages(self, system: ClashSystem):
        planner = RangeQueryPlanner(system)
        plan = planner.plan(KeyRange(low=0, high=255, width=WIDTH), use_protocol=True)
        assert plan.messages >= 2

    def test_clash_needs_fewer_replicas_than_fine_grained_dht(self, system: ClashSystem):
        planner = RangeQueryPlanner(system)
        key_range = KeyRange(low=256, high=2047, width=WIDTH)
        comparison = planner.compare_with_fixed_depth(key_range, depth=10)
        assert comparison["reduction_factor"] > 1.0
        assert comparison["clash_replicas"] <= comparison["fixed_depth_replicas"]

    def test_width_mismatch_rejected(self, system: ClashSystem):
        planner = RangeQueryPlanner(system)
        with pytest.raises(ValueError):
            planner.plan(KeyRange(low=0, high=1, width=WIDTH + 1))
