"""Property-based tests: random split/merge histories preserve global invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream

CONFIG = ClashConfig(
    key_bits=10,
    hash_bits=16,
    base_bits=4,
    initial_depth=2,
    min_depth=1,
    server_capacity=100.0,
)


def build_system(seed: int) -> ClashSystem:
    return ClashSystem.create(CONFIG, server_count=12, rng=RandomStream(seed))


@st.composite
def action_sequences(draw):
    """A list of (action, value) pairs: split at a key, or cool down and merge."""
    length = draw(st.integers(min_value=1, max_value=25))
    actions = []
    for _ in range(length):
        kind = draw(st.sampled_from(["split", "cooldown"]))
        value = draw(st.integers(min_value=0, max_value=(1 << CONFIG.key_bits) - 1))
        actions.append((kind, value))
    return actions


class TestProtocolInvariants:
    @given(seed=st.integers(min_value=0, max_value=50), actions=action_sequences())
    @settings(max_examples=40, deadline=None)
    def test_random_histories_preserve_invariants(self, seed, actions):
        system = build_system(seed)
        for kind, value in actions:
            key = IdentifierKey(value=value, width=CONFIG.key_bits)
            group, owner = system.find_active_group(key)
            if kind == "split":
                system.server(owner).set_group_rate(group, 3 * CONFIG.server_capacity)
                system.split_server(owner)
            else:
                for server in system.servers().values():
                    server.reset_interval()
                system.run_load_check()
            system.verify_invariants()

    @given(seed=st.integers(min_value=0, max_value=50), actions=action_sequences())
    @settings(max_examples=25, deadline=None)
    def test_client_resolution_matches_registry_after_history(self, seed, actions):
        system = build_system(seed)
        probe_rng = RandomStream(seed + 1000)
        for kind, value in actions:
            key = IdentifierKey(value=value, width=CONFIG.key_bits)
            group, owner = system.find_active_group(key)
            if kind == "split":
                system.server(owner).set_group_rate(group, 3 * CONFIG.server_capacity)
                system.split_server(owner)
            else:
                for server in system.servers().values():
                    server.reset_interval()
                system.run_load_check()
        client = system.make_client("prop-client")
        for _ in range(10):
            key = IdentifierKey(value=probe_rng.randbits(CONFIG.key_bits), width=CONFIG.key_bits)
            result = client.find_group(key, use_cache=False)
            registry_group, registry_owner = system.find_active_group(key)
            assert result.group == registry_group
            assert result.server == registry_owner
            assert result.probes <= CONFIG.key_bits + 1

    @given(seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_full_cooldown_returns_to_root_partition(self, seed):
        system = build_system(seed)
        rng = RandomStream(seed + 7)
        for _ in range(15):
            key = IdentifierKey(value=rng.randbits(CONFIG.key_bits), width=CONFIG.key_bits)
            group, owner = system.find_active_group(key)
            system.server(owner).set_group_rate(group, 3 * CONFIG.server_capacity)
            system.split_server(owner)
        for _ in range(30):
            for server in system.servers().values():
                server.reset_interval()
            report = system.run_load_check()
            if report.merge_count == 0:
                break
        assert len(system.active_groups()) == 1 << CONFIG.initial_depth
        system.verify_invariants()
