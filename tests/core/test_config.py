"""Unit tests for repro.core.config."""

from __future__ import annotations

import pytest

from repro.core.config import ClashConfig


class TestDefaults:
    def test_paper_defaults_match_section_6_1(self):
        config = ClashConfig.paper_defaults()
        assert config.key_bits == 24
        assert config.hash_bits == 24
        assert config.base_bits == 8
        assert config.initial_depth == 6
        assert config.overload_threshold == pytest.approx(0.90)
        assert config.underload_threshold == pytest.approx(0.54)
        assert config.load_check_period == pytest.approx(300.0)

    def test_small_scale_is_valid_and_smaller(self):
        config = ClashConfig.small_scale()
        assert config.key_bits < 24
        assert config.initial_depth <= config.key_bits

    def test_effective_max_depth_defaults_to_key_bits(self):
        assert ClashConfig().effective_max_depth == 24
        assert ClashConfig(max_depth=16).effective_max_depth == 16

    def test_threshold_loads_in_absolute_units(self):
        config = ClashConfig(server_capacity=1000.0)
        assert config.overload_load == pytest.approx(900.0)
        assert config.underload_load == pytest.approx(540.0)


class TestValidation:
    def test_base_bits_must_fit_in_key(self):
        with pytest.raises(ValueError):
            ClashConfig(key_bits=8, base_bits=9)

    def test_depth_ordering_enforced(self):
        with pytest.raises(ValueError):
            ClashConfig(min_depth=7, initial_depth=6)
        with pytest.raises(ValueError):
            ClashConfig(initial_depth=25)

    def test_max_depth_bounds(self):
        with pytest.raises(ValueError):
            ClashConfig(max_depth=4)  # below initial_depth (6)
        with pytest.raises(ValueError):
            ClashConfig(max_depth=25)

    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ValueError):
            ClashConfig(overload_threshold=0.5, underload_threshold=0.6)

    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            ClashConfig(server_capacity=0.0)

    def test_positive_period_required(self):
        with pytest.raises(ValueError):
            ClashConfig(load_check_period=0.0)

    def test_negative_query_weight_rejected(self):
        with pytest.raises(ValueError):
            ClashConfig(query_load_weight=-1.0)

    def test_bool_rejected_for_int_fields(self):
        with pytest.raises(TypeError):
            ClashConfig(key_bits=True)


class TestOverrides:
    def test_with_overrides_returns_new_validated_config(self):
        config = ClashConfig()
        updated = config.with_overrides(server_capacity=100.0)
        assert updated.server_capacity == 100.0
        assert config.server_capacity != 100.0  # original unchanged

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            ClashConfig().with_overrides(underload_threshold=0.95)

    def test_config_is_frozen(self):
        config = ClashConfig()
        with pytest.raises(AttributeError):
            config.key_bits = 12  # type: ignore[misc]
