"""Unit tests for the splitting-tree and work-table renderers (Figures 1 and 2)."""

from __future__ import annotations

import pytest

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.core.server_table import SELF_PARENT, ServerTable, ServerTableEntry
from repro.core.tree_view import build_split_tree, render_server_table, render_split_tree
from repro.keys.keygroup import KeyGroup
from repro.util.rng import RandomStream


@pytest.fixture
def system() -> ClashSystem:
    config = ClashConfig(key_bits=7, hash_bits=16, base_bits=3, initial_depth=3, min_depth=2)
    return ClashSystem.create(config, server_count=12, rng=RandomStream(8))


def group(pattern: str, width: int = 7) -> KeyGroup:
    return KeyGroup.from_wildcard(pattern, width=width)


class TestBuildSplitTree:
    def test_unsplit_group_is_a_leaf(self, system: ClashSystem):
        root = group("011*")
        tree = build_split_tree(system, root)
        assert tree.is_leaf
        assert tree.owner == system.owner_of_group(root)

    def test_tree_follows_splits(self, system: ClashSystem):
        root = group("011*")
        owner = system.owner_of_group(root)
        system.server(owner).set_group_rate(root, 2 * system.config.server_capacity)
        system.split_server(owner)
        tree = build_split_tree(system, root)
        assert not tree.is_leaf
        assert len(tree.children) == 2
        assert [leaf.group.wildcard() for leaf in tree.leaves()] == ["0110*", "0111*"]
        assert all(leaf.owner is not None for leaf in tree.leaves())

    def test_leaves_cover_the_root(self, system: ClashSystem):
        root = group("011*")
        for _ in range(4):
            groups = [g for g in system.active_groups() if root.contains_group(g)]
            target = groups[0]
            owner = system.owner_of_group(target)
            system.server(owner).set_group_rate(target, 2 * system.config.server_capacity)
            system.split_server(owner)
        tree = build_split_tree(system, root)
        assert sum(leaf.group.size for leaf in tree.leaves()) == root.size
        minimum, maximum = tree.depth_span()
        assert minimum >= 3
        assert maximum > minimum

    def test_missing_cover_raises(self, system: ClashSystem):
        # A full-depth group outside any active group cannot happen in a
        # healthy system; simulate it by asking below an empty registry.
        empty = ClashSystem.create(
            ClashConfig(key_bits=7, hash_bits=16, base_bits=3, initial_depth=3, min_depth=2),
            server_count=4,
            rng=RandomStream(1),
            bootstrap=False,
        )
        with pytest.raises(LookupError):
            build_split_tree(empty, group("0110101"))


class TestRenderers:
    def test_render_split_tree_marks_leaves_and_interior(self, system: ClashSystem):
        root = group("011*")
        owner = system.owner_of_group(root)
        system.server(owner).set_group_rate(root, 2 * system.config.server_capacity)
        system.split_server(owner)
        text = render_split_tree(build_split_tree(system, root))
        assert "[split]" in text
        assert "->" in text
        assert "0110*" in text and "0111*" in text

    def test_render_server_table_matches_figure2_layout(self):
        table = ServerTable(key_bits=7)
        table.add_entry(
            ServerTableEntry(group=group("011*"), parent_id=None, right_child_id="s45", active=False)
        )
        table.add_entry(ServerTableEntry(group=group("0110*"), parent_id=SELF_PARENT))
        text = render_server_table(table, "s25")
        assert "Server work table for s25" in text
        assert "VirtualKeyGroup" in text
        assert "011*" in text
        assert "-1" in text  # root ParentID rendered as the paper's -1
        assert "Y" in text and "N" in text
