"""Online partition rebalancing: group migration via the join-handoff path."""

from __future__ import annotations

import pytest

from repro.app.query_store import Query
from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.dht.partition import PartitionMap, StaticPrefixPartition
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream

# small_scale: 12-bit keys, initial_depth=2 → four depth-2 prefix blocks of
# 1024 keys each; a two-shard static map cuts at 2048.
KEY_BITS = 12
BLOCK = 1 << (KEY_BITS - 2)


@pytest.fixture
def system() -> ClashSystem:
    return ClashSystem.create(
        ClashConfig.small_scale(), server_count=16, rng=RandomStream(55), shards=2
    )


def _two_shard_map(cut_blocks: int, version: int = 1) -> PartitionMap:
    """A two-shard map cutting after ``cut_blocks`` depth-2 blocks."""
    return PartitionMap(
        boundaries=(0, cut_blocks * BLOCK, 1 << KEY_BITS),
        key_bits=KEY_BITS,
        granularity_depth=2,
        version=version,
    )


class TestRebalancePartition:
    def test_moved_groups_migrate_to_their_new_shard(self, system):
        # Shrinking shard 0 to one block moves every group whose virtual
        # key lies in [1024, 2048) over to shard 1.
        before = {
            group
            for group in system.active_groups()
            if BLOCK <= group.virtual_key.value < 2 * BLOCK
        }
        assert before  # the depth-2 root in that block is always active
        migrated = system.rebalance_partition(_two_shard_map(1))
        assert set(migrated) == before
        router = system.router
        assert system.partition_version == 1
        for group, owner in system.active_groups().items():
            shard = router.shard_of_key(group.virtual_key)
            assert router.server_shard(owner) == shard
        system.verify_invariants()

    def test_former_owner_is_reported_and_cleared(self, system):
        owners_before = dict(system.active_groups())
        migrated = system.rebalance_partition(_two_shard_map(1))
        for group, former in migrated.items():
            assert owners_before[group] == former
            new_owner = system.owner_of_group(group)
            assert new_owner != former
            assert group not in system.server(former).table

    def test_queries_ride_along_with_their_group(self, system):
        key = IdentifierKey(value=BLOCK + 7, width=KEY_BITS)
        group, owner = system.find_active_group(key)
        system.server(owner).store_query(Query(key=key, client="c1", query_id=1))
        transfers_before = system.messages.snapshot().get("state_transfer", 0.0)
        migrated = system.rebalance_partition(_two_shard_map(1))
        assert group in migrated
        new_owner = system.owner_of_group(group)
        assert len(system.server(new_owner).query_store) == 1
        assert len(system.server(owner).query_store) == 0
        transfers = system.messages.snapshot().get("state_transfer", 0.0)
        assert transfers == transfers_before + 1

    def test_message_accounting_per_migrated_group(self, system):
        before = system.messages.snapshot()
        migrated = system.rebalance_partition(_two_shard_map(1))
        after = system.messages.snapshot()
        moved = len(migrated)
        assert moved > 0
        # Release request + reply (MERGE), transfer + ack (SPLIT), and no
        # stored queries ⇒ no state transfer.
        assert after.get("merge", 0.0) - before.get("merge", 0.0) == 2 * moved
        assert after.get("split", 0.0) - before.get("split", 0.0) == 2 * moved
        assert after.get("state_transfer", 0.0) == before.get("state_transfer", 0.0)

    def test_unchanged_boundaries_install_without_migration(self, system):
        migrated = system.rebalance_partition(_two_shard_map(2))
        assert migrated == {}
        assert system.partition_version == 1
        system.verify_invariants()

    def test_rebalance_survives_splits_and_further_rebalances(self, system):
        rng = RandomStream(3)
        for _ in range(12):
            groups = list(system.active_groups().items())
            group, owner = groups[rng.randint(0, len(groups) - 1)]
            system.server(owner).set_group_rate(
                group, 3 * system.config.server_capacity
            )
            system.split_server(owner)
        system.rebalance_partition(_two_shard_map(1, version=1))
        system.verify_invariants()
        # Swing the boundary the other way: groups move back and beyond.
        system.rebalance_partition(_two_shard_map(3, version=2))
        assert system.partition_version == 2
        system.verify_invariants()
        router = system.router
        for group, owner in system.active_groups().items():
            assert router.server_shard(owner) == router.shard_of_key(
                group.virtual_key
            )

    def test_single_ring_deployment_rejected(self, small_config):
        system = ClashSystem.create(
            small_config, server_count=8, rng=RandomStream(9)
        )
        with pytest.raises(ValueError):
            system.rebalance_partition(
                StaticPrefixPartition(key_bits=KEY_BITS, shard_count=1, version=1)
            )

    def test_boundaries_finer_than_initial_depth_rejected(self, system):
        # Depth-3 blocks could cut through a depth-2 root's key range.
        fine = PartitionMap(
            boundaries=(0, 1 << (KEY_BITS - 3), 1 << KEY_BITS),
            key_bits=KEY_BITS,
            granularity_depth=3,
            version=1,
        )
        with pytest.raises(ValueError, match="initial_depth"):
            system.rebalance_partition(fine)

    def test_stale_version_rejected(self, system):
        system.rebalance_partition(_two_shard_map(1, version=2))
        with pytest.raises(ValueError, match="version"):
            system.rebalance_partition(_two_shard_map(3, version=2))
        with pytest.raises(ValueError, match="version"):
            system.rebalance_partition(_two_shard_map(3, version=1))

    def test_shard_count_mismatch_rejected(self, system):
        wrong = StaticPrefixPartition(key_bits=KEY_BITS, shard_count=4, version=1)
        with pytest.raises(ValueError):
            system.rebalance_partition(wrong)

    def test_membership_still_works_after_a_rebalance(self, system):
        system.rebalance_partition(_two_shard_map(1))
        joined = system.handle_server_join("late-joiner")
        system.verify_invariants()
        joiner_shard = system.router.server_shard("late-joiner")
        for group in joined:
            assert system.router.shard_of_key(group.virtual_key) == joiner_shard
        victim = next(
            name
            for name in sorted(system.server_names())
            if system.can_remove_server(name)
        )
        system.handle_server_failure(victim)
        system.verify_invariants()
