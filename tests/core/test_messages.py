"""Unit tests for repro.core.messages."""

from __future__ import annotations

import pytest

from repro.core.messages import (
    AcceptKeyGroup,
    AcceptObject,
    AcceptObjectReply,
    LoadReport,
    MessageCategory,
    MessageStats,
    ReleaseKeyGroup,
    ReplyStatus,
)
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup


def _key() -> IdentifierKey:
    return IdentifierKey.from_bits("0110001")


def _group() -> KeyGroup:
    return KeyGroup.from_wildcard("0110*", width=7)


class TestReplies:
    def test_ok_reply_requires_depth(self):
        with pytest.raises(ValueError):
            AcceptObjectReply(status=ReplyStatus.OK, server="s1")
        reply = AcceptObjectReply(status=ReplyStatus.OK, server="s1", correct_depth=5)
        assert reply.correct_depth == 5

    def test_corrected_depth_reply_requires_depth(self):
        with pytest.raises(ValueError):
            AcceptObjectReply(status=ReplyStatus.OK_CORRECTED_DEPTH, server="s1")

    def test_incorrect_depth_reply_requires_prefix_match(self):
        with pytest.raises(ValueError):
            AcceptObjectReply(status=ReplyStatus.INCORRECT_DEPTH, server="s1")
        reply = AcceptObjectReply(
            status=ReplyStatus.INCORRECT_DEPTH, server="s1", longest_prefix_match=4
        )
        assert reply.longest_prefix_match == 4

    def test_request_and_transfer_messages_carry_payloads(self):
        request = AcceptObject(key=_key(), estimated_depth=5, sender="c0")
        assert request.key == _key()
        transfer = AcceptKeyGroup(group=_group(), parent_server="s0", migrated_queries=3)
        assert transfer.migrated_queries == 3
        release = ReleaseKeyGroup(group=_group(), child_server="s9")
        assert release.migrated_queries == 0
        report = LoadReport(group=_group(), child_server="s9", load=123.0)
        assert report.load == 123.0


class TestMessageStats:
    def test_counters_start_at_zero(self):
        stats = MessageStats()
        assert stats.total() == 0.0
        assert all(count == 0.0 for count in stats.counts.values())

    def test_add_and_total(self):
        stats = MessageStats()
        stats.add(MessageCategory.LOOKUP, 3)
        stats.add(MessageCategory.SPLIT)
        assert stats.total() == 4.0
        assert stats.total(include={MessageCategory.LOOKUP}) == 3.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MessageStats().add(MessageCategory.DATA, -1)

    def test_signalling_excludes_data(self):
        stats = MessageStats()
        stats.add(MessageCategory.DATA, 1000)
        stats.add(MessageCategory.LOOKUP, 5)
        stats.add(MessageCategory.STATE_TRANSFER, 2)
        assert stats.signalling_total() == 7.0

    def test_merge_accumulates(self):
        a = MessageStats()
        a.add(MessageCategory.SPLIT, 2)
        b = MessageStats()
        b.add(MessageCategory.SPLIT, 3)
        b.add(MessageCategory.MERGE, 1)
        a.merge(b)
        assert a.counts[MessageCategory.SPLIT] == 5
        assert a.counts[MessageCategory.MERGE] == 1

    def test_reset(self):
        stats = MessageStats()
        stats.add(MessageCategory.LOOKUP, 9)
        stats.reset()
        assert stats.total() == 0.0

    def test_snapshot_uses_category_values(self):
        stats = MessageStats()
        stats.add(MessageCategory.DHT_ROUTING, 4)
        snapshot = stats.snapshot()
        assert snapshot["dht_routing"] == 4.0
        assert set(snapshot) == {category.value for category in MessageCategory}
