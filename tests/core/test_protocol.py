"""Behavioural tests for the ClashSystem redirection layer."""

from __future__ import annotations

import pytest

from repro.app.query_store import Query
from repro.core.config import ClashConfig
from repro.core.messages import MessageCategory
from repro.core.protocol import ClashSystem
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup
from repro.util.rng import RandomStream


@pytest.fixture
def system() -> ClashSystem:
    return ClashSystem.create(
        ClashConfig.small_scale(), server_count=16, rng=RandomStream(31)
    )


def random_key(rng: RandomStream, config: ClashConfig) -> IdentifierKey:
    return IdentifierKey(value=rng.randbits(config.key_bits), width=config.key_bits)


class TestBootstrap:
    def test_bootstrap_partitions_key_space(self, system: ClashSystem):
        system.verify_invariants()
        groups = system.active_groups()
        assert len(groups) == 1 << system.config.initial_depth
        assert all(group.depth == system.config.initial_depth for group in groups)

    def test_root_entries_have_no_parent(self, system: ClashSystem):
        for group, owner in system.active_groups().items():
            assert system.server(owner).table.entry(group).is_root

    def test_groups_live_where_their_virtual_key_hashes(self, system: ClashSystem):
        for group, owner in system.active_groups().items():
            expected = system.ring.owner_of(
                system.ring.hash_function.hash_key(group.virtual_key)
            )
            assert owner == expected

    def test_double_bootstrap_rejected(self, system: ClashSystem):
        with pytest.raises(RuntimeError):
            system.bootstrap()

    def test_bootstrap_depth_validation(self):
        system = ClashSystem.create(
            ClashConfig.small_scale(), server_count=4, rng=RandomStream(1), bootstrap=False
        )
        with pytest.raises(ValueError):
            system.bootstrap(initial_depth=0)

    def test_create_validation(self):
        with pytest.raises(ValueError):
            ClashSystem(ClashConfig.small_scale(), server_names=[])
        with pytest.raises(ValueError):
            ClashSystem(ClashConfig.small_scale(), server_names=["a", "a"])
        with pytest.raises(ValueError):
            ClashSystem.create(ClashConfig.small_scale(), server_count=0)


class TestResolution:
    def test_registry_and_client_resolution_agree(self, system: ClashSystem):
        rng = RandomStream(5)
        client = system.make_client("c0")
        for _ in range(30):
            key = random_key(rng, system.config)
            registry_group, registry_owner = system.find_active_group(key)
            result = client.find_group(key, use_cache=False)
            assert result.group == registry_group
            assert result.server == registry_owner

    def test_route_accept_object_charges_messages(self, system: ClashSystem):
        key = IdentifierKey(value=0, width=system.config.key_bits)
        system.reset_messages()
        _reply, cost = system.route_accept_object(key, system.config.initial_depth, "c0")
        assert cost >= 2
        assert system.messages.counts[MessageCategory.LOOKUP] == 2

    def test_route_accept_object_depth_validation(self, system: ClashSystem):
        key = IdentifierKey(value=0, width=system.config.key_bits)
        with pytest.raises(ValueError):
            system.route_accept_object(key, system.config.key_bits + 1, "c0")

    def test_owner_of_group_unknown(self, system: ClashSystem):
        bogus = KeyGroup(prefix=0, depth=system.config.key_bits, width=system.config.key_bits)
        with pytest.raises(KeyError):
            system.owner_of_group(bogus)

    def test_counting_routing_hops_increases_cost(self):
        config = ClashConfig.small_scale().with_overrides(count_routing_hops=True)
        system = ClashSystem.create(config, server_count=16, rng=RandomStream(31))
        key = IdentifierKey(value=1234, width=config.key_bits)
        _reply, cost = system.route_accept_object(key, config.initial_depth, "c0")
        assert cost >= 2
        assert (
            system.messages.counts[MessageCategory.DHT_ROUTING]
            + system.messages.counts[MessageCategory.LOOKUP]
            == cost
        )


class TestSplitting:
    def test_split_server_transfers_right_child(self, system: ClashSystem):
        group, owner = system.find_active_group(
            IdentifierKey(value=0, width=system.config.key_bits)
        )
        system.server(owner).set_group_rate(group, 2 * system.config.server_capacity)
        outcome = system.split_server(owner)
        assert outcome is not None and outcome.shed
        assert outcome.left in system.active_groups()
        assert outcome.right in system.active_groups()
        assert system.owner_of_group(outcome.right) == outcome.child_server
        assert outcome.child_server != owner or outcome.self_collisions > 0
        system.verify_invariants()

    def test_split_moves_queries_of_right_child(self, system: ClashSystem):
        config = system.config
        group, owner = system.find_active_group(IdentifierKey(value=0, width=config.key_bits))
        server = system.server(owner)
        left, right = group.split()
        left_key = left.virtual_key
        right_key = right.virtual_key
        server.store_query(Query(query_id=1, key=left_key))
        server.store_query(Query(query_id=2, key=right_key))
        server.set_group_rate(group, 2 * config.server_capacity)
        outcome = system.split_server(owner)
        assert outcome.shed
        child = system.server(outcome.child_server)
        assert outcome.migrated_queries == 1
        assert 2 in child.query_store
        assert 1 in server.query_store
        assert system.messages.counts[MessageCategory.STATE_TRANSFER] == 1

    def test_split_server_with_nothing_to_split(self, system: ClashSystem):
        # A server that manages no group cannot split.
        idle = next(
            name for name in system.server_names() if not system.server(name).is_active()
        )
        assert system.split_server(idle) is None

    def test_repeated_splits_preserve_invariants(self, system: ClashSystem):
        rng = RandomStream(17)
        for _ in range(100):
            groups = list(system.active_groups().items())
            group, owner = groups[rng.randint(0, len(groups) - 1)]
            system.server(owner).set_group_rate(group, 2 * system.config.server_capacity)
            system.split_server(owner)
        system.verify_invariants()
        # Clients still resolve every key correctly afterwards.
        client = system.make_client("after-splits")
        for _ in range(20):
            key = random_key(rng, system.config)
            result = client.find_group(key, use_cache=False)
            assert result.group == system.find_active_group(key)[0]

    def test_split_respects_max_depth(self):
        config = ClashConfig.small_scale().with_overrides(max_depth=3, initial_depth=3)
        system = ClashSystem.create(config, server_count=8, rng=RandomStream(3))
        group, owner = system.find_active_group(IdentifierKey(value=0, width=config.key_bits))
        system.server(owner).set_group_rate(group, 10 * config.server_capacity)
        assert system.split_server(owner) is None
        system.verify_invariants()


class TestConsolidation:
    def _force_split(self, system: ClashSystem, value: int = 0):
        key = IdentifierKey(value=value, width=system.config.key_bits)
        group, owner = system.find_active_group(key)
        system.server(owner).set_group_rate(group, 2 * system.config.server_capacity)
        return system.split_server(owner)

    def test_cold_children_merge_back(self, system: ClashSystem):
        outcome = self._force_split(system)
        assert outcome.shed
        before = len(system.active_groups())
        for server in system.servers().values():
            server.reset_interval()
        report = system.run_load_check()
        assert report.merge_count >= 1
        assert len(system.active_groups()) < before
        assert outcome.group in system.active_groups()
        system.verify_invariants()

    def test_merge_returns_queries_to_parent(self, system: ClashSystem):
        config = system.config
        key = IdentifierKey(value=0, width=config.key_bits)
        group, owner = system.find_active_group(key)
        server = system.server(owner)
        right_key = group.split()[1].virtual_key
        server.store_query(Query(query_id=42, key=right_key))
        server.set_group_rate(group, 2 * config.server_capacity)
        outcome = system.split_server(owner)
        assert outcome.migrated_queries == 1
        for each in system.servers().values():
            each.reset_interval()
        system.run_load_check()
        assert 42 in system.server(outcome.parent_server).query_store

    def test_consolidation_does_not_collapse_roots(self, system: ClashSystem):
        for server in system.servers().values():
            server.reset_interval()
        for _ in range(5):
            system.run_load_check()
        groups = system.active_groups()
        assert all(group.depth >= system.config.initial_depth for group in groups)
        assert len(groups) == 1 << system.config.initial_depth
        system.verify_invariants()

    def test_hot_children_do_not_merge(self, system: ClashSystem):
        outcome = self._force_split(system)
        left_owner = system.server(outcome.parent_server)
        right_owner = system.server(outcome.child_server)
        left_owner.reset_interval()
        right_owner.reset_interval()
        left_owner.set_group_rate(outcome.left, 0.6 * system.config.server_capacity)
        right_owner.set_group_rate(outcome.right, 0.6 * system.config.server_capacity)
        report = system.run_load_check()
        assert outcome.left in system.active_groups()
        assert outcome.right in system.active_groups()


class TestLoadCheck:
    def test_overloaded_servers_shed_below_threshold(self, system: ClashSystem):
        config = system.config
        # Pile load onto every group of one server.
        owner = system.active_servers()[0]
        server = system.server(owner)
        for group in server.active_groups():
            server.set_group_rate(group, 1.2 * config.server_capacity)
        report = system.run_load_check(max_splits_per_server=10)
        assert report.split_count >= 1
        system.verify_invariants()

    def test_messages_accumulate_during_load_check(self, system: ClashSystem):
        self_splits = system.run_load_check()
        # With no load at all the only traffic is (possibly) load reports.
        assert system.messages.total() >= 0.0

    def test_describe_summarises_system(self, system: ClashSystem):
        snapshot = system.describe()
        assert snapshot["servers"] == 16
        assert snapshot["active_groups"] == 1 << system.config.initial_depth
