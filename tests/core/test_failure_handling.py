"""Tests for server-failure recovery in the redirection layer."""

from __future__ import annotations

import pytest

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream


@pytest.fixture
def system() -> ClashSystem:
    config = ClashConfig.small_scale()
    return ClashSystem.create(config, server_count=16, rng=RandomStream(55))


def _split_some_groups(system: ClashSystem, count: int, seed: int = 3) -> None:
    rng = RandomStream(seed)
    for _ in range(count):
        groups = list(system.active_groups().items())
        group, owner = groups[rng.randint(0, len(groups) - 1)]
        system.server(owner).set_group_rate(group, 3 * system.config.server_capacity)
        system.split_server(owner)


class TestServerFailure:
    def test_failure_of_unknown_server(self, system: ClashSystem):
        with pytest.raises(KeyError):
            system.handle_server_failure("ghost")

    def test_groups_are_reassigned_and_invariants_hold(self, system: ClashSystem):
        victim = system.active_servers()[0]
        orphaned = set(system.server(victim).active_groups())
        reassigned = system.handle_server_failure(victim)
        assert set(reassigned) == orphaned
        assert victim not in system.server_names()
        system.verify_invariants()
        for group, new_owner in reassigned.items():
            assert new_owner != victim
            assert system.owner_of_group(group) == new_owner

    def test_clients_resolve_every_key_after_failure(self, system: ClashSystem):
        _split_some_groups(system, 20)
        victim = system.active_servers()[0]
        system.handle_server_failure(victim)
        system.verify_invariants()
        client = system.make_client("post-failure")
        rng = RandomStream(9)
        for _ in range(25):
            key = IdentifierKey(
                value=rng.randbits(system.config.key_bits), width=system.config.key_bits
            )
            result = client.find_group(key, use_cache=False)
            registry_group, registry_owner = system.find_active_group(key)
            assert result.group == registry_group
            assert result.server == registry_owner

    def test_parent_bookkeeping_follows_the_new_child_owner(self, system: ClashSystem):
        # Force a split so that some surviving parent records a right child.
        key = IdentifierKey(value=0, width=system.config.key_bits)
        group, owner = system.find_active_group(key)
        system.server(owner).set_group_rate(group, 3 * system.config.server_capacity)
        outcome = system.split_server(owner)
        assert outcome is not None and outcome.shed
        child_server = outcome.child_server
        reassigned = system.handle_server_failure(child_server)
        assert outcome.right in reassigned
        new_owner = reassigned[outcome.right]
        parent_entry = system.server(outcome.parent_server).table.entry(outcome.group)
        assert parent_entry.right_child_id == new_owner
        # Consolidation still works through the re-assigned child.
        for server in system.servers().values():
            server.reset_interval()
        report = system.run_load_check()
        assert report.merge_count >= 0
        system.verify_invariants()

    def test_sequential_failures_keep_the_system_usable(self, system: ClashSystem):
        _split_some_groups(system, 15)
        for _round in range(4):
            victim = system.active_servers()[0]
            system.handle_server_failure(victim)
            system.verify_invariants()
        assert len(system.server_names()) == 12
        # Load checks still run without error on the reduced deployment.
        for server in system.servers().values():
            server.reset_interval()
        system.run_load_check()
        system.verify_invariants()

    def test_failure_counts_signalling_messages(self, system: ClashSystem):
        system.reset_messages()
        victim = system.active_servers()[0]
        orphaned = len(system.server(victim).active_groups())
        system.handle_server_failure(victim)
        assert system.messages.total() >= 2 * orphaned
