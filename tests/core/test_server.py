"""Unit tests for repro.core.server (ClashServer behaviour)."""

from __future__ import annotations

import pytest

from repro.app.query_store import Query
from repro.core.config import ClashConfig
from repro.core.messages import AcceptKeyGroup, AcceptObject, LoadReport, ReplyStatus
from repro.core.server import ClashServer
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup

CONFIG = ClashConfig(
    key_bits=8,
    hash_bits=16,
    base_bits=4,
    initial_depth=2,
    min_depth=1,
    server_capacity=100.0,
    query_load_weight=1.0,
)


def group(pattern: str) -> KeyGroup:
    return KeyGroup.from_wildcard(pattern, width=8)


def key(bits: str) -> IdentifierKey:
    return IdentifierKey.from_bits(bits)


@pytest.fixture
def server() -> ClashServer:
    instance = ClashServer(name="s0", config=CONFIG)
    instance.assign_root_group(group("01*"))
    return instance


class TestLoadBookkeeping:
    def test_initial_load_is_zero(self, server: ClashServer):
        assert server.total_load() == 0.0
        assert server.load_percent() == 0.0
        assert not server.is_overloaded()
        assert server.is_underloaded()

    def test_set_group_rate_contributes_linearly(self, server: ClashServer):
        server.set_group_rate(group("01*"), 50.0)
        assert server.total_load() == pytest.approx(50.0)
        assert server.load_percent() == pytest.approx(50.0)

    def test_query_count_contributes_logarithmically(self, server: ClashServer):
        server.store_query(Query(query_id=1, key=key("01000000")))
        server.store_query(Query(query_id=2, key=key("01100000")))
        loads = server.group_loads()
        assert loads[group("01*")].query_count == 2
        assert loads[group("01*")].load == pytest.approx(CONFIG.query_load_weight * 1.585, rel=1e-3)

    def test_query_count_override_takes_precedence(self, server: ClashServer):
        server.set_group_query_count(group("01*"), 7.0)
        assert server.group_loads()[group("01*")].query_count == 7

    def test_overload_and_underload_thresholds(self, server: ClashServer):
        server.set_group_rate(group("01*"), 95.0)
        assert server.is_overloaded()
        server.set_group_rate(group("01*"), 60.0)
        assert not server.is_overloaded()
        assert not server.is_underloaded()
        server.set_group_rate(group("01*"), 10.0)
        assert server.is_underloaded()

    def test_rate_for_unmanaged_group_rejected(self, server: ClashServer):
        with pytest.raises(KeyError):
            server.set_group_rate(group("10*"), 5.0)

    def test_negative_rate_rejected(self, server: ClashServer):
        with pytest.raises(ValueError):
            server.set_group_rate(group("01*"), -1.0)

    def test_add_group_rate_accumulates(self, server: ClashServer):
        server.add_group_rate(group("01*"), 5.0)
        server.add_group_rate(group("01*"), 7.0)
        assert server.total_load() == pytest.approx(12.0)

    def test_reset_interval_clears_rates(self, server: ClashServer):
        server.set_group_rate(group("01*"), 42.0)
        server.reset_interval()
        assert server.total_load() == 0.0


class TestAcceptObject:
    def test_case_a_correct_depth(self, server: ClashServer):
        reply = server.handle_accept_object(
            AcceptObject(key=key("01010101"), estimated_depth=2, sender="c")
        )
        assert reply.status is ReplyStatus.OK
        assert reply.correct_depth == 2

    def test_case_b_wrong_depth_same_server(self, server: ClashServer):
        reply = server.handle_accept_object(
            AcceptObject(key=key("01010101"), estimated_depth=6, sender="c")
        )
        assert reply.status is ReplyStatus.OK_CORRECTED_DEPTH
        assert reply.correct_depth == 2

    def test_case_c_not_responsible(self, server: ClashServer):
        reply = server.handle_accept_object(
            AcceptObject(key=key("11010101"), estimated_depth=2, sender="c")
        )
        assert reply.status is ReplyStatus.INCORRECT_DEPTH
        assert reply.longest_prefix_match == 0

    def test_store_query_requires_managed_group(self, server: ClashServer):
        with pytest.raises(ValueError):
            server.store_query(Query(query_id=9, key=key("11111111")))


class TestSplitting:
    def test_choose_group_to_split_uses_hottest(self, server: ClashServer):
        server.assign_root_group(group("10*"))
        server.set_group_rate(group("01*"), 20.0)
        server.set_group_rate(group("10*"), 80.0)
        assert server.choose_group_to_split() == group("10*")

    def test_choose_group_when_empty(self):
        empty = ClashServer(name="sx", config=CONFIG)
        assert empty.choose_group_to_split() is None

    def test_perform_split_moves_right_queries(self, server: ClashServer):
        left_key = key("01000001")
        right_key = key("01100001")
        server.store_query(Query(query_id=1, key=left_key))
        server.store_query(Query(query_id=2, key=right_key))
        server.set_group_rate(group("01*"), 60.0)
        left, right, migrated = server.perform_split(group("01*"), right_child_server="s9")
        assert left == group("010*")
        assert right == group("011*")
        assert [query.query_id for query in migrated] == [2]
        assert len(server.query_store) == 1
        assert server.splits_performed == 1
        # Half of the measured rate is attributed to the retained left child.
        assert server.group_loads()[left].data_rate == pytest.approx(30.0)
        server.table.check_invariants()

    def test_perform_local_split_keeps_both_children(self, server: ClashServer):
        server.set_group_rate(group("01*"), 60.0)
        left, right = server.perform_local_split(group("01*"))
        assert server.table.entry(left).active
        assert server.table.entry(right).active
        assert server.table.entry(right).parent_id == "self"
        assert server.group_loads()[left].data_rate == pytest.approx(30.0)
        assert server.group_loads()[right].data_rate == pytest.approx(30.0)
        server.table.check_invariants()

    def test_accept_keygroup_is_mandatory_and_adds_entry(self):
        receiver = ClashServer(name="s9", config=CONFIG)
        queries = [Query(query_id=5, key=key("01100001"))]
        receiver.accept_keygroup(
            AcceptKeyGroup(group=group("011*"), parent_server="s0", migrated_queries=1),
            queries=queries,
        )
        assert group("011*") in receiver.table
        assert receiver.table.entry(group("011*")).parent_id == "s0"
        assert len(receiver.query_store) == 1


class TestConsolidation:
    def _split_setup(self) -> tuple[ClashServer, ClashServer]:
        parent = ClashServer(name="s0", config=CONFIG)
        parent.assign_root_group(group("01*"))
        child = ClashServer(name="s9", config=CONFIG)
        _left, right, migrated = parent.perform_split(group("01*"), right_child_server="s9")
        child.accept_keygroup(
            AcceptKeyGroup(group=right, parent_server="s0", migrated_queries=len(migrated)),
            queries=migrated,
        )
        return parent, child

    def test_load_reports_generated_for_remote_parents(self):
        parent, child = self._split_setup()
        child.set_group_rate(group("011*"), 5.0)
        reports = child.build_load_reports()
        assert len(reports) == 1
        assert reports[0].group == group("011*")
        assert reports[0].child_server == "s9"
        # The parent's own left child does not generate a report.
        assert parent.build_load_reports() == []

    def test_consolidation_candidates_require_cold_children(self):
        parent, child = self._split_setup()
        parent.set_group_rate(group("010*"), 5.0)
        parent.receive_load_report(
            LoadReport(group=group("011*"), child_server="s9", load=5.0)
        )
        assert parent.consolidation_candidates() == [group("01*")]
        # Hot children block consolidation.
        parent.receive_load_report(
            LoadReport(group=group("011*"), child_server="s9", load=80.0)
        )
        assert parent.consolidation_candidates() == []

    def test_consolidation_blocked_when_it_would_overload_parent(self):
        parent, child = self._split_setup()
        parent.assign_root_group(group("10*"))
        parent.set_group_rate(group("10*"), 80.0)
        parent.set_group_rate(group("010*"), 5.0)
        parent.receive_load_report(
            LoadReport(group=group("011*"), child_server="s9", load=20.0)
        )
        assert parent.consolidation_candidates() == []

    def test_release_and_accept_back_round_trip(self):
        parent, child = self._split_setup()
        child.store_query(Query(query_id=77, key=key("01100001")))
        returned = child.release_group(group("011*"))
        assert [query.query_id for query in returned] == [77]
        assert group("011*") not in child.table
        parent.accept_keygroup_back(group("01*"), queries=returned)
        assert parent.table.entry(group("01*")).active
        assert len(parent.query_store) == 1
        assert parent.merges_performed == 1
        parent.table.check_invariants()

    def test_release_of_split_group_rejected(self):
        parent, child = self._split_setup()
        child.perform_local_split(group("011*"))
        with pytest.raises(ValueError):
            child.release_group(group("011*"))

    def test_build_release_request(self):
        parent, _child = self._split_setup()
        request = parent.build_release_request(group("01*"))
        assert request.group == group("011*")
        assert request.child_server == "s9"

    def test_choose_group_to_consolidate_uses_coldest(self):
        server = ClashServer(name="s0", config=CONFIG)
        server.assign_root_group(group("010*"))
        server.assign_root_group(group("100*"))
        server.set_group_rate(group("010*"), 1.0)
        server.set_group_rate(group("100*"), 2.0)
        assert server.choose_group_to_consolidate() == group("010*")


class TestDescribe:
    def test_describe_contains_summary_fields(self, server: ClashServer):
        snapshot = server.describe()
        assert snapshot["name"] == "s0"
        assert snapshot["active_groups"] == ["01*"]
        assert snapshot["splits_performed"] == 0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ClashServer(name="", config=CONFIG)
