"""The verify-invariants knob and the independent delivery/churn seed axes."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.runner import ExperimentScale
from repro.sim.simulator import FlowSimulator, SimulationParams


def _scale(**overrides) -> ExperimentScale:
    return dataclasses.replace(
        ExperimentScale.scaled(factor=100, phase_periods=1), **overrides
    )


def _simulator(scale: ExperimentScale, **param_overrides) -> FlowSimulator:
    return FlowSimulator(
        scale.config(), scale.params(**param_overrides), scale.scenario()
    )


class TestParamsKnob:
    def test_default_off(self):
        assert SimulationParams.scaled(factor=100).verify_invariants is False

    def test_validation(self):
        with pytest.raises(TypeError):
            SimulationParams.scaled(factor=100, verify_invariants=1)
        with pytest.raises(TypeError):
            SimulationParams.scaled(factor=100, delivery_seed=1.5)
        with pytest.raises(TypeError):
            SimulationParams.scaled(factor=100, churn_seed="7")

    def test_knob_arms_membership_verification(self):
        simulator = _simulator(_scale(verify_invariants=True))
        try:
            assert simulator.verify_after_membership is True
        finally:
            simulator.transport.close()

    def test_knob_defaults_membership_verification_off(self):
        simulator = _simulator(_scale())
        try:
            assert simulator.verify_after_membership is False
        finally:
            simulator.transport.close()


class TestExperimentScaleThreading:
    def test_scale_field_reaches_params(self):
        assert _scale(verify_invariants=True).params().verify_invariants is True
        assert _scale().params().verify_invariants is False

    def test_verified_run_completes(self):
        # A healthy miniature run with the knob on: the invariant pass at
        # every period boundary must hold.
        simulator = _simulator(_scale(verify_invariants=True))
        try:
            result = simulator.run()
        finally:
            simulator.transport.close()
        assert result.metrics.samples


class TestIndependentSeedAxes:
    def test_delivery_seed_requires_no_master_seed_change(self):
        base = SimulationParams.scaled(factor=100, seed=7)
        varied = SimulationParams.scaled(factor=100, seed=7, delivery_seed=11)
        assert base.seed == varied.seed
        assert varied.delivery_seed == 11

    def test_churn_seed_changes_arrival_stream_only(self):
        draws = {}
        for label, churn_seed in (("a", 5), ("b", 6)):
            simulator = _simulator(
                _scale(join_rate=0.01), churn_seed=churn_seed
            )
            try:
                draws[label] = [simulator._join_rng.uniform(0.0, 1.0) for _ in range(4)]
            finally:
                simulator.transport.close()
        assert draws["a"] != draws["b"]

    def test_same_churn_seed_is_reproducible(self):
        draws = []
        for _ in range(2):
            simulator = _simulator(_scale(join_rate=0.01), churn_seed=5)
            try:
                draws.append([simulator._join_rng.uniform(0.0, 1.0) for _ in range(4)])
            finally:
                simulator.transport.close()
        assert draws[0] == draws[1]
