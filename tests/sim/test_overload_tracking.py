"""Overload-set tracking: dirty-server load checks must equal the full scan.

``ClashSystem.run_load_check`` probes a server's overload/underload status
only when the server notified the system of a load change since the last
probe (``ClashServer.set_load_listener`` → ``_mark_server_load_dirty``);
every other server's cached verdicts are reused.  These tests pin the two
properties that make that safe:

* **Equivalence** — a full simulation with ``force_full_load_scan`` (probe
  everyone, the pre-tracking behaviour) emits a ``PeriodSample`` stream
  bit-identical to the tracked run, churn included.
* **Steady-state sparsity** — with no load changes between two checks, the
  second check performs zero fresh probes.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.experiments.runner import ExperimentScale
from repro.sim.simulator import FlowSimulator
from repro.util.rng import RandomStream


def _run(scale: ExperimentScale, scenario, full_scan: bool):
    simulator = FlowSimulator(
        config=scale.config(), params=scale.params(), scenario=scenario
    )
    simulator.system.force_full_load_scan = full_scan
    try:
        result = simulator.run()
        simulator.system.verify_invariants()
    finally:
        simulator.transport.close()
    return result


class TestTrackedEqualsFullScan:
    def test_reference_run_bit_identical(self):
        scale = ExperimentScale.scaled(factor=50, phase_periods=2)
        scenario = scale.scenario()
        tracked = _run(scale, scenario, full_scan=False)
        full = _run(scale, scenario, full_scan=True)
        differences = tracked.diff(full)
        assert not differences, "; ".join(differences)

    def test_churn_run_bit_identical(self):
        scale = dataclasses.replace(
            ExperimentScale.scaled(factor=50, phase_periods=2),
            join_rate=0.005,
            fail_rate=0.005,
        )
        scenario = scale.scenario()
        tracked = _run(scale, scenario, full_scan=False)
        full = _run(scale, scenario, full_scan=True)
        differences = tracked.diff(full)
        assert not differences, "; ".join(differences)

    def test_sharded_run_bit_identical(self):
        scale = ExperimentScale.scaled(factor=50, phase_periods=2)
        scale = dataclasses.replace(scale, shards=4)
        scenario = scale.scenario()
        tracked = _run(scale, scenario, full_scan=False)
        full = _run(scale, scenario, full_scan=True)
        differences = tracked.diff(full)
        assert not differences, "; ".join(differences)


class TestSteadyStateProbes:
    def _quiet_system(self) -> ClashSystem:
        config = ClashConfig.small_scale()
        return ClashSystem.create(config, server_count=16, rng=RandomStream(42))

    def test_unchanged_servers_are_not_reprobed(self):
        system = self._quiet_system()
        system.run_load_check()
        first_pass = system.load_probes
        assert first_pass > 0  # every server starts dirty
        system.run_load_check()
        assert system.load_probes == first_pass, (
            "a steady-state load check re-probed servers whose load never changed"
        )

    def test_a_rate_change_dirties_exactly_the_touched_server(self):
        system = self._quiet_system()
        system.run_load_check()
        baseline = system.load_probes
        group, owner = next(iter(sorted(system.active_groups().items())))
        system.server(owner).set_group_rate(group, 1.0)
        system.run_load_check()
        assert system.load_probes == baseline + 1, (
            "changing one server's measured rate must re-probe that server only"
        )

    def test_full_scan_mode_probes_everyone(self):
        system = self._quiet_system()
        system.force_full_load_scan = True
        system.run_load_check()
        first = system.load_probes
        system.run_load_check()
        assert system.load_probes == 2 * first

    def test_membership_events_dirty_the_touched_servers(self):
        system = self._quiet_system()
        system.run_load_check()
        baseline = system.load_probes
        handed_off = system.handle_server_join("late-joiner")
        system.run_load_check()
        # The joiner plus every former owner it drained must be re-probed;
        # untouched servers must not be.
        touched = {"late-joiner"} | set(handed_off.values())
        assert system.load_probes == baseline + len(touched)
