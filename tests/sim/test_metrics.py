"""Unit tests for the metrics recorder."""

from __future__ import annotations

import pytest

from repro.sim.metrics import MetricsRecorder, PeriodSample


def sample(time: float, workload: str = "A", **overrides) -> PeriodSample:
    values = dict(
        time=time,
        workload=workload,
        max_load_percent=80.0,
        avg_load_percent=50.0,
        active_servers=10,
        min_depth=6.0,
        avg_depth=6.5,
        max_depth=8.0,
        splits=1,
        merges=0,
        messages_per_server_per_second=2.0,
    )
    values.update(overrides)
    return PeriodSample(**values)


class TestRecorder:
    def test_record_and_series(self):
        recorder = MetricsRecorder()
        recorder.record(sample(300.0, max_load_percent=70.0))
        recorder.record(sample(600.0, max_load_percent=90.0))
        series = recorder.series("max_load_percent")
        assert series.times == [300.0, 600.0]
        assert series.values == [70.0, 90.0]
        assert len(recorder) == 2

    def test_rejects_time_reversal(self):
        recorder = MetricsRecorder()
        recorder.record(sample(300.0))
        with pytest.raises(ValueError):
            recorder.record(sample(200.0))

    def test_depth_series_has_three_curves(self):
        recorder = MetricsRecorder()
        recorder.record(sample(300.0))
        curves = recorder.depth_series()
        assert set(curves) == {"min", "avg", "max"}
        assert curves["max"].values == [8.0]

    def test_overall_peak_load(self):
        recorder = MetricsRecorder()
        recorder.record(sample(300.0, max_load_percent=80.0))
        recorder.record(sample(600.0, max_load_percent=140.0))
        recorder.record(sample(900.0, max_load_percent=60.0))
        assert recorder.overall_peak_load() == 140.0

    def test_overall_peak_load_empty(self):
        with pytest.raises(ValueError):
            MetricsRecorder().overall_peak_load()


class TestPhaseSummaries:
    def build(self) -> MetricsRecorder:
        recorder = MetricsRecorder()
        recorder.record(sample(300.0, workload="A", max_load_percent=50.0, splits=2))
        recorder.record(sample(600.0, workload="A", max_load_percent=70.0, splits=1))
        recorder.record(sample(900.0, workload="B", max_load_percent=120.0, merges=3,
                               messages_per_server_per_second=8.0))
        return recorder

    def test_phase_grouping(self):
        summaries = self.build().phase_summaries()
        assert [summary.workload for summary in summaries] == ["A", "B"]
        a_summary = summaries[0]
        assert a_summary.periods == 2
        assert a_summary.peak_max_load_percent == 70.0
        assert a_summary.mean_max_load_percent == pytest.approx(60.0)
        assert a_summary.total_splits == 3
        b_summary = summaries[1]
        assert b_summary.total_merges == 3
        assert b_summary.messages_per_server_per_second == pytest.approx(8.0)

    def test_steady_state_skips_leading_periods(self):
        recorder = self.build()
        steady = recorder.steady_state_samples(skip=1)
        # Phase A loses its first period, phase B (only one period) disappears.
        assert len(steady) == 1
        assert steady[0].workload == "A"
        assert recorder.steady_state_samples(skip=0) == recorder.samples

    def test_steady_state_negative_skip(self):
        with pytest.raises(ValueError):
            self.build().steady_state_samples(skip=-1)

    def test_depth_spread(self):
        recorder = MetricsRecorder()
        recorder.record(sample(300.0, min_depth=6.0, max_depth=10.0))
        summary = recorder.phase_summaries()[0]
        assert summary.depth_spread == pytest.approx(4.0)
