"""Churn equivalence suite: Poisson join/fail scenarios across transports.

The Poisson churn schedule is drawn from dedicated seeded streams before any
event executes, so the membership event sequence is a function of the seed
and the scenario alone.  The clock-less transports (inline, batching) drain
the events at identical points, so their runs must agree on *every* recorded
metric; the event transport executes the same events on the simulation
engine and must complete with the same total membership activity.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.experiments.runner import ExperimentScale
from repro.net.envelope import Envelope
from repro.net.event import EventTransport
from repro.sim.simulator import FlowSimulator
from repro.util.rng import RandomStream

CHURN_SCALE = ExperimentScale.scaled(factor=100, phase_periods=2)


def _run(transport: str, join_rate: float = 0.01, fail_rate: float = 0.01):
    scale = dataclasses.replace(
        CHURN_SCALE, transport=transport, join_rate=join_rate, fail_rate=fail_rate
    )
    simulator = FlowSimulator(
        config=scale.config(), params=scale.params(), scenario=scale.scenario()
    )
    simulator.verify_after_membership = True
    result = simulator.run()
    simulator.system.verify_invariants()
    return simulator, result


class TestInlineBatchingEquivalence:
    def test_identical_samples_under_poisson_churn(self):
        """A join+fail Poisson scenario produces identical message accounting
        (and every other recorded metric) on inline vs. batching."""
        _, inline_result = _run("inline")
        _, batching_result = _run("batching")
        inline_samples = inline_result.metrics.samples
        batching_samples = batching_result.metrics.samples
        assert len(inline_samples) == len(batching_samples)
        assert inline_samples == batching_samples
        assert inline_result.total_splits == batching_result.total_splits
        assert inline_result.total_merges == batching_result.total_merges
        assert (
            inline_result.final_active_groups == batching_result.final_active_groups
        )

    def test_churn_actually_happened(self):
        simulator, result = _run("inline")
        joins = sum(s.server_joins for s in result.metrics.samples)
        failures = sum(s.server_failures for s in result.metrics.samples)
        moved = sum(s.groups_reassigned for s in result.metrics.samples)
        assert joins > 0
        assert failures > 0
        assert moved > 0
        # The deployment's membership really changed.
        names = simulator.system.server_names()
        assert any(name.startswith("j") for name in names)


class TestEventTransportChurn:
    def test_poisson_churn_completes_on_the_event_kernel(self):
        simulator, result = _run("event")
        applied_failures = sum(s.server_failures for s in result.metrics.samples)
        sampled_joins = sum(s.server_joins for s in result.metrics.samples)
        assert sampled_joins > 0
        assert applied_failures > 0
        # Every generated join arrival executed within the run and was
        # credited to some period's sample (none lost past the last sample).
        assert sampled_joins == simulator._join_counter
        simulator.system.verify_invariants()

    def test_event_and_inline_apply_the_same_event_schedule(self):
        """Arrival draws come from dedicated streams: the set of joiner names
        created is identical across transports."""
        inline_sim, _ = _run("inline")
        event_sim, _ = _run("event")
        assert inline_sim._join_counter == event_sim._join_counter


class TestFailedDestinationRegression:
    def test_post_to_a_server_that_fails_in_flight_is_dropped(self):
        """Regression: a queued one-way envelope whose destination fails
        before delivery used to escape the engine callback as a
        TransportError and abort the run; it must be dropped and counted."""
        config = ClashConfig.small_scale()
        transport = EventTransport()
        system = ClashSystem(
            config,
            [f"s{index}" for index in range(8)],
            rng=RandomStream(5),
            transport=transport,
        )
        system.bootstrap()
        victim = system.active_servers()[0]
        survivor = next(
            name for name in system.server_names() if name != victim
        )
        # One-way envelope scheduled at the victim, which fails mid-flight.
        transport.post(
            Envelope(source=survivor, destination=victim, payload="late-report")
        )
        system.handle_server_failure(victim)
        flushed = transport.flush()  # must not raise
        assert flushed == 1  # the envelope left the calendar...
        assert transport.dropped_messages == 1  # ...by being dropped
        system.verify_invariants()


class TestChurnOffByDefault:
    def test_default_scenario_records_no_churn(self):
        scale = ExperimentScale.scaled(factor=100, phase_periods=2)
        result = FlowSimulator(
            config=scale.config(), params=scale.params(), scenario=scale.scenario()
        ).run()
        for sample in result.metrics.samples:
            assert sample.server_joins == 0
            assert sample.server_failures == 0
            assert sample.groups_reassigned == 0
            assert sample.dropped_messages == 0
