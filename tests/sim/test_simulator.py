"""Behavioural tests for the flow-level simulator (scaled-down configurations)."""

from __future__ import annotations

import pytest

from repro.core.config import ClashConfig
from repro.sim.simulator import FlowSimulator, SimulationParams
from repro.workload.scenario import PhasedScenario, ScenarioPhase, paper_scenario
from repro.workload.distributions import workload_a, workload_c


def tiny_config() -> ClashConfig:
    return ClashConfig(
        server_capacity=40.0,        # 100k/64 groups scaled to 1000 sources -> ~39% for A
        load_check_period=300.0,
        query_load_weight=0.1,
    )


def tiny_params(**overrides) -> SimulationParams:
    # 150 servers x 40 capacity = 6000 aggregate capacity against a peak
    # offered load of 2000 (workloads B/C), mirroring the paper's generous
    # spare capacity; per-root-group load matches the paper-scale fractions.
    values = dict(
        server_count=150,
        source_count=1000,
        query_client_count=0,
        lookup_sample_size=10,
        seed=7,
    )
    values.update(overrides)
    return SimulationParams(**values)


def short_scenario(periods: int = 3) -> PhasedScenario:
    return paper_scenario(phase_duration=300.0 * periods)


class TestSimulationParams:
    def test_paper_scale_matches_section_6_1(self):
        params = SimulationParams.paper_scale(query_clients=True)
        assert params.server_count == 1000
        assert params.source_count == 100_000
        assert params.query_client_count == 50_000
        assert params.mean_stream_length == 1000.0
        assert params.mean_query_lifetime == 1800.0

    def test_scaled_reduces_population(self):
        params = SimulationParams.scaled(factor=10)
        assert params.source_count == 10_000
        assert params.query_client_count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationParams(server_count=0)
        with pytest.raises(ValueError):
            SimulationParams(query_client_count=-1)
        with pytest.raises(ValueError):
            SimulationParams(mean_stream_length=0.0)


class TestClashRuns:
    def test_run_produces_one_sample_per_period(self):
        simulator = FlowSimulator(tiny_config(), tiny_params(), short_scenario(periods=2))
        result = simulator.run()
        assert len(result.metrics) == 6  # 3 phases x 2 periods
        assert result.label == "CLASH"
        simulator.system.verify_invariants()

    def test_phases_are_labelled_in_order(self):
        result = FlowSimulator(tiny_config(), tiny_params(), short_scenario(2)).run()
        assert [summary.workload for summary in result.phase_summaries()] == ["A", "B", "C"]

    def test_skewed_phase_triggers_splits(self):
        result = FlowSimulator(tiny_config(), tiny_params(), short_scenario(2)).run()
        summaries = {summary.workload: summary for summary in result.phase_summaries()}
        assert summaries["C"].total_splits > 0
        # Depth grows when the workload becomes skewed and heavier.
        assert summaries["C"].mean_depth > summaries["A"].mean_depth

    def test_clash_keeps_max_load_bounded_under_skew(self):
        result = FlowSimulator(tiny_config(), tiny_params(), short_scenario(3)).run()
        summaries = {summary.workload: summary for summary in result.phase_summaries()}
        # After reacting, no server should sit far above the overload threshold.
        assert summaries["C"].mean_max_load_percent < 150.0

    def test_message_rates_are_positive_and_finite(self):
        result = FlowSimulator(tiny_config(), tiny_params(), short_scenario(2)).run()
        for summary in result.phase_summaries():
            assert summary.messages_per_server_per_second > 0.0
            assert summary.messages_per_server_per_second < 1000.0

    def test_shorter_streams_cost_more_signalling(self):
        long_result = FlowSimulator(
            tiny_config(), tiny_params(mean_stream_length=1000.0), short_scenario(2)
        ).run()
        short_result = FlowSimulator(
            tiny_config(), tiny_params(mean_stream_length=50.0), short_scenario(2)
        ).run()
        long_rate = sum(s.messages_per_server_per_second for s in long_result.phase_summaries())
        short_rate = sum(s.messages_per_server_per_second for s in short_result.phase_summaries())
        assert short_rate > long_rate

    def test_query_clients_add_state_transfer(self):
        with_queries = FlowSimulator(
            tiny_config(), tiny_params(query_client_count=500), short_scenario(2)
        ).run()
        breakdowns = [sample.message_breakdown for sample in with_queries.metrics.samples]
        assert any(breakdown.get("state_transfer", 0.0) > 0.0 for breakdown in breakdowns)

    def test_active_servers_grow_with_load(self):
        result = FlowSimulator(tiny_config(), tiny_params(), short_scenario(3)).run()
        summaries = {summary.workload: summary for summary in result.phase_summaries()}
        assert summaries["B"].mean_active_servers >= summaries["A"].mean_active_servers

    def test_cooldown_consolidates_after_heavy_phase(self):
        scenario = PhasedScenario(
            [
                ScenarioPhase(spec=workload_c(base_bits=8), duration=1200.0),
                ScenarioPhase(spec=workload_a(base_bits=8), duration=2400.0),
            ]
        )
        result = FlowSimulator(tiny_config(), tiny_params(), scenario).run()
        samples = result.metrics.samples
        heavy_groups = samples[3].avg_depth
        final_groups = samples[-1].avg_depth
        assert final_groups <= heavy_groups
        assert result.total_merges > 0


class TestTransportLifecycle:
    def test_run_closes_the_transport(self):
        simulator = FlowSimulator(tiny_config(), tiny_params(), short_scenario(periods=1))
        assert not simulator.transport.closed
        simulator.run()
        assert simulator.transport.closed

    def test_run_closes_the_transport_when_the_scenario_raises(self, monkeypatch):
        simulator = FlowSimulator(tiny_config(), tiny_params(), short_scenario(periods=1))

        def explode(*args, **kwargs):
            raise RuntimeError("mid-run failure")

        monkeypatch.setattr(simulator, "_assign_loads", explode)
        with pytest.raises(RuntimeError, match="mid-run failure"):
            simulator.run()
        assert simulator.transport.closed


class TestFixedDepthRuns:
    def test_fixed_depth_never_splits(self):
        simulator = FlowSimulator(
            tiny_config(), tiny_params(), short_scenario(2), fixed_depth=6
        )
        result = simulator.run()
        assert result.label == "DHT(6)"
        assert result.total_splits == 0
        assert result.total_merges == 0
        assert all(sample.min_depth == 6.0 for sample in result.metrics.samples)

    def test_fixed_depth_suffers_under_skew(self):
        clash = FlowSimulator(tiny_config(), tiny_params(), short_scenario(2)).run()
        fixed = FlowSimulator(
            tiny_config(), tiny_params(), short_scenario(2), fixed_depth=6
        ).run()
        clash_c = [s for s in clash.phase_summaries() if s.workload == "C"][0]
        fixed_c = [s for s in fixed.phase_summaries() if s.workload == "C"][0]
        assert fixed_c.peak_max_load_percent > clash_c.peak_max_load_percent

    def test_fixed_depth_validation(self):
        with pytest.raises(ValueError):
            FlowSimulator(tiny_config(), tiny_params(), short_scenario(1), fixed_depth=0)
        with pytest.raises(ValueError):
            FlowSimulator(tiny_config(), tiny_params(), short_scenario(1), fixed_depth=25)
