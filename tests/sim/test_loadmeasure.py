"""Unit tests for the analytic load measure."""

from __future__ import annotations

import pytest

from repro.keys.keygroup import KeyGroup
from repro.sim.loadmeasure import LoadMeasure
from repro.workload.distributions import WorkloadSpec, workload_c


SPEC = WorkloadSpec(name="X", base_bits=2, weights=(1.0, 2.0, 3.0, 4.0), source_rate=1.0)


class TestLoadMeasure:
    def test_group_rate_proportional_to_prefix_probability(self):
        measure = LoadMeasure(spec=SPEC, total_rate=1000.0)
        group = KeyGroup.from_wildcard("1*", width=8)
        assert measure.group_rate(group) == pytest.approx(700.0)

    def test_group_queries_proportional(self):
        measure = LoadMeasure(spec=SPEC, total_rate=0.0, total_queries=100.0)
        group = KeyGroup.from_wildcard("0*", width=8)
        assert measure.group_queries(group) == pytest.approx(30.0)

    def test_rates_partition_total(self):
        measure = LoadMeasure(spec=workload_c(base_bits=4), total_rate=500.0)
        for depth in [2, 4, 6]:
            groups = [KeyGroup(prefix=p, depth=depth, width=12) for p in range(1 << depth)]
            assert sum(measure.group_rate(group) for group in groups) == pytest.approx(500.0)

    def test_splitting_a_group_conserves_rate(self):
        measure = LoadMeasure(spec=workload_c(base_bits=4), total_rate=500.0)
        parent = KeyGroup.from_wildcard("10*", width=12)
        left, right = parent.split()
        assert measure.group_rate(left) + measure.group_rate(right) == pytest.approx(
            measure.group_rate(parent)
        )

    def test_rate_by_prefix(self):
        measure = LoadMeasure(spec=SPEC, total_rate=100.0)
        rates = measure.rate_by_prefix(2)
        assert rates == pytest.approx([10.0, 20.0, 30.0, 40.0])
        with pytest.raises(ValueError):
            measure.rate_by_prefix(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadMeasure(spec=SPEC, total_rate=-1.0)
        with pytest.raises(ValueError):
            LoadMeasure(spec=SPEC, total_rate=1.0, total_queries=-1.0)

    def test_accessors(self):
        measure = LoadMeasure(spec=SPEC, total_rate=10.0, total_queries=5.0)
        assert measure.spec is SPEC
        assert measure.total_rate == 10.0
        assert measure.total_queries == 5.0
        assert measure.group_probability(KeyGroup.root(8)) == pytest.approx(1.0)
