"""Unit tests for the analytic load measure."""

from __future__ import annotations

import pytest

from repro.keys.keygroup import KeyGroup
from repro.sim.loadmeasure import LoadMeasure, shared_base_probabilities
from repro.workload.distributions import (
    WorkloadSpec,
    workload_a,
    workload_b,
    workload_c,
)


SPEC = WorkloadSpec(name="X", base_bits=2, weights=(1.0, 2.0, 3.0, 4.0), source_rate=1.0)


class TestLoadMeasure:
    def test_group_rate_proportional_to_prefix_probability(self):
        measure = LoadMeasure(spec=SPEC, total_rate=1000.0)
        group = KeyGroup.from_wildcard("1*", width=8)
        assert measure.group_rate(group) == pytest.approx(700.0)

    def test_group_queries_proportional(self):
        measure = LoadMeasure(spec=SPEC, total_rate=0.0, total_queries=100.0)
        group = KeyGroup.from_wildcard("0*", width=8)
        assert measure.group_queries(group) == pytest.approx(30.0)

    def test_rates_partition_total(self):
        measure = LoadMeasure(spec=workload_c(base_bits=4), total_rate=500.0)
        for depth in [2, 4, 6]:
            groups = [KeyGroup(prefix=p, depth=depth, width=12) for p in range(1 << depth)]
            assert sum(measure.group_rate(group) for group in groups) == pytest.approx(500.0)

    def test_splitting_a_group_conserves_rate(self):
        measure = LoadMeasure(spec=workload_c(base_bits=4), total_rate=500.0)
        parent = KeyGroup.from_wildcard("10*", width=12)
        left, right = parent.split()
        assert measure.group_rate(left) + measure.group_rate(right) == pytest.approx(
            measure.group_rate(parent)
        )

    def test_rate_by_prefix(self):
        measure = LoadMeasure(spec=SPEC, total_rate=100.0)
        rates = measure.rate_by_prefix(2)
        assert rates == pytest.approx([10.0, 20.0, 30.0, 40.0])
        with pytest.raises(ValueError):
            measure.rate_by_prefix(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadMeasure(spec=SPEC, total_rate=-1.0)
        with pytest.raises(ValueError):
            LoadMeasure(spec=SPEC, total_rate=1.0, total_queries=-1.0)

    def test_accessors(self):
        measure = LoadMeasure(spec=SPEC, total_rate=10.0, total_queries=5.0)
        assert measure.spec is SPEC
        assert measure.total_rate == 10.0
        assert measure.total_queries == 5.0
        assert measure.group_probability(KeyGroup.root(8)) == pytest.approx(1.0)


class TestBatchedAssignmentBitIdentity:
    """The batched trie path must reproduce the scalar path bit-for-bit."""

    @pytest.mark.parametrize(
        "spec",
        [
            workload_a(),
            workload_b(),
            workload_c(),
            WorkloadSpec(
                name="R",
                base_bits=6,
                weights=tuple(
                    ((seed * 2654435761) % 1000) / 100.0 + 0.01
                    for seed in range(1 << 6)
                ),
                source_rate=1.5,
            ),
        ],
        ids=lambda spec: spec.name,
    )
    def test_assign_rates_matches_scalar_path_exactly(self, spec: WorkloadSpec):
        batched = LoadMeasure(spec=spec, total_rate=777.5, total_queries=321.25)
        # A scalar reference over an equal-but-distinct spec, so the two
        # measures cannot share a prefix cache.
        scalar_spec = WorkloadSpec(
            name=spec.name + "-ref",
            base_bits=spec.base_bits,
            weights=spec.weights,
            source_rate=spec.source_rate,
        )
        scalar = LoadMeasure(spec=scalar_spec, total_rate=777.5, total_queries=321.25)
        groups = [
            KeyGroup(prefix=prefix, depth=depth, width=24)
            for depth in [1, 3, spec.base_bits, spec.base_bits + 1, spec.base_bits + 5]
            for prefix in range(0, 1 << depth, max(1, (1 << depth) // 64))
        ]
        assignments = batched.assign_rates(groups)
        for group in groups:
            rate, queries = assignments[group]
            # Exact equality on purpose: the batch must replay the scalar
            # multiply order, not merely approximate it.
            assert rate == scalar.group_rate(group)
            assert queries == scalar.group_queries(group)

    def test_rate_by_prefix_matches_direct_spec_calls_exactly(self):
        spec = workload_c()
        measure = LoadMeasure(spec=spec, total_rate=250.0)
        for depth in [0, 4, spec.base_bits, spec.base_bits + 3]:
            batched = measure.rate_by_prefix(depth)
            direct = [
                250.0 * spec.prefix_probability(prefix, depth)
                for prefix in range(1 << depth)
            ]
            assert batched == direct

    def test_shared_base_probabilities_match_scalar_probability(self):
        spec = workload_b()
        base = shared_base_probabilities(spec)
        assert len(base) == 1 << spec.base_bits
        for base_value in range(0, 1 << spec.base_bits, 7):
            assert base[base_value] == spec.probability(base_value)
        # Shared per spec: a second fetch returns the same object.
        assert shared_base_probabilities(spec) is base

    def test_total_weight_is_cached_but_unchanged(self):
        spec = workload_a()
        first = spec.total_weight
        assert spec.total_weight is spec.total_weight or spec.total_weight == first
        assert first == float(sum(spec.weights))
        # Caching must not disturb dataclass equality or hashing.
        twin = workload_a()
        _ = twin.total_weight
        assert spec == twin
        assert hash(spec) == hash(twin)
