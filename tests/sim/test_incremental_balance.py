"""The incremental balance pass must equal the reference full scan, bit for bit.

``ClashSystem.run_load_check`` drains dirty-server work queues (split pass,
report exchange, consolidation pass) instead of scanning every server, and on
clock-less transports the exchange skips re-posting report sets that already
stand on their parents.  ``force_full_load_scan`` restores the reference
probe-everyone scan with a full exchange.  These tests pin the contract:

* **End-to-end equivalence** — full simulations in both modes emit
  bit-identical ``PeriodSample`` streams across transports, churn, shard
  counts and partition modes.
* **Randomized mutation battery** — twin systems fed identical random rate
  mutations and membership events produce identical splits, merges, message
  charges and ownership after every load check.
* **Steady-state sparsity** — once converged, a load check performs zero
  verdict probes, zero consolidation candidate sweeps and delivers zero
  envelopes (standing reports are reused, counted in ``reports_skipped``).
* **Drop accounting** — a report whose destination unbinds while the
  envelope is in flight is counted once, in ``dropped_messages``, and is
  neither charged as a MERGE message nor counted as delivered.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.config import ClashConfig
from repro.core.messages import MessageCategory
from repro.core.protocol import ClashSystem
from repro.experiments.runner import ExperimentScale
from repro.net import build_transport
from repro.net.event import EventTransport
from repro.net.latency import ConstantLatency
from repro.sim.engine import SimulationEngine
from repro.sim.simulator import FlowSimulator
from repro.util.rng import RandomStream


def _run(scale: ExperimentScale, scenario, full_scan: bool):
    simulator = FlowSimulator(
        config=scale.config(),
        params=scale.params(force_full_load_scan=full_scan),
        scenario=scenario,
    )
    try:
        result = simulator.run()
        simulator.system.verify_invariants()
    finally:
        simulator.transport.close()
    return result


# One combination per axis value: every transport in {inline, async, socket},
# calm and churning phases, single and 4-shard rings, static and adaptive
# partition maps — without paying for the full cross product on every CI run.
BATTERY = [
    pytest.param("inline", 0.0, 1, "static", id="inline-calm-1-static"),
    pytest.param("inline", 0.01, 4, "adaptive", id="inline-churn-4-adaptive"),
    pytest.param("async", 0.0, 4, "static", id="async-calm-4-static"),
    pytest.param("async", 0.01, 1, "static", id="async-churn-1-static"),
    pytest.param("socket", 0.0, 4, "static", id="socket-calm-4-static"),
    pytest.param("socket", 0.01, 4, "adaptive", id="socket-churn-4-adaptive"),
]


class TestWorkQueueEqualsFullScan:
    @pytest.mark.parametrize("transport, churn_rate, shards, partition", BATTERY)
    def test_period_streams_bit_identical(self, transport, churn_rate, shards, partition):
        scale = dataclasses.replace(
            ExperimentScale.scaled(factor=100, phase_periods=2),
            transport=transport,
            join_rate=churn_rate,
            fail_rate=churn_rate,
            shards=shards,
            partition=partition,
        )
        scenario = scale.scenario()
        incremental = _run(scale, scenario, full_scan=False)
        full = _run(scale, scenario, full_scan=True)
        differences = incremental.diff(full)
        assert not differences, "; ".join(differences)
        # The equivalence must not be vacuous: the incremental run has to
        # have actually probed fewer servers than the reference scan.
        assert incremental.notes["load_check_probes"] < full.notes["load_check_probes"]
        assert (
            incremental.notes["consolidation_probes"]
            <= full.notes["consolidation_probes"]
        )


def _twin_system(full_scan: bool) -> ClashSystem:
    # build_transport stamps the registry's report_diff capability, so the
    # incremental twin also exercises the report-diff exchange.
    system = ClashSystem.create(
        ClashConfig.small_scale(),
        server_count=16,
        rng=RandomStream(99),
        transport=build_transport("inline"),
    )
    system.force_full_load_scan = full_scan
    return system


class TestRandomizedMutationBattery:
    def test_twin_systems_stay_identical_under_random_mutations(self):
        incremental = _twin_system(full_scan=False)
        reference = _twin_system(full_scan=True)
        rng = random.Random(20040324)
        capacity = incremental.config.server_capacity
        joins = 0
        for round_index in range(40):
            groups = sorted(incremental.active_groups().items())
            assert groups == sorted(reference.active_groups().items())
            # A handful of random rate mutations, applied to both twins.
            for _ in range(rng.randrange(0, 4)):
                group, owner = groups[rng.randrange(len(groups))]
                rate = rng.uniform(0.0, 2.0 * capacity)
                incremental.server(owner).set_group_rate(group, rate)
                reference.server(owner).set_group_rate(group, rate)
            # Occasional membership churn so the work queues see joins and
            # failures mid-battery, not just rate dirt.
            if rng.random() < 0.15:
                joins += 1
                incremental.handle_server_join(f"fz{joins}")
                reference.handle_server_join(f"fz{joins}")
            elif rng.random() < 0.10:
                names = sorted(incremental.server_names())
                victim = names[rng.randrange(len(names))]
                incremental.handle_server_failure(victim)
                reference.handle_server_failure(victim)
            a = incremental.run_load_check()
            b = reference.run_load_check()
            assert a.splits == b.splits, f"round {round_index}: split streams diverged"
            assert a.merges == b.merges, f"round {round_index}: merge streams diverged"
            assert incremental.messages == reference.messages, (
                f"round {round_index}: message accounting diverged"
            )
            assert incremental.active_groups() == reference.active_groups()
            incremental.verify_invariants()
        # The battery must have exercised real work on both paths.
        assert incremental.load_probes > 0
        assert incremental.load_probes < reference.load_probes


class TestSteadyState:
    def test_converged_check_probes_and_delivers_nothing(self):
        system = _twin_system(full_scan=False)
        groups = sorted(system.active_groups().items())
        group, owner = groups[0]
        # 1.5× capacity forces one split; the halves settle between the
        # underload and overload thresholds, so the pair is stable and the
        # child keeps a standing report on its parent.
        system.server(owner).set_group_rate(group, 1.5 * system.config.server_capacity)
        converged = False
        for _ in range(10):
            report = system.run_load_check()
            if report.split_count == 0 and report.merge_count == 0:
                converged = True
                break
        assert converged, "the single-split workload never settled"
        # Drain any residual dirt from the settling passes.
        system.run_load_check()
        probes = system.load_probes
        sweeps = system.consolidation_probes
        delivered_before = system.transport.envelopes_delivered
        skipped_before = system.reports_skipped
        report = system.run_load_check()
        assert report.split_count == 0 and report.merge_count == 0
        assert system.load_probes == probes, "steady state re-probed a verdict"
        assert system.consolidation_probes == sweeps, (
            "steady state re-swept consolidation candidates"
        )
        assert system.transport.envelopes_delivered == delivered_before, (
            "steady state delivered report envelopes whose content already stood"
        )
        assert system.reports_skipped > skipped_before, (
            "the standing reports should have been reused, not absent"
        )


class TestMidFlightDropAccounting:
    def test_dropped_report_is_not_charged_or_counted_delivered(self):
        """A parent unbinding mid-flight costs exactly one dropped_messages.

        Regression test: the exchange used to charge MERGE and count the
        report as delivered even when the transport dropped the envelope
        because its destination failed between post and delivery.
        """
        engine = SimulationEngine()
        transport = EventTransport(engine=engine, latency=ConstantLatency(1.0))
        system = ClashSystem.create(
            ClashConfig.small_scale(),
            server_count=16,
            rng=RandomStream(7),
            transport=transport,
        )
        # Overload servers until some split sheds a child to a *different*
        # server — only cross-server children address load reports.
        for group, owner in sorted(system.active_groups().items()):
            system.server(owner).set_group_rate(
                group, 2.0 * system.config.server_capacity
            )
        system.run_load_check()
        pairs = [
            (name, parent)
            for name in system.server_names()
            for parent, _report in system.server(name).addressed_load_reports()
        ]
        assert pairs, "the seeded workload produced no cross-server children"
        doomed_parent = pairs[0][1]
        expected_posts = len(pairs)
        expected_drops = sum(1 for _child, parent in pairs if parent == doomed_parent)
        # The failure fires on the engine clock *between* the posts (t=now)
        # and their deliveries (t=now+1.0): every report addressed to the
        # doomed parent is in flight when its endpoint unbinds.
        engine.schedule_in(
            0.5, lambda now: system.handle_server_failure(doomed_parent)
        )
        drops_before = transport.dropped_messages
        merge_before = system.messages.counts[MessageCategory.MERGE]
        delivered = system.exchange_load_reports()
        assert transport.dropped_messages - drops_before == expected_drops
        assert delivered == expected_posts - expected_drops
        assert (
            system.messages.counts[MessageCategory.MERGE] - merge_before == delivered
        ), "a dropped report must not be charged as a MERGE delivery"
