"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired: list[str] = []
        engine.schedule_at(5.0, lambda now: fired.append("b"))
        engine.schedule_at(1.0, lambda now: fired.append("a"))
        engine.schedule_at(9.0, lambda now: fired.append("c"))
        engine.run_until(10.0)
        assert fired == ["a", "b", "c"]
        assert engine.now == 10.0
        assert engine.processed == 3

    def test_simultaneous_events_fire_in_schedule_order(self):
        engine = SimulationEngine()
        fired: list[int] = []
        for index in range(5):
            engine.schedule_at(3.0, lambda now, index=index: fired.append(index))
        engine.run_until(3.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in_is_relative(self):
        engine = SimulationEngine()
        times: list[float] = []
        engine.schedule_at(2.0, lambda now: engine.schedule_in(3.0, lambda later: times.append(later)))
        engine.run_until(10.0)
        assert times == [5.0]

    def test_events_beyond_horizon_stay_queued(self):
        engine = SimulationEngine()
        fired: list[float] = []
        engine.schedule_at(1.0, fired.append)
        engine.schedule_at(20.0, fired.append)
        engine.run_until(10.0)
        assert fired == [1.0]
        assert engine.pending == 1
        engine.run_until(30.0)
        assert fired == [1.0, 20.0]

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda now: None)
        engine.run_until(5.0)
        with pytest.raises(ValueError):
            engine.schedule_at(4.0, lambda now: None)

    def test_cannot_run_backwards(self):
        engine = SimulationEngine()
        engine.run_until(5.0)
        with pytest.raises(ValueError):
            engine.run_until(4.0)

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_in(-1.0, lambda now: None)


class TestPeriodicEvents:
    def test_schedule_every_repeats(self):
        engine = SimulationEngine()
        ticks: list[float] = []
        engine.schedule_every(10.0, ticks.append)
        engine.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_schedule_every_with_explicit_start(self):
        engine = SimulationEngine()
        ticks: list[float] = []
        engine.schedule_every(10.0, ticks.append, first_at=5.0)
        engine.run_until(26.0)
        assert ticks == [5.0, 15.0, 25.0]

    def test_schedule_every_requires_positive_period(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_every(0.0, lambda now: None)

    def test_schedule_every_does_not_accumulate_float_drift(self):
        """Tick k must fire at exactly first_at + k * period: re-scheduling at
        now + period accumulates rounding (0.1 drifts within 6 additions) and
        periodic load checks would slip off phase boundaries over long runs."""
        engine = SimulationEngine()
        ticks: list[float] = []
        engine.schedule_every(0.1, ticks.append, first_at=0.1)
        engine.run_until(10.05)
        assert len(ticks) == 100
        assert ticks == [0.1 + k * 0.1 for k in range(100)]

    def test_schedule_every_aligns_with_phase_boundaries_over_six_hours(self):
        """The paper's 300 s load-check period over a 6-hour scenario: every
        tick lands exactly on a multiple of the period."""
        engine = SimulationEngine()
        ticks: list[float] = []
        engine.schedule_every(300.0, ticks.append, first_at=300.0)
        engine.run_until(6 * 3600.0)
        assert len(ticks) == 72
        assert all(tick == 300.0 * (k + 1) for k, tick in enumerate(ticks))

    def test_max_events_limits_processing(self):
        engine = SimulationEngine()
        ticks: list[float] = []
        engine.schedule_every(1.0, ticks.append)
        fired = engine.run_until(1000.0, max_events=5)
        assert fired == 5

    def test_run_all_processes_everything(self):
        engine = SimulationEngine()
        fired: list[float] = []
        for time in [3.0, 1.0, 2.0]:
            engine.schedule_at(time, fired.append)
        assert engine.run_all() == 3
        assert fired == [1.0, 2.0, 3.0]
