"""Golden churn runs: incremental stabilisation vs the full-rebuild path.

``SimulationParams.force_full_stabilise`` selects how every ring recomputes
its routing state after membership events — it must never change *what* that
state is.  These runs drive a churn-heavy scenario both ways and require
:meth:`SimulationResult.diff` to come back empty (bit-identical
``PeriodSample`` streams, floats included) while the work counters carried
in ``SimulationResult.notes`` show the incremental path doing a small
fraction of the finger recomputation.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.runner import ExperimentScale
from repro.sim.simulator import FlowSimulator, SimulationResult

CHURN_SCALE = dataclasses.replace(
    ExperimentScale.scaled(factor=50, phase_periods=2),
    join_rate=0.01,
    fail_rate=0.01,
)


def _run(transport: str, shards: int, force_full: bool) -> SimulationResult:
    scale = dataclasses.replace(CHURN_SCALE, transport=transport, shards=shards)
    simulator = FlowSimulator(
        config=scale.config(),
        params=scale.params(shards=shards, force_full_stabilise=force_full),
        scenario=scale.scenario(),
    )
    result = simulator.run()
    simulator.system.verify_invariants()
    return result


class TestIncrementalChurnEquivalence:
    @pytest.mark.parametrize(
        ("transport", "shards"),
        [("inline", 1), ("inline", 4), ("async", 1)],
        ids=["inline", "inline-sharded", "async"],
    )
    def test_bit_identical_samples_and_less_finger_work(self, transport: str, shards: int):
        fast = _run(transport, shards, force_full=False)
        slow = _run(transport, shards, force_full=True)
        assert fast.diff(slow) == []
        # The scenario really churned (otherwise the comparison is vacuous).
        joins = sum(s.server_joins for s in fast.metrics.samples)
        failures = sum(s.server_failures for s in fast.metrics.samples)
        assert joins > 0 and failures > 0
        # ≥ 3× fewer finger-entry recomputations on the incremental path.
        fast_fingers = fast.notes["ring_finger_recomputations"]
        slow_fingers = slow.notes["ring_finger_recomputations"]
        assert fast_fingers * 3 <= slow_fingers
        # The fast run took the incremental path; the slow run never did.
        assert fast.notes["ring_incremental_events"] > 0
        assert slow.notes["ring_incremental_events"] == 0

    def test_memo_survives_churn_on_the_incremental_path(self):
        fast = _run("inline", 1, force_full=False)
        # Selective invalidation must leave some lookups answered from the
        # memo even though the membership changed during the run.
        assert fast.notes["memo_hits"] > 0
        assert fast.notes["memo_invalidations"] < fast.notes["memo_misses"]
