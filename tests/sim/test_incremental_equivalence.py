"""Incremental-vs-full equivalence of the period engine.

The incremental machinery added for performance — the maintained ownership
indexes in :class:`~repro.core.protocol.ClashSystem`, the per-server load
caches, and the dirty-group load assignment in
:class:`~repro.sim.simulator.FlowSimulator` — must be *pure* optimisations:
after every mutation the maintained structures must equal a from-scratch
recomputation, and a simulation run using dirty-group assignment must emit
exactly the sample stream a full per-iteration reassignment emits.

The tests here are property-style: randomized split/merge/failure sequences
(driven by seeded RNG so failures replay) with an exhaustive cross-check
after every single mutation.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.keys.identifier import RandomKeyGenerator
from repro.sim.simulator import FlowSimulator, SimulationParams
from repro.util.rng import RandomStream
from repro.workload.distributions import workload_c
from repro.workload.scenario import (
    PhasedScenario,
    ScenarioPhase,
    churn_latency_scenario,
    paper_scenario,
)
from repro.workload.distributions import workload_a


# --------------------------------------------------------------------- #
# Maintained-index ground truth
# --------------------------------------------------------------------- #


def _assert_indexes_match_ground_truth(system: ClashSystem) -> None:
    """Every maintained index must equal a recomputation from server tables."""
    truth: dict = {}
    for name, server in system.servers().items():
        for group in server.table.active_groups():
            assert group not in truth, f"{group} active on two servers"
            truth[group] = name
    assert system.active_groups() == truth
    assert system.active_servers() == sorted({owner for owner in truth.values()})
    depths = [group.depth for group in truth]
    min_depth, avg_depth, max_depth = system.depth_statistics()
    assert min_depth == min(depths)
    assert max_depth == max(depths)
    assert avg_depth == pytest.approx(sum(depths) / len(depths), abs=0.0)


def _assert_server_loads_match_raw_state(system: ClashSystem) -> None:
    """Cached loads must equal a recomputation from the raw per-server state.

    The recomputation deliberately reads the private rate/override dicts —
    that is the uncached ground truth the caching layer must reproduce.
    """
    for server in system.servers().values():
        expected_total = 0.0
        loads = server.group_loads()
        assert sorted(loads) == server.table.active_groups()
        for group in server.table.active_groups():
            rate = server._group_rates.get(group, 0.0)
            if group in server._group_query_counts:
                query_count = server._group_query_counts[group]
            else:
                query_count = server.query_store.count_in_group(group)
            load = server.load_model.load(rate, query_count)
            assert loads[group].data_rate == rate
            assert loads[group].load == load
            expected_total += load
        assert server.total_load() == pytest.approx(expected_total)
        assert server.is_overloaded() == server.load_model.is_overloaded(
            server.total_load()
        )
        assert server.is_underloaded() == server.load_model.is_underloaded(
            server.total_load()
        )


def test_randomized_mutations_keep_indexes_consistent():
    config = ClashConfig(server_capacity=400.0)
    system = ClashSystem.create(config, server_count=48, rng=RandomStream(91))
    spec = workload_c()
    generator = RandomKeyGenerator(
        width=config.key_bits, base_bits=8, rng=RandomStream(92), base_weights=spec.weights
    )
    rng = random.Random(4711)
    _assert_indexes_match_ground_truth(system)
    for step in range(160):
        action = rng.random()
        if action < 0.55:
            # Heat a random group and split its owner.
            key = generator.generate()
            group, owner = system.find_active_group(key)
            if group.depth < config.effective_max_depth:
                system.server(owner).set_group_rate(group, 2 * config.server_capacity)
                system.split_server(owner)
        elif action < 0.85:
            # Cool everything and run a full load check (exercises merges).
            for server in system.servers().values():
                server.reset_interval()
                for group in server.active_groups():
                    server.set_group_rate(group, 0.0)
            system.run_load_check()
        elif len(system.server_names()) > 8:
            # Fail a random server (handoff / re-registration paths).
            victim = rng.choice(sorted(system.server_names()))
            system.handle_server_failure(victim)
        _assert_indexes_match_ground_truth(system)
        _assert_server_loads_match_raw_state(system)
        system.verify_invariants()


def test_load_check_report_covers_every_perturbed_group():
    """touched_groups must name every group whose assignment was perturbed.

    After a load check, re-assigning *only* the reported groups must restore
    the exact expected rates everywhere — verified by comparing against a
    full reassignment of every active group.
    """
    config = ClashConfig(server_capacity=400.0)
    system = ClashSystem.create(config, server_count=32, rng=RandomStream(17))
    spec = workload_c()

    def expected_rate(group):
        # A deterministic, depth-dependent synthetic measure.
        return 900.0 * spec.prefix_probability(group.prefix, group.depth) * 64

    for group, owner in system.active_groups().items():
        system.server(owner).set_group_rate(group, expected_rate(group))
    system.drain_touched_groups()
    for _round in range(6):
        report = system.run_load_check()
        # Incremental repair: only the touched groups get fresh values.
        owners = system.active_groups()
        for server in system.servers().values():
            server.clear_child_reports()
        for group in report.touched_groups:
            owner = owners.get(group)
            if owner is not None:
                system.server(owner).set_group_rate(group, expected_rate(group))
        incremental_rates = {
            group: system.server(owner)._group_rates.get(group, 0.0)
            for group, owner in owners.items()
        }
        # Ground truth: a full reassignment.
        for server in system.servers().values():
            server.reset_interval()
        for group, owner in owners.items():
            system.server(owner).set_group_rate(group, expected_rate(group))
        full_rates = {
            group: system.server(owner)._group_rates.get(group, 0.0)
            for group, owner in owners.items()
        }
        assert incremental_rates == full_rates


def test_retired_assignments_name_every_deactivation_and_prune_stale_overrides():
    """Deactivated groups must be retired so stale measurements can be pruned.

    A full reassignment wipes every measurement dict via ``reset_interval``;
    the incremental path instead discards the ``(group, former owner)`` pairs
    the system logs.  Without the pruning, a stale query override would be
    resurrected when the same group is re-activated on that server by a
    later merge or re-split.
    """
    config = ClashConfig(server_capacity=400.0)
    system = ClashSystem.create(config, server_count=16, rng=RandomStream(3))
    group, owner = sorted(system.active_groups().items())[0]
    server = system.server(owner)
    server.set_group_rate(group, 2 * config.server_capacity)
    server.set_group_query_count(group, 777.0)
    system.drain_retired_assignments()
    outcome = system.split_server(owner)
    assert outcome is not None
    retired = system.drain_retired_assignments()
    assert (group, owner) in retired
    # Mid-check the override deliberately survives (matching the original
    # semantics, where a re-merge within the same check reads it) ...
    assert group in server._group_query_counts
    # ... and the assignment-boundary pruning removes it.
    for retired_group, former_owner in retired:
        system.server(former_owner).discard_measurements(retired_group)
    assert group not in server._group_query_counts
    assert group not in server._group_rates


# --------------------------------------------------------------------- #
# Simulator-level equivalence: dirty assignment vs full reassignment
# --------------------------------------------------------------------- #


def _run(scenario, params: SimulationParams, force_full: bool, **kwargs):
    config = ClashConfig(
        server_capacity=40.0, load_check_period=300.0, query_load_weight=0.1
    )
    simulator = FlowSimulator(config, params, scenario, **kwargs)
    simulator._force_full_assignment = force_full
    return simulator.run()


def _assert_identical_runs(scenario, params: SimulationParams, **kwargs) -> None:
    incremental = _run(scenario, params, force_full=False, **kwargs)
    full = _run(scenario, params, force_full=True, **kwargs)
    assert incremental.total_splits == full.total_splits
    assert incremental.total_merges == full.total_merges
    assert incremental.final_active_groups == full.final_active_groups
    assert len(incremental.metrics.samples) == len(full.metrics.samples)
    for sample, reference in zip(incremental.metrics.samples, full.metrics.samples):
        assert sample == reference  # field-for-field dataclass equality


def test_dirty_assignment_matches_full_reassignment():
    params = SimulationParams(
        server_count=120, source_count=1000, lookup_sample_size=10, seed=7
    )
    _assert_identical_runs(paper_scenario(phase_duration=900.0), params)


def test_dirty_assignment_matches_with_query_clients():
    params = SimulationParams(
        server_count=120,
        source_count=1000,
        query_client_count=400,
        lookup_sample_size=10,
        seed=11,
    )
    _assert_identical_runs(paper_scenario(phase_duration=900.0), params)


def test_dirty_assignment_matches_under_split_merge_oscillation_with_queries():
    """Alternating hot/cold phases force re-activation of previously split
    groups — the path where a stale query override could diverge."""
    scenario = PhasedScenario(
        [
            ScenarioPhase(spec=workload_c(), duration=1200.0),
            ScenarioPhase(spec=workload_a(), duration=1200.0),
            ScenarioPhase(spec=workload_c(), duration=1200.0),
            ScenarioPhase(spec=workload_a(), duration=1200.0),
        ]
    )
    params = SimulationParams(
        server_count=100,
        source_count=1000,
        query_client_count=500,
        lookup_sample_size=8,
        seed=13,
    )
    _assert_identical_runs(scenario, params)


def test_dirty_assignment_matches_under_churn():
    scenario = churn_latency_scenario(
        phase_duration=900.0, fail_servers=(0, 3, 2), link_latency=(None, None, None)
    )
    params = SimulationParams(
        server_count=100, source_count=800, lookup_sample_size=8, seed=23
    )
    _assert_identical_runs(scenario, params)


def test_dirty_assignment_matches_for_fixed_depth_baseline():
    scenario = PhasedScenario(
        [
            ScenarioPhase(spec=workload_a(), duration=900.0),
            ScenarioPhase(spec=workload_c(), duration=900.0),
        ]
    )
    params = SimulationParams(
        server_count=80, source_count=800, lookup_sample_size=8, seed=29
    )
    _assert_identical_runs(scenario, params, fixed_depth=6)
