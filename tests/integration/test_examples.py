"""Smoke tests: every bundled example must run to completion."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.name)
def test_example_runs_cleanly(example: pathlib.Path):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should print a report"


def test_examples_directory_has_at_least_three_scenarios():
    assert len(EXAMPLES) >= 3
    assert any(path.name == "quickstart.py" for path in EXAMPLES)
