"""End-to-end integration tests combining every layer of the library.

These tests exercise realistic mini-deployments: quad-tree keys, the client
message protocol, server splitting/consolidation, the Chord substrate and the
workload generators, all together.
"""

from __future__ import annotations

import pytest

from repro.app.query_store import Query
from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.keys.identifier import IdentifierKey
from repro.keys.quadtree import QuadTreeEncoder
from repro.util.rng import RandomStream, SeedSequenceFactory
from repro.workload.distributions import workload_c
from repro.workload.sources import SourcePopulation


@pytest.fixture
def deployment() -> ClashSystem:
    config = ClashConfig(
        key_bits=16,
        hash_bits=20,
        base_bits=4,
        initial_depth=4,
        min_depth=2,
        server_capacity=200.0,
        query_load_weight=1.0,
    )
    return ClashSystem.create(config, server_count=32, rng=RandomStream(1234))


class TestGeographicWorkload:
    def test_hotspot_splits_only_the_hot_region(self, deployment: ClashSystem):
        config = deployment.config
        encoder = QuadTreeEncoder(levels=config.key_bits // 2)
        hot_key = encoder.encode(0.8, 0.8)
        cold_key = encoder.encode(0.1, 0.1)
        hot_group, hot_owner = deployment.find_active_group(hot_key)
        cold_group, _cold_owner = deployment.find_active_group(cold_key)
        initial_depth = hot_group.depth

        deployment.server(hot_owner).set_group_rate(hot_group, 3 * config.server_capacity)
        deployment.run_load_check(max_splits_per_server=8)

        new_hot_group, _ = deployment.find_active_group(hot_key)
        new_cold_group, _ = deployment.find_active_group(cold_key)
        assert new_hot_group.depth > initial_depth
        assert new_cold_group == cold_group
        deployment.verify_invariants()

    def test_client_follows_the_hot_region_through_splits(self, deployment: ClashSystem):
        config = deployment.config
        encoder = QuadTreeEncoder(levels=config.key_bits // 2)
        client = deployment.make_client("tracker")
        hot_key = encoder.encode(0.8, 0.8)
        first = client.find_group(hot_key)
        deployment.server(first.server).set_group_rate(
            first.group, 3 * config.server_capacity
        )
        deployment.run_load_check(max_splits_per_server=8)
        second = client.handle_redirect(hot_key)
        registry_group, registry_owner = deployment.find_active_group(hot_key)
        assert second.group == registry_group
        assert second.server == registry_owner


class TestQueryMigration:
    def test_queries_follow_their_key_groups_across_splits_and_merges(
        self, deployment: ClashSystem
    ):
        config = deployment.config
        rng = RandomStream(5)
        client = deployment.make_client("subscriber")
        registered: list[Query] = []
        for query_id in range(40):
            key = IdentifierKey(value=rng.randbits(config.key_bits), width=config.key_bits)
            resolution = client.find_group(key, use_cache=False)
            query = Query(query_id=query_id, key=key, client="subscriber")
            deployment.server(resolution.server).store_query(query)
            registered.append(query)

        # Split a few random groups, then cool down and merge everything back.
        for _ in range(15):
            groups = list(deployment.active_groups().items())
            group, owner = groups[rng.randint(0, len(groups) - 1)]
            deployment.server(owner).set_group_rate(group, 3 * config.server_capacity)
            deployment.split_server(owner)
        for _ in range(20):
            for server in deployment.servers().values():
                server.reset_interval()
            if deployment.run_load_check().merge_count == 0:
                break
        deployment.verify_invariants()

        # Every query must still be stored exactly once, on the server that
        # currently manages its key.
        total_stored = sum(
            len(server.query_store) for server in deployment.servers().values()
        )
        assert total_stored == len(registered)
        for query in registered:
            _group, owner = deployment.find_active_group(query.key)
            assert query.query_id in deployment.server(owner).query_store


class TestSkewedSourcePopulation:
    def test_skewed_sources_drive_depth_where_the_skew_is(self, deployment: ClashSystem):
        config = deployment.config
        seeds = SeedSequenceFactory(777)
        population = SourcePopulation(
            count=400,
            spec=workload_c(base_bits=config.base_bits),
            key_bits=config.key_bits,
            mean_stream_length=100.0,
            rng=seeds.stream("sources"),
        )
        generator = population.make_key_generator()
        # Aggregate the sources' keys into per-group rates.
        for _round in range(6):
            for server in deployment.servers().values():
                server.reset_interval()
            for _ in range(population.count):
                key = generator.generate()
                group, owner = deployment.find_active_group(key)
                deployment.server(owner).add_group_rate(group, 2.0)
            deployment.run_load_check(max_splits_per_server=4)
        deployment.verify_invariants()
        depths = {group.depth for group in deployment.active_groups()}
        assert max(depths) > config.initial_depth
        # The deepest groups must sit under the workload's hot base values.
        spec = population.spec
        deep_groups = [
            group for group in deployment.active_groups() if group.depth == max(depths)
        ]
        hot_share = max(
            spec.prefix_probability(group.prefix >> (group.depth - config.base_bits), config.base_bits)
            if group.depth >= config.base_bits
            else spec.prefix_probability(group.prefix, group.depth)
            for group in deep_groups
        )
        mean_share = 1.0 / (1 << config.base_bits)
        assert hot_share > mean_share


class TestChurnResilience:
    def test_server_pool_can_grow_mid_run(self, deployment: ClashSystem):
        """New servers joining the ring become candidates for future splits."""
        config = deployment.config
        deployment.ring.add_node("late-joiner")
        deployment.ring.stabilise()
        # The redirection layer still works for every key.
        client = deployment.make_client("after-join")
        rng = RandomStream(9)
        for _ in range(10):
            key = IdentifierKey(value=rng.randbits(config.key_bits), width=config.key_bits)
            result = client.find_group(key, use_cache=False)
            assert result.group.contains_key(key)
