"""Unit tests for the power-of-d-choices baseline (Byers et al.)."""

from __future__ import annotations

import pytest

from repro.baselines.power_of_d import PowerOfDChoicesPlacer
from repro.dht.hashspace import HashSpace
from repro.dht.ring import ChordRing
from repro.keys.identifier import IdentifierKey, RandomKeyGenerator
from repro.util.rng import RandomStream


@pytest.fixture
def ring() -> ChordRing:
    return ChordRing.build(node_count=20, space=HashSpace(bits=16), rng=RandomStream(77))


def random_keys(count: int, seed: int = 5) -> list[IdentifierKey]:
    generator = RandomKeyGenerator(width=24, base_bits=8, rng=RandomStream(seed))
    return generator.generate_many(count)


class TestPlacement:
    def test_candidates_match_choice_count(self, ring: ChordRing):
        placer = PowerOfDChoicesPlacer(ring, choices=3)
        key = IdentifierKey(value=123, width=24)
        assert len(placer.candidates_for(key)) == 3
        assert placer.choices == 3

    def test_place_selects_a_candidate(self, ring: ChordRing):
        placer = PowerOfDChoicesPlacer(ring, choices=2)
        key = IdentifierKey(value=123, width=24)
        placement = placer.place(key)
        assert placement.server in placement.candidates

    def test_load_accumulates_on_chosen_server(self, ring: ChordRing):
        placer = PowerOfDChoicesPlacer(ring, choices=2)
        placement = placer.place(IdentifierKey(value=1, width=24), load=5.0)
        assert placer.server_loads()[placement.server] == pytest.approx(5.0)

    def test_negative_load_rejected(self, ring: ChordRing):
        placer = PowerOfDChoicesPlacer(ring, choices=2)
        with pytest.raises(ValueError):
            placer.place(IdentifierKey(value=1, width=24), load=-1.0)

    def test_choices_validation(self, ring: ChordRing):
        with pytest.raises(ValueError):
            PowerOfDChoicesPlacer(ring, choices=0)

    def test_imbalance_of_empty_placer_is_one(self, ring: ChordRing):
        assert PowerOfDChoicesPlacer(ring, choices=2).imbalance() == 1.0


class TestBalancingBehaviour:
    def test_two_choices_beat_one_choice(self, ring: ChordRing):
        """The classic power-of-two-choices improvement on uniform objects."""
        keys = random_keys(3000)
        single = PowerOfDChoicesPlacer(ring, choices=1)
        double = PowerOfDChoicesPlacer(ring, choices=2)
        single.place_all(keys)
        double.place_all(keys)
        assert double.imbalance() < single.imbalance()

    def test_placements_are_recorded(self, ring: ChordRing):
        placer = PowerOfDChoicesPlacer(ring, choices=2)
        keys = random_keys(10)
        placer.place_all(keys)
        assert len(placer.placements()) == 10

    def test_related_keys_are_scattered_across_servers(self, ring: ChordRing):
        """d-choices destroys content clustering: a related key group spans many servers."""
        placer = PowerOfDChoicesPlacer(ring, choices=2)
        base = 0b10110011
        related = [
            IdentifierKey(value=(base << 16) | suffix, width=24) for suffix in range(64)
        ]
        placer.place_all(related)
        assert placer.servers_spanned(related) > 5
