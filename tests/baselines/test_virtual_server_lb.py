"""Unit tests for the virtual-server migration baseline (Rao et al.)."""

from __future__ import annotations

import pytest

from repro.baselines.virtual_server_lb import VirtualServerBalancer


def make_balancer(**kwargs) -> VirtualServerBalancer:
    balancer = VirtualServerBalancer(capacity=100.0, **kwargs)
    for index in range(4):
        balancer.add_physical_node(f"m{index}")
    return balancer


class TestSetup:
    def test_duplicate_node_rejected(self):
        balancer = make_balancer()
        with pytest.raises(ValueError):
            balancer.add_physical_node("m0")

    def test_assign_to_unknown_node(self):
        balancer = make_balancer()
        with pytest.raises(KeyError):
            balancer.assign_virtual_server("ghost", "v0", 10.0)

    def test_duplicate_virtual_server_rejected(self):
        balancer = make_balancer()
        balancer.assign_virtual_server("m0", "v0", 10.0)
        with pytest.raises(ValueError):
            balancer.assign_virtual_server("m1", "v0", 10.0)

    def test_negative_load_rejected(self):
        balancer = make_balancer()
        with pytest.raises(ValueError):
            balancer.assign_virtual_server("m0", "v0", -1.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            VirtualServerBalancer(capacity=100.0, overload_threshold=0.5, underload_threshold=0.6)
        with pytest.raises(ValueError):
            VirtualServerBalancer(capacity=0.0)

    def test_node_loads(self):
        balancer = make_balancer()
        balancer.assign_virtual_server("m0", "v0", 30.0)
        balancer.assign_virtual_server("m0", "v1", 20.0)
        assert balancer.node_loads()["m0"] == pytest.approx(50.0)
        assert balancer.node_utilisations()["m0"] == pytest.approx(0.5)


class TestBalancing:
    def test_overloaded_node_sheds_virtual_servers(self):
        balancer = make_balancer()
        for index in range(5):
            balancer.assign_virtual_server("m0", f"v{index}", 30.0)
        assert balancer.max_utilisation() == pytest.approx(1.5)
        steps = balancer.balance()
        assert steps
        assert balancer.max_utilisation() <= 0.9
        assert not balancer.overloaded_nodes()

    def test_migrations_move_to_least_loaded(self):
        balancer = make_balancer()
        balancer.assign_virtual_server("m0", "hot1", 50.0)
        balancer.assign_virtual_server("m0", "hot2", 50.0)
        balancer.assign_virtual_server("m1", "warm", 60.0)
        steps = balancer.balance()
        assert steps[0].destination in {"m2", "m3"}

    def test_single_huge_virtual_server_cannot_be_balanced(self):
        """The limitation CLASH removes: one hot region exceeds any node's capacity."""
        balancer = make_balancer()
        balancer.assign_virtual_server("m0", "whale", 150.0)
        steps = balancer.balance()
        assert steps == []
        assert balancer.max_utilisation() == pytest.approx(1.5)

    def test_balance_respects_migration_budget(self):
        balancer = make_balancer()
        for index in range(8):
            balancer.assign_virtual_server("m0", f"v{index}", 20.0)
        steps = balancer.balance(max_migrations=2)
        assert len(steps) == 2

    def test_already_balanced_system_does_nothing(self):
        balancer = make_balancer()
        for index, node in enumerate(["m0", "m1", "m2", "m3"]):
            balancer.assign_virtual_server(node, f"v{index}", 40.0)
        assert balancer.balance() == []

    def test_max_utilisation_requires_nodes(self):
        with pytest.raises(ValueError):
            VirtualServerBalancer(capacity=10.0).max_utilisation()
