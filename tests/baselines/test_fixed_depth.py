"""Unit tests for the vectorised fixed-depth DHT baseline."""

from __future__ import annotations

import pytest

from repro.baselines.fixed_depth import FixedDepthDhtSimulator
from repro.core.config import ClashConfig
from repro.sim.simulator import SimulationParams
from repro.workload.scenario import paper_scenario


CONFIG = ClashConfig(server_capacity=40.0, query_load_weight=0.1)
PARAMS = SimulationParams(server_count=60, source_count=1000, seed=11)
SCENARIO = paper_scenario(phase_duration=600.0)


def run(depth: int, **param_overrides):
    params = PARAMS if not param_overrides else SimulationParams(
        **{**dict(server_count=60, source_count=1000, seed=11), **param_overrides}
    )
    return FixedDepthDhtSimulator(
        config=CONFIG, params=params, scenario=SCENARIO, fixed_depth=depth
    ).run()


class TestPartition:
    def test_enumeration_capped(self):
        simulator = FixedDepthDhtSimulator(
            config=CONFIG, params=PARAMS, scenario=SCENARIO, fixed_depth=24,
            max_enumeration_depth=10,
        )
        assert simulator.enumeration_depth == 10

    def test_enumeration_matches_depth_when_small(self):
        simulator = FixedDepthDhtSimulator(
            config=CONFIG, params=PARAMS, scenario=SCENARIO, fixed_depth=6
        )
        assert simulator.enumeration_depth == 6

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            FixedDepthDhtSimulator(
                config=CONFIG, params=PARAMS, scenario=SCENARIO, fixed_depth=25
            )
        with pytest.raises(ValueError):
            FixedDepthDhtSimulator(
                config=CONFIG, params=PARAMS, scenario=SCENARIO, fixed_depth=0
            )


class TestBehaviour:
    def test_label_and_constant_depth(self):
        result = run(6)
        assert result.label == "DHT(6)"
        assert result.total_splits == 0
        assert all(sample.max_depth == 6.0 for sample in result.metrics.samples)

    def test_small_depth_uses_few_servers(self):
        result = run(4)
        for summary in result.phase_summaries():
            assert summary.mean_active_servers <= 16

    def test_large_depth_uses_nearly_all_servers(self):
        result = run(12)
        for summary in result.phase_summaries():
            assert summary.mean_active_servers > 50

    def test_large_depth_has_low_average_load(self):
        coarse = run(6)
        fine = run(12)
        coarse_avg = coarse.phase_summaries()[0].mean_avg_load_percent
        fine_avg = fine.phase_summaries()[0].mean_avg_load_percent
        assert fine_avg < coarse_avg

    def test_small_depth_hotspots_under_skew(self):
        result = run(6)
        summaries = {summary.workload: summary for summary in result.phase_summaries()}
        # Workload C concentrates a quarter of double-rate traffic on one group.
        assert summaries["C"].peak_max_load_percent > 3 * summaries["A"].peak_max_load_percent
        assert summaries["C"].peak_max_load_percent > 150.0

    def test_message_rate_scales_with_key_churn(self):
        long_streams = run(6, mean_stream_length=1000.0)
        short_streams = run(6, mean_stream_length=50.0)
        assert (
            short_streams.phase_summaries()[0].messages_per_server_per_second
            > long_streams.phase_summaries()[0].messages_per_server_per_second
        )

    def test_per_phase_loads_follow_traffic_intensity(self):
        result = run(8)
        summaries = {summary.workload: summary for summary in result.phase_summaries()}
        # Workloads B and C double the per-source rate relative to A.
        assert summaries["B"].mean_avg_load_percent > 1.5 * summaries["A"].mean_avg_load_percent

    def test_query_clients_add_load(self):
        without = run(8)
        with_queries = run(8, query_client_count=1000)
        assert (
            with_queries.phase_summaries()[0].mean_avg_load_percent
            > without.phase_summaries()[0].mean_avg_load_percent
        )
