#!/usr/bin/env python3
"""Telematics fleet tracking: the paper's Mobiscope-style motivating workload.

A fleet of vehicles reports positions inside a city; dispatch applications
register persistent queries over city zones ("alert me about vehicles in the
harbour district").  Positions are encoded into hierarchical identifier keys
with the quad-tree encoder of Section 3, so vehicles in the same zone share a
key prefix and land on the same CLASH server — until a zone gets hot (rush
hour around the stadium) and CLASH splits exactly that zone across more
servers.

Run with:  python examples/telematics_fleet.py
"""

from __future__ import annotations

from collections import Counter

from repro import ClashConfig, ClashSystem, QuadTreeEncoder
from repro.app.query_store import Query
from repro.util.rng import RandomStream


def main() -> None:
    config = ClashConfig(
        key_bits=16,
        hash_bits=20,
        base_bits=4,
        initial_depth=4,
        min_depth=2,
        server_capacity=400.0,
        query_load_weight=2.0,
    )
    rng = RandomStream(7)
    system = ClashSystem.create(config, server_count=24, rng=rng)
    encoder = QuadTreeEncoder(levels=config.key_bits // 2)
    client = system.make_client("dispatch-centre")

    # --- Register zone queries (persistent continuous queries). -------------
    query_id = 0
    for x, y, label in [(0.1, 0.1, "harbour"), (0.75, 0.75, "stadium"), (0.4, 0.6, "centre")]:
        zone_key = encoder.encode(x, y)
        resolution = client.find_group(zone_key)
        system.server(resolution.server).store_query(
            Query(query_id=query_id, key=zone_key, client=f"dispatch/{label}")
        )
        print(f"Query over the {label} zone registered on {resolution.server}")
        query_id += 1

    # --- Simulate vehicle position reports. ---------------------------------
    # Normal traffic is spread over the city; rush hour concentrates around
    # the stadium quadrant (x, y > 0.5), which makes that key region hot.
    def report_positions(count: int, hotspot_fraction: float) -> Counter:
        per_server: Counter = Counter()
        for _ in range(count):
            if rng.uniform() < hotspot_fraction:
                x = 0.70 + 0.05 * rng.uniform()
                y = 0.70 + 0.05 * rng.uniform()
            else:
                x, y = rng.uniform(), rng.uniform()
            key = encoder.encode(x, y)
            resolution = client.find_group(key)
            per_server[resolution.server] += 1
        return per_server

    print("\n-- normal traffic --")
    normal = report_positions(400, hotspot_fraction=0.1)
    print(f"{len(normal)} servers receive reports; busiest handles {max(normal.values())}")

    # Feed the measured report rates into the servers and run a load check:
    # the stadium zone overloads its server, which splits it.
    def apply_rates(per_server: Counter, scale: float) -> None:
        for server_name in system.server_names():
            system.server(server_name).reset_interval()
        for group, owner in system.active_groups().items():
            server = system.server(owner)
            rate = scale * sum(
                count for name, count in per_server.items() if name == owner
            ) / max(1, len(server.active_groups()))
            server.set_group_rate(group, rate)

    print("\n-- rush hour around the stadium --")
    rush = report_positions(1200, hotspot_fraction=0.7)
    # Attribute the hotspot's load precisely to the stadium zone's group.
    stadium_key = encoder.encode(0.72, 0.72)
    stadium_group, stadium_owner = system.find_active_group(stadium_key)
    for server_name in system.server_names():
        system.server(server_name).reset_interval()
    system.server(stadium_owner).set_group_rate(
        stadium_group, 1.5 * config.server_capacity
    )
    report = system.run_load_check(max_splits_per_server=6)
    print(
        f"Load check split {report.split_count} key group(s); the stadium zone is now "
        f"managed at depth {system.find_active_group(stadium_key)[0].depth}"
    )

    # The dispatch client is redirected transparently.
    resolution = client.handle_redirect(stadium_key)
    cell = encoder.decode_cell(stadium_key, depth=resolution.group.depth - resolution.group.depth % 2)
    print(
        f"Stadium reports now go to {resolution.server}; its zone covers a "
        f"{cell.width:.3f} x {cell.height:.3f} slice of the city"
    )

    system.verify_invariants()
    print("\nFinal deployment:", system.describe())


if __name__ == "__main__":
    main()
