#!/usr/bin/env python3
"""Quickstart: a CLASH deployment in a few dozen lines.

This example builds a small CLASH system on top of the bundled Chord
substrate, inserts objects through the client protocol, overloads one key
group so that the owning server sheds half of it to a peer, and then lets the
system consolidate again once the hotspot cools down.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClashConfig, ClashSystem, IdentifierKey
from repro.util.rng import RandomStream


def main() -> None:
    # 1. A 16-server deployment with 12-bit hierarchical keys.
    config = ClashConfig.small_scale()
    rng = RandomStream(2004)
    system = ClashSystem.create(config, server_count=16, rng=rng)
    print("Bootstrapped:", system.describe())

    # 2. Clients never know which server owns a key: they discover the key
    #    group's current depth with the modified binary search of Section 5.
    client = system.make_client("quickstart-client")
    key = IdentifierKey(value=rng.randbits(config.key_bits), width=config.key_bits)
    result = client.find_group(key)
    print(
        f"Key {key} belongs to group {result.group.wildcard()} on {result.server} "
        f"(found in {result.probes} probes, {result.messages} messages)"
    )

    # 3. Overload that group: the server splits it and hands the right child
    #    to whatever peer the DHT chooses (ACCEPT_KEYGROUP must be accepted).
    server = system.server(result.server)
    server.set_group_rate(result.group, 2.0 * config.server_capacity)
    outcome = system.split_server(result.server)
    assert outcome is not None
    print(
        f"Overload: {outcome.parent_server} split {outcome.group.wildcard()} and "
        f"shed {outcome.right.wildcard()} to {outcome.child_server}"
    )

    # 4. The client was redirected; it re-resolves the key and finds the new,
    #    deeper group.
    after = client.handle_redirect(key)
    print(
        f"After the split the key resolves to {after.group.wildcard()} on {after.server}"
    )

    # 5. When the hotspot cools down, the periodic load check consolidates the
    #    two cold children back onto the parent server.
    for each in system.servers().values():
        each.reset_interval()
    report = system.run_load_check()
    print(f"Cool-down load check: {report.merge_count} consolidation(s)")
    print("Final state:", system.describe())
    system.verify_invariants()
    print("All protocol invariants hold.")


if __name__ == "__main__":
    main()
