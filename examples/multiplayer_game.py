#!/usr/bin/env python3
"""Massively-multiplayer game regions on a CLASH utility.

The paper's introduction motivates CLASH with MMP games: thousands of game
servers host a shared world, players cluster in popular regions, and the
operator wants to allocate servers on demand instead of provisioning for the
peak of every region.  This example models a game world as a quad-tree of
regions, simulates a "world event" that draws a crowd into one region, and
shows how CLASH (a) keeps quiet regions consolidated on a handful of servers
and (b) recruits extra servers only for the crowded region — then releases
them when the event ends.

Run with:  python examples/multiplayer_game.py
"""

from __future__ import annotations

from repro import ClashConfig, ClashSystem, QuadTreeEncoder
from repro.util.rng import RandomStream


def region_load(system: ClashSystem, players_per_region: dict[tuple[float, float], int],
                encoder: QuadTreeEncoder, per_player_rate: float) -> None:
    """Convert player counts per region centre into per-group data rates."""
    for name in system.server_names():
        system.server(name).reset_interval()
    for (x, y), players in players_per_region.items():
        key = encoder.encode(x, y)
        group, owner = system.find_active_group(key)
        system.server(owner).add_group_rate(group, players * per_player_rate)


def describe_world(system: ClashSystem, label: str) -> None:
    active = system.active_servers()
    depths = [group.depth for group in system.active_groups()]
    print(
        f"{label}: {len(system.active_groups())} regions on {len(active)} servers, "
        f"depth {min(depths)}..{max(depths)}"
    )


def main() -> None:
    config = ClashConfig(
        key_bits=16,
        hash_bits=20,
        base_bits=4,
        initial_depth=4,
        min_depth=2,
        server_capacity=1000.0,
    )
    system = ClashSystem.create(config, server_count=40, rng=RandomStream(42))
    encoder = QuadTreeEncoder(levels=config.key_bits // 2)
    per_player_rate = 2.0  # each player generates two updates per second

    # Sixteen named regions laid out on a 4x4 grid of the world map.
    region_centres = [
        ((col + 0.5) / 4.0, (row + 0.5) / 4.0) for row in range(4) for col in range(4)
    ]

    # --- Phase 1: an ordinary evening, players spread roughly evenly. -------
    quiet = {centre: 25 for centre in region_centres}
    region_load(system, quiet, encoder, per_player_rate)
    system.run_load_check()
    describe_world(system, "Quiet evening")

    # --- Phase 2: a world event in the north-east region draws a crowd. -----
    event_centre = region_centres[-1]
    crowded = dict(quiet)
    crowded[event_centre] = 2500
    region_load(system, crowded, encoder, per_player_rate)
    for _ in range(8):
        region_load(system, crowded, encoder, per_player_rate)
        report = system.run_load_check()
        if report.split_count == 0:
            break
    describe_world(system, "World event ")
    event_key = encoder.encode(*event_centre)
    event_group, event_owner = system.find_active_group(event_key)
    print(
        f"  the event region is now split to depth {event_group.depth}; the shard "
        f"containing the event centre runs on {event_owner}"
    )
    hot_servers = [
        name for name in system.active_servers()
        if system.server(name).load_percent() > 20.0
    ]
    print(f"  {len(hot_servers)} servers are doing noticeable work during the event")

    # --- Phase 3: the event ends; the extra shards are consolidated. --------
    for _ in range(12):
        region_load(system, quiet, encoder, per_player_rate)
        report = system.run_load_check()
        if report.merge_count == 0 and report.split_count == 0:
            break
    describe_world(system, "After event ")
    system.verify_invariants()
    print("Utility-style elasticity demonstrated: servers were recruited for the event "
          "region only, and released afterwards.")


if __name__ == "__main__":
    main()
