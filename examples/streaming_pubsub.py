#!/usr/bin/env python3
"""Streaming publish/subscribe over CLASH, driven by the event-driven engine.

This example exercises the full client/server message protocol at packet
granularity (rather than the flow-level simulator the benchmarks use): data
sources publish virtual streams of readings under hierarchical topic keys,
subscribers register persistent queries, and a periodic load check lets CLASH
split hot topic groups and consolidate cold ones while the simulation runs.

Run with:  python examples/streaming_pubsub.py
"""

from __future__ import annotations

from collections import Counter

from repro import ClashConfig, ClashSystem
from repro.app.query_store import Query
from repro.sim.engine import SimulationEngine
from repro.util.rng import RandomStream, SeedSequenceFactory
from repro.workload.distributions import workload_c
from repro.workload.sources import SourcePopulation


def main() -> None:
    config = ClashConfig(
        key_bits=12,
        hash_bits=16,
        base_bits=4,
        initial_depth=3,
        min_depth=2,
        server_capacity=120.0,
        load_check_period=30.0,
        query_load_weight=1.0,
    )
    seeds = SeedSequenceFactory(99)
    system = ClashSystem.create(config, server_count=20, rng=seeds.stream("ring"))
    engine = SimulationEngine()

    # A skewed population of 120 publishers: topic popularity follows the
    # paper's workload C, so one topic family is disproportionately hot.
    population = SourcePopulation(
        count=120,
        spec=workload_c(base_bits=config.base_bits),
        key_bits=config.key_bits,
        mean_stream_length=40.0,
        rng=seeds.stream("publishers"),
    )
    publishers = population.materialise(prefix="pub")
    clients = {source.name: system.make_client(f"client/{source.name}") for source in publishers}

    # Subscribers register long-lived queries over topic prefixes.
    subscriber = system.make_client("subscriber")
    subscriber_rng = seeds.stream("subscribers")
    for query_id in range(30):
        key = population.make_key_generator().generate()
        resolution = subscriber.find_group(key)
        system.server(resolution.server).store_query(
            Query(query_id=query_id, key=key, client="subscriber")
        )

    packet_counts: Counter = Counter()
    rate_window: Counter = Counter()

    def publish(source_index: int, now: float) -> None:
        source = publishers[source_index]
        packet, key_changed = source.next_packet(now)
        client = clients[source.name]
        if key_changed:
            resolution = client.find_group(packet.key, use_cache=False)
        else:
            resolution = client.find_group(packet.key)
        system.deliver_data(resolution.server)
        packet_counts[resolution.server] += 1
        rate_window[(resolution.server, resolution.group)] += 1
        engine.schedule_in(1.0 / source.rate, lambda later: publish(source_index, later))

    def load_check(now: float) -> None:
        # Convert the packets observed in the last window into per-group rates.
        for name in system.server_names():
            system.server(name).reset_interval()
        for (server_name, group), count in rate_window.items():
            server = system.server(server_name)
            if group in server.table and server.table.entry(group).active:
                server.add_group_rate(group, count / config.load_check_period)
        rate_window.clear()
        report = system.run_load_check()
        if report.split_count or report.merge_count:
            print(
                f"t={now:6.1f}s  load check: {report.split_count} split(s), "
                f"{report.merge_count} merge(s); "
                f"{len(system.active_servers())} active servers"
            )
        for client in clients.values():
            client.invalidate_all()

    for index in range(len(publishers)):
        engine.schedule_in(0.01 * index, lambda now, index=index: publish(index, now))
    engine.schedule_every(config.load_check_period, load_check)

    engine.run_until(240.0, max_events=200_000)

    print(f"\nDelivered {sum(packet_counts.values())} readings to {len(packet_counts)} servers")
    busiest = packet_counts.most_common(3)
    for server_name, count in busiest:
        print(f"  {server_name}: {count} readings, "
              f"{len(system.server(server_name).active_groups())} topic groups")
    print("Final deployment:", system.describe())
    system.verify_invariants()


if __name__ == "__main__":
    main()
