# Developer entry points. `make check` is the gate a PR must pass:
# lint (when ruff is available) plus the tier-1 test suite.

PYTEST := PYTHONPATH=src python -m pytest

# Line-coverage gate for `make coverage`: one point below the measured
# coverage at the time the floor was last ratcheted (91.5%); raise it when
# coverage grows, never lower it to admit a regression.
COVERAGE_FLOOR := 90

.PHONY: check lint test coverage bench-smoke bench bench-async bench-sharded bench-socket bench-check bench-baseline bench-paper bench-paper-baseline profile-paper fuzz-smoke

check: lint test

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

test:
	$(PYTEST) -x -q

# The tier-1 suite under the coverage tracer, failing below COVERAGE_FLOOR.
# Uses pytest-cov when installed; otherwise falls back to the stdlib tracer
# in tools/coverage_floor.py (same gate, ~1pt measurement difference).
coverage:
	@if python -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTEST) -q --cov=repro --cov-report=term --cov-fail-under=$(COVERAGE_FLOOR); \
	else \
		echo "pytest-cov not installed; falling back to tools/coverage_floor.py"; \
		PYTHONPATH=src python tools/coverage_floor.py --fail-under $(COVERAGE_FLOOR); \
	fi

# One tiny benchmark configuration — fast enough for every CI run, keeps the
# benchmark modules import-clean and their hot paths executing.
bench-smoke:
	$(PYTEST) -q -m bench_smoke

# The full benchmark suite (regenerates the paper's figures; minutes).
bench:
	$(PYTEST) -q benchmarks

# Wall-clock comparison of the asyncio transport against inline/batching on
# the scaled reference workload (asserts bit-identical metrics as it goes).
bench-async:
	$(PYTEST) -q benchmarks/bench_async.py

# Wall-clock + load-balance comparison of the sharded ring federation
# (shards 1/2/4/8) against the single-ring seed; asserts that shards=1 is
# bit-identical to a run without the knob.
bench-sharded:
	$(PYTEST) -q benchmarks/bench_sharded.py

# Wall-clock + CPU comparison of the multi-process socket transport against
# inline/batching on the 4-shard reference workload (asserts bit-identical
# metrics, worker-side wire work, and — on multi-CPU hosts — >1 aggregate
# core).
bench-socket:
	$(PYTEST) -q -s benchmarks/bench_socket.py

# Regression gate: re-run the reference workloads and fail loudly on any
# metric drift or a >25% wall-clock regression against BENCH_BASELINE.json.
# CI uses `--skip-wallclock` (shared runners time differently); see
# docs/PERFORMANCE.md for the update workflow.
bench-check:
	PYTHONPATH=src python benchmarks/baseline.py --check

# Re-record BENCH_BASELINE.json after an intentional perf/behaviour change.
bench-baseline:
	PYTHONPATH=src python benchmarks/baseline.py --update

# Paper-scale gate: the full Section 6.1 configuration (1000 servers, 100k
# sources, 6-hour scenario), churn-free and churn-heavy, against
# BENCH_PAPER_SCALE.json.  Same semantics as bench-check: metric drift always
# fails, wall clock gated at 25% with retries.
bench-paper:
	PYTHONPATH=src python benchmarks/bench_paper_scale.py --check

# Re-record BENCH_PAPER_SCALE.json after an intentional perf/behaviour change.
bench-paper-baseline:
	PYTHONPATH=src python benchmarks/bench_paper_scale.py --update

# Hot-path table for the churn-heavy paper-scale run (cProfile top-25).
# PROFILE_FLAGS passes extra switches through, e.g.
#   make profile-paper PROFILE_FLAGS="--sort tottime --profile-output /tmp/churn.pstats"
profile-paper:
	PYTHONPATH=src python benchmarks/bench_paper_scale.py --profile $(PROFILE_FLAGS)

# Adversarial schedule fuzz smoke: a fixed-seed, small-budget sweep of
# delivery orders and churn timings over the async transport (single ring,
# 4 static shards and 4 adaptively partitioned shards), each structural
# variant run with both the incremental work-queue balance pass and the
# reference probe-everyone scan (--fuzz-full-scan), with the invariant
# oracle at every quiescent point.  The run is deterministic; it must find
# zero violations (exit 1 otherwise).  See docs/FUZZING.md.
fuzz-smoke:
	PYTHONPATH=src python -m repro fuzz --scale-factor 100 --phase-periods 2 \
		--fuzz-budget 12 --fuzz-seeds 0:2 --fuzz-transports async \
		--fuzz-shards 1,4 --join-rate 0.01 --fail-rate 0.01 --fuzz-full-scan \
		--verify-invariants --quiet --output-dir /tmp/fuzz-smoke
