# Developer entry points. `make check` is the gate a PR must pass:
# lint (when ruff is available) plus the tier-1 test suite.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: check lint test bench-smoke bench bench-check bench-baseline

check: lint test

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

test:
	$(PYTEST) -x -q

# One tiny benchmark configuration — fast enough for every CI run, keeps the
# benchmark modules import-clean and their hot paths executing.
bench-smoke:
	$(PYTEST) -q -m bench_smoke

# The full benchmark suite (regenerates the paper's figures; minutes).
bench:
	$(PYTEST) -q benchmarks

# Regression gate: re-run the reference workloads and fail loudly on any
# metric drift or a >25% wall-clock regression against BENCH_BASELINE.json.
# CI uses `--skip-wallclock` (shared runners time differently); see
# docs/PERFORMANCE.md for the update workflow.
bench-check:
	PYTHONPATH=src python benchmarks/baseline.py --check

# Re-record BENCH_BASELINE.json after an intentional perf/behaviour change.
bench-baseline:
	PYTHONPATH=src python benchmarks/baseline.py --update
