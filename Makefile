# Developer entry points. `make check` is the gate a PR must pass:
# lint (when ruff is available) plus the tier-1 test suite.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: check lint test bench-smoke bench

check: lint test

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

test:
	$(PYTEST) -x -q

# One tiny benchmark configuration — fast enough for every CI run, keeps the
# benchmark modules import-clean and their hot paths executing.
bench-smoke:
	$(PYTEST) -q -m bench_smoke

# The full benchmark suite (regenerates the paper's figures; minutes).
bench:
	$(PYTEST) -q benchmarks
