"""Benchmark E8 — Chord substrate sanity: O(log S) lookup hop counts.

The paper's Section 1.2 relies on the base DHT resolving any key in
O(log S) overlay hops; this benchmark measures the mean hop count of the
bundled Chord substrate as the ring grows and prints the resulting series.
"""

from __future__ import annotations

import math

from repro.dht.hashspace import HashSpace
from repro.dht.ring import ChordRing
from repro.experiments.reporting import format_table
from repro.util.rng import RandomStream

RING_SIZES = (64, 128, 256, 512, 1024, 2048)
LOOKUPS_PER_RING = 200


def _mean_hops(ring: ChordRing, rng: RandomStream, lookups: int) -> float:
    total = 0
    for _ in range(lookups):
        total += ring.find_successor(rng.randbits(ring.space.bits)).hops
    return total / lookups


def test_chord_lookup_hops_scale_logarithmically(benchmark):
    space = HashSpace(bits=24)
    rows = []

    def measure_all():
        results = []
        for size in RING_SIZES:
            ring = ChordRing.build(node_count=size, space=space, rng=RandomStream(size))
            hops = _mean_hops(ring, RandomStream(7), LOOKUPS_PER_RING)
            results.append((size, hops))
        return results

    results = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    for size, hops in results:
        rows.append([size, hops, 0.5 * math.log2(size)])
    print()
    print(format_table(["servers", "mean hops", "0.5 * log2(S)"], rows))
    # Hop counts must grow sub-linearly (logarithmically) with ring size and
    # stay within a small constant factor of the textbook expectation.
    small = dict(results)[RING_SIZES[0]]
    large = dict(results)[RING_SIZES[-1]]
    assert large < small * (RING_SIZES[-1] / RING_SIZES[0]) ** 0.5
    for size, hops in results:
        assert hops <= 2.5 * math.log2(size)


def test_chord_single_lookup_latency(benchmark):
    """Micro-benchmark: wall-clock cost of one lookup on a 1024-node ring."""
    space = HashSpace(bits=24)
    ring = ChordRing.build(node_count=1024, space=space, rng=RandomStream(3))
    rng = RandomStream(11)
    result = benchmark(lambda: ring.find_successor(rng.randbits(24)))
    assert result.owner in ring
