"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or one of
the ablations listed in DESIGN.md).  The heavyweight simulations are run once
per benchmark (``benchmark.pedantic`` with a single round) — the interesting
output is the regenerated figure data, which each benchmark prints, not a
statistically tight timing distribution.

Scale: benchmarks default to a scaled-down configuration (see
``repro.experiments.runner.ExperimentScale.scaled``) so the whole suite runs
in a few minutes.  Set the environment variable ``CLASH_BENCH_PAPER_SCALE=1``
to run the full Section 6.1 configuration instead (much slower).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentScale


def bench_scale(phase_periods: int = 4, query_clients: bool = False) -> ExperimentScale:
    """The experiment scale benchmarks run at (env-switchable to paper scale)."""
    if os.environ.get("CLASH_BENCH_PAPER_SCALE") == "1":
        return ExperimentScale.paper(query_clients=query_clients)
    return ExperimentScale.scaled(
        factor=25, query_clients=query_clients, phase_periods=phase_periods
    )


@pytest.fixture
def scale() -> ExperimentScale:
    """Default benchmark scale."""
    return bench_scale()
