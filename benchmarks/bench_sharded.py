"""Benchmark — the sharded ring federation against the single-ring seed.

Runs the ``scaled(factor=4)`` reference workload (the period-engine hot path
``make bench-check`` pins) over shard counts 1, 2, 4 and 8 on the inline
transport and reports wall-clock, peak load and cross-shard imbalance side
by side.  Three properties are asserted:

* **Seed equivalence** — the ``shards=1`` run routes through
  :class:`~repro.dht.router.SingleRingRouter` and must emit a
  ``PeriodSample`` stream bit-identical to a run that never names the knob
  (sharding off ≡ one shard, so ``make bench-check`` stays byte-identical).
* **Shard-locality invariants** — every sharded run must end with
  ``verify_invariants`` green (group-on-its-shard, no cross-shard links).
* **Bounded overhead** — routing through the federation is a dictionary
  hop plus smaller per-shard rings; a sharded run must stay within
  ``SHARDED_OVERHEAD_BUDGET`` × the single-ring wall-clock.

Run via ``make bench-sharded`` (or ``pytest -q benchmarks/bench_sharded.py``).
"""

from __future__ import annotations

import dataclasses
import time

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentScale
from repro.experiments.shard_scaling import ShardPoint
from repro.sim.simulator import FlowSimulator, SimulationResult

SHARD_LINEUP = (1, 2, 4, 8)

SHARDED_OVERHEAD_BUDGET = 1.5
"""A sharded run may cost at most this multiple of the single-ring
wall-clock.  Lookup walks shrink with per-shard ring size, so sharding
usually *saves* time; the budget guards against a pathological regression in
the routing tier, not a predicted cost."""


def _timed_run(
    shards: int, factor: int = 4, phase_periods: int = 4
) -> tuple[SimulationResult, float]:
    scale = dataclasses.replace(
        ExperimentScale.scaled(factor=factor, phase_periods=phase_periods),
        shards=shards,
    )
    simulator = FlowSimulator(
        config=scale.config(), params=scale.params(), scenario=scale.scenario()
    )
    start = time.perf_counter()
    try:
        result = simulator.run()
        elapsed = time.perf_counter() - start
        simulator.system.verify_invariants()
    finally:
        simulator.transport.close()
    return result, elapsed


def test_sharded_federation_wallclock_and_equivalence(benchmark):
    def run_lineup():
        runs = {shards: _timed_run(shards) for shards in SHARD_LINEUP}
        # The control: the same scale with the shards knob never mentioned.
        scale = ExperimentScale.scaled(factor=4, phase_periods=4)
        simulator = FlowSimulator(
            config=scale.config(), params=scale.params(), scenario=scale.scenario()
        )
        try:
            runs["default"] = (simulator.run(), 0.0)
        finally:
            simulator.transport.close()
        return runs

    runs = benchmark.pedantic(run_lineup, rounds=1, iterations=1)
    default_result, _ = runs.pop("default")
    single_result, single_time = runs[1]
    print()
    print(
        format_table(
            [
                "shards",
                "wall-clock (s)",
                "vs 1 shard",
                "peak load %",
                "imbalance",
                "splits",
                "merges",
            ],
            [
                [
                    shards,
                    f"{elapsed:.3f}",
                    f"{elapsed / single_time:.2f}x",
                    result.metrics.overall_peak_load(),
                    # ShardPoint owns the imbalance aggregation so the
                    # benchmark table and the sweep report cannot diverge.
                    ShardPoint(
                        shards=shards, join_rate=0.0, fail_rate=0.0, result=result
                    ).mean_imbalance,
                    result.total_splits,
                    result.total_merges,
                ]
                for shards, (result, elapsed) in runs.items()
            ],
        )
    )
    # shards=1 is the seed, bit for bit.
    differences = single_result.diff(default_result)
    assert not differences, "; ".join(differences)
    for shards, (result, elapsed) in runs.items():
        if shards == 1:
            continue
        assert all(s.shard_count == shards for s in result.metrics.samples)
        assert elapsed <= single_time * SHARDED_OVERHEAD_BUDGET, (
            f"{shards}-shard run took {elapsed:.3f}s vs single-ring "
            f"{single_time:.3f}s (> {SHARDED_OVERHEAD_BUDGET}x budget)"
        )
