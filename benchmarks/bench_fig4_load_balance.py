"""Benchmark / regeneration of Figure 4 — load distribution, CLASH vs DHT(x) (E2–E5).

Regenerates all four panels of Figure 4 on the shared scaled-down
configuration: maximum server load over time, average server load over time,
CLASH depth variation, and active servers per workload phase.  The printed
tables are the data recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale
from repro.experiments.fig4 import run_figure4
from repro.experiments.reporting import format_series, render_figure4


def test_figure4_clash_vs_fixed_depth_dht(benchmark):
    scale = bench_scale(phase_periods=4)
    result = benchmark.pedantic(
        lambda: run_figure4(scale, fixed_depths=(6, 12, 24)),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure4(result))
    print()
    print(format_series(result.max_load_series()["CLASH"]))
    # The paper's qualitative claims (shape, not absolute values):
    # 1. Coarse fixed-depth DHT melts down under the skewed workload C.
    assert result.baseline_peak_load("DHT(6)") > 2 * result.clash_peak_load()
    # 2. Fine-grained DHT drags in far more servers than CLASH.
    assert result.server_utilisation_advantage("DHT(12)") > 1.5
    assert result.server_utilisation_advantage("DHT(24)") > 1.5
    # 3. The CLASH tree deepens (and becomes more unbalanced) as skew grows.
    clash_phases = {p.workload: p for p in result.results["CLASH"].phase_summaries()}
    assert clash_phases["C"].mean_depth >= clash_phases["A"].mean_depth
    assert clash_phases["C"].depth_spread >= clash_phases["A"].depth_spread


def test_figure4_clash_only_run_time(benchmark):
    """Timing micro-benchmark: one CLASH simulation phase at reduced scale."""
    from repro.sim.simulator import FlowSimulator

    scale = bench_scale(phase_periods=2)
    config, params, scenario = scale.config(), scale.params(), scale.scenario()

    def run_clash():
        return FlowSimulator(config, params, scenario).run()

    result = benchmark.pedantic(run_clash, rounds=1, iterations=1)
    assert len(result.metrics) > 0
