"""Benchmark E8 — the incremental period engine (hot-path regression guard).

The period loop is the simulator's hot path: every LOAD_CHECK_PERIOD the
CLASH deployment re-assigns expected loads and iterates load checks until the
configuration stabilises.  This benchmark runs the ``scaled(factor=4)``
configuration (250 servers, 25,000 sources, thousands of splits/merges) two
ways — with the incremental dirty-group assignment engine and with a forced
from-scratch assignment every iteration — and asserts that

* the two modes produce *identical* ``PeriodSample`` streams (the incremental
  engine is a pure optimisation), and
* the incremental mode is not slower (it skips strictly redundant work).

The wall-clock regression gate against the committed reference numbers lives
in ``benchmarks/baseline.py`` (``make bench-check``).
"""

from __future__ import annotations

import time

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentScale
from repro.sim.simulator import FlowSimulator, SimulationResult


def _build_simulator(force_full_assignment: bool) -> FlowSimulator:
    scale = ExperimentScale.scaled(factor=4, phase_periods=4)
    simulator = FlowSimulator(
        config=scale.config(), params=scale.params(), scenario=scale.scenario()
    )
    simulator._force_full_assignment = force_full_assignment
    return simulator


def _timed_run(force_full_assignment: bool) -> tuple[SimulationResult, float]:
    simulator = _build_simulator(force_full_assignment)
    start = time.perf_counter()
    result = simulator.run()
    return result, time.perf_counter() - start


def test_period_loop_incremental_matches_full_assignment(benchmark):
    def run_both():
        incremental, incremental_time = _timed_run(force_full_assignment=False)
        full, full_time = _timed_run(force_full_assignment=True)
        return incremental, full, incremental_time, full_time

    incremental, full, incremental_time, full_time = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["mode", "wall-clock (s)", "splits", "merges", "final groups"],
            [
                [
                    "incremental",
                    f"{incremental_time:.3f}",
                    incremental.total_splits,
                    incremental.total_merges,
                    incremental.final_active_groups,
                ],
                [
                    "full reassignment",
                    f"{full_time:.3f}",
                    full.total_splits,
                    full.total_merges,
                    full.final_active_groups,
                ],
            ],
        )
    )
    # Identical protocol dynamics, sample for sample and field for field.
    assert incremental.total_splits == full.total_splits
    assert incremental.total_merges == full.total_merges
    assert incremental.final_active_groups == full.final_active_groups
    assert len(incremental.metrics.samples) == len(full.metrics.samples)
    for sample, reference in zip(incremental.metrics.samples, full.metrics.samples):
        assert sample == reference
    # The incremental engine must not be slower than re-assigning everything.
    assert incremental_time <= full_time * 1.10, (
        f"incremental period engine took {incremental_time:.3f}s vs "
        f"{full_time:.3f}s for full reassignment"
    )


def test_period_loop_produces_expected_dynamics(benchmark):
    """The absolute dynamics of the scaled(4) run (guards metric drift)."""
    result, _elapsed = benchmark.pedantic(
        lambda: _timed_run(force_full_assignment=False), rounds=1, iterations=1
    )
    samples = result.metrics.samples
    assert len(samples) == 12  # 3 phases x 4 periods
    # The skewed phases must actually exercise the split/merge machinery.
    assert result.total_splits > 100
    assert result.total_merges > 100
    assert all(sample.max_load_percent > 0.0 for sample in samples)
