"""Benchmark / regeneration of Figure 5 — CLASH communication overhead (E6).

Measures signalling messages per second per server for the three workloads,
for virtual stream lengths Ld = 50 and Ld = 1000, with and without the
persistent-query population (the paper's cases A and B).
"""

from __future__ import annotations

import dataclasses
import time

from benchmarks.conftest import bench_scale
from repro.experiments.fig5 import run_figure5
from repro.experiments.reporting import render_figure5


def test_figure5_communication_overhead(benchmark):
    scale = bench_scale(phase_periods=3)
    result = benchmark.pedantic(
        lambda: run_figure5(scale, stream_lengths=(50.0, 1000.0), include_query_clients=True),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure5(result))
    # Shape assertions mirroring Section 6.3:
    # overheads are clearly lower for longer virtual streams...
    assert result.overhead_ratio_short_vs_long_streams(with_queries=False) > 2.0
    # ...and per-server rates stay modest (the paper reports ~1-12 msg/s/server).
    for case in result.cases:
        for rate in case.messages_per_server_per_second().values():
            assert rate < 100.0


def test_figure5_overhead_with_batching_transport(benchmark):
    """The overhead figure regenerates identically over BatchingTransport.

    Batching coalesces the per-period route resolutions and load-report
    deliveries; the reported message rates must not move at all (the hop
    charges are replayed from the route cache), while wall-clock time drops.
    """
    scale = bench_scale(phase_periods=2)

    def run_both():
        start = time.perf_counter()
        inline = run_figure5(scale, stream_lengths=(1000.0,))
        inline_time = time.perf_counter() - start
        start = time.perf_counter()
        batched = run_figure5(
            dataclasses.replace(scale, transport="batching"), stream_lengths=(1000.0,)
        )
        batched_time = time.perf_counter() - start
        return inline, batched, inline_time, batched_time

    inline, batched, inline_time, batched_time = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print()
    print(
        f"inline {inline_time:.2f}s vs batching {batched_time:.2f}s "
        f"(ratio {batched_time / inline_time:.3f})"
    )
    for inline_case, batched_case in zip(inline.cases, batched.cases):
        inline_rates = inline_case.messages_per_server_per_second()
        batched_rates = batched_case.messages_per_server_per_second()
        for workload, rate in inline_rates.items():
            assert abs(batched_rates[workload] - rate) < 1e-9


def test_figure5_lookup_cost_per_key_change(benchmark):
    """Micro-benchmark: the message cost of a single depth-discovery search."""
    from repro.core.config import ClashConfig
    from repro.core.protocol import ClashSystem
    from repro.keys.identifier import RandomKeyGenerator
    from repro.util.rng import RandomStream
    from repro.workload.distributions import workload_b

    config = ClashConfig(server_capacity=400.0)
    system = ClashSystem.create(config, server_count=64, rng=RandomStream(5))
    spec = workload_b()
    generator = RandomKeyGenerator(
        width=config.key_bits, base_bits=8, rng=RandomStream(6), base_weights=spec.weights
    )
    client = system.make_client("bench")

    def lookup_batch():
        total_messages = 0
        for _ in range(50):
            total_messages += client.find_group(generator.generate(), use_cache=False).messages
        return total_messages / 50

    average_messages = benchmark(lookup_batch)
    # Every lookup costs at least one request/reply pair and should stay far
    # below the exhaustive-scan worst case of 2 * (N + 1).
    assert 2.0 <= average_messages <= 2.0 * (config.key_bits + 1)
