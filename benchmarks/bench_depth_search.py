"""Benchmark E7 — client depth-discovery convergence (Section 5 claim).

The paper claims clients "usually converge to the true depth much faster than
log N".  This benchmark drives the real client/server message protocol over
deployments whose splitting trees were produced by skewed load, and reports
the distribution of probe counts per lookup.
"""

from __future__ import annotations

import time

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.experiments.reporting import format_table
from repro.keys.identifier import IdentifierKey, RandomKeyGenerator
from repro.net.batching import BatchingTransport
from repro.net.inline import InlineTransport
from repro.net.transport import Transport
from repro.util.rng import RandomStream
from repro.util.stats import percentile
from repro.workload.distributions import workload_b, workload_c


def _build_skewed_system(
    seed: int, splits: int, transport: Transport | None = None
) -> ClashSystem:
    config = ClashConfig(server_capacity=400.0)
    system = ClashSystem.create(
        config, server_count=128, rng=RandomStream(seed), transport=transport
    )
    spec = workload_c()
    generator = RandomKeyGenerator(
        width=config.key_bits, base_bits=8, rng=RandomStream(seed + 1), base_weights=spec.weights
    )
    for _ in range(splits):
        key = generator.generate()
        group, owner = system.find_active_group(key)
        if group.depth >= config.effective_max_depth:
            continue
        system.server(owner).set_group_rate(group, 2 * config.server_capacity)
        system.split_server(owner)
    return system


def test_depth_search_converges_faster_than_log_n(benchmark):
    config = ClashConfig()

    def measure():
        system = _build_skewed_system(seed=13, splits=300)
        client = system.make_client("bench-client")
        generator = RandomKeyGenerator(
            width=config.key_bits,
            base_bits=8,
            rng=RandomStream(99),
            base_weights=workload_b().weights,
        )
        probes = []
        for _ in range(400):
            result = client.find_group(generator.generate(), use_cache=False)
            probes.append(result.probes)
        return probes

    probes = benchmark.pedantic(measure, rounds=1, iterations=1)
    mean_probes = sum(probes) / len(probes)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["keys resolved", len(probes)],
                ["mean probes", mean_probes],
                ["median probes", percentile(probes, 50)],
                ["p95 probes", percentile(probes, 95)],
                ["worst case", max(probes)],
                ["log2(N) reference", 4.58],
                ["N + 1 upper bound", 25],
            ],
        )
    )
    # Faster than log N on average (the paper's claim), and never worse than
    # the guaranteed N + 1 bound.
    assert mean_probes < 4.58
    assert max(probes) <= 25


def test_depth_search_batching_transport_speedup(benchmark):
    """BatchingTransport must beat inline dispatch by ≥10% on the hot path.

    The workload is the same skew-split deployment and client probe mix as the
    convergence benchmark above (with a larger probe population, which both
    stabilises the timing and reflects the cache density of a real load-check
    period).  Batching coalesces the per-period DHT route resolutions (the
    probe path resolves a virtual key per ACCEPT_OBJECT), so the identical
    message sequence is delivered with measurably less Python work per
    envelope.
    """

    def run_workload(transport: Transport) -> None:
        system = _build_skewed_system(seed=13, splits=300, transport=transport)
        client = system.make_client("bench-client")
        generator = RandomKeyGenerator(
            width=system.config.key_bits,
            base_bits=8,
            rng=RandomStream(99),
            base_weights=workload_b().weights,
        )
        for _ in range(1200):
            client.find_group(generator.generate(), use_cache=False)

    def best_of(factory, rounds: int = 5) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            run_workload(factory())
            best = min(best, time.perf_counter() - start)
        return best

    def compare() -> tuple[float, float]:
        return best_of(InlineTransport), best_of(BatchingTransport)

    inline_time, batching_time = benchmark.pedantic(compare, rounds=1, iterations=1)
    ratio = batching_time / inline_time
    print()
    print(
        format_table(
            ["transport", "best wall-clock (s)"],
            [
                ["inline", f"{inline_time:.4f}"],
                ["batching", f"{batching_time:.4f}"],
                ["ratio", f"{ratio:.3f}"],
            ],
        )
    )
    assert ratio <= 0.90, (
        f"batching transport was only {100 * (1 - ratio):.1f}% faster "
        f"(inline {inline_time:.4f}s vs batching {batching_time:.4f}s)"
    )


def test_depth_search_on_uniform_tree(benchmark):
    """Control case: a freshly bootstrapped (uniform depth) deployment."""
    config = ClashConfig()
    system = ClashSystem.create(config, server_count=128, rng=RandomStream(21))
    client = system.make_client("bench-client")
    rng = RandomStream(4)

    def lookups():
        total = 0
        for _ in range(100):
            key = IdentifierKey(value=rng.randbits(config.key_bits), width=config.key_bits)
            total += client.find_group(key, use_cache=False).probes
        return total / 100

    mean_probes = benchmark(lookups)
    # With the depth hint equal to the bootstrap depth a single probe suffices.
    assert mean_probes <= 1.5
