"""Paper-scale benchmark gate: the Section 6.1 configuration as a routine run.

Two long-horizon benchmarks at the paper's full scale (1000 servers, 100,000
sources, the 6-hour A → B → C scenario), compared against the committed
``BENCH_PAPER_SCALE.json`` with the same semantics as ``BENCH_BASELINE.json``
(metric drift always fails; wall clock is gated at 25 % with retries):

* ``paper_scale`` — the churn-free reference run.
* ``paper_scale_churn`` — the same scenario with Poisson joins and failures
  at 0.005 events/second each, the configuration that exercised a full
  O(ring) stabilisation per membership event before the incremental repair.

The recorded metrics include the routing-tier work counters
(``ring_finger_recomputations``, memo hit/invalidation counts), so the
incremental-stabilisation win is itself drift-gated: a change that silently
reverts rings to full rebuilds shows up as a metric failure, not merely a
slow run.

Usage (from the repo root, also exposed as ``make bench-paper``)::

    PYTHONPATH=src python benchmarks/bench_paper_scale.py --check
    PYTHONPATH=src python benchmarks/bench_paper_scale.py --check --skip-wallclock
    PYTHONPATH=src python benchmarks/bench_paper_scale.py --update
    PYTHONPATH=src python benchmarks/bench_paper_scale.py --profile

After an intentional perf or behaviour change, re-record with ``--update``
and commit the new ``BENCH_PAPER_SCALE.json`` together with the change.
"""

from __future__ import annotations

import dataclasses
import pathlib
import sys
from typing import Callable

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.baseline import check, make_parser, update  # noqa: E402
from repro.experiments.runner import ExperimentScale  # noqa: E402
from repro.sim.simulator import FlowSimulator, SimulationResult  # noqa: E402

PAPER_BASELINE_PATH = REPO_ROOT / "BENCH_PAPER_SCALE.json"

CHURN_RATE = 0.005
"""Poisson join and failure rate (events/second) of the churn benchmark."""

ROUNDS = 2
"""Timed rounds per benchmark (plus the untimed warm-up).  The paper-scale
runs are long enough that two rounds bound the harness at a few minutes
while still letting --check pick a best round."""


def _round(value: float) -> float:
    return round(value, 9)


def _paper_scale(churn: bool) -> ExperimentScale:
    scale = ExperimentScale.paper()
    if churn:
        scale = dataclasses.replace(scale, join_rate=CHURN_RATE, fail_rate=CHURN_RATE)
    return scale


def _run(scale: ExperimentScale) -> SimulationResult:
    return FlowSimulator(
        config=scale.config(), params=scale.params(), scenario=scale.scenario()
    ).run()


def _metrics(result: SimulationResult) -> dict[str, object]:
    samples = result.metrics.samples
    metrics: dict[str, object] = {
        "total_splits": result.total_splits,
        "total_merges": result.total_merges,
        "final_active_groups": result.final_active_groups,
        "periods": len(samples),
        "server_joins": sum(sample.server_joins for sample in samples),
        "server_failures": sum(sample.server_failures for sample in samples),
        "groups_reassigned": sum(sample.groups_reassigned for sample in samples),
        "split_series": [sample.splits for sample in samples],
        "merge_series": [sample.merges for sample in samples],
        "max_load_series": [_round(sample.max_load_percent) for sample in samples],
        "message_rate_series": [
            _round(sample.messages_per_server_per_second) for sample in samples
        ],
    }
    # The routing-tier work counters are deterministic functions of the seed
    # and scenario, so they are drift-gated like every other metric.
    metrics.update({key: int(value) for key, value in sorted(result.notes.items())})
    return metrics


def bench_paper_scale() -> dict[str, object]:
    """The churn-free paper-scale reference run."""
    return _metrics(_run(_paper_scale(churn=False)))


def bench_paper_scale_churn() -> dict[str, object]:
    """The paper-scale run under Poisson churn at 0.005 joins+fails/second."""
    return _metrics(_run(_paper_scale(churn=True)))


BENCHMARKS: dict[str, Callable[[], dict[str, object]]] = {
    "paper_scale": bench_paper_scale,
    "paper_scale_churn": bench_paper_scale_churn,
}


def profile_churn_run(
    top: int = 25,
    sort: str = "cumtime",
    output: pathlib.Path | None = None,
) -> str:
    """One churn-heavy paper-scale run under cProfile, as a top-N table.

    ``output`` additionally dumps the raw pstats data for offline analysis
    (``python -m pstats PATH``, snakeviz, flameprof, ...).
    """
    import cProfile
    import pstats

    from repro.experiments.reporting import render_profile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        _run(_paper_scale(churn=True))
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    if output is not None:
        stats.dump_stats(str(output))
    return render_profile(stats, top=top, sort=sort)


LOAD_CHECK_PROBE_CEILING = 600_000
"""Hard ceiling on the churn run's ``load_check_probes`` counter, asserted by
``--check`` on top of the exact-drift gate.  The full-scan pass probed every
server every iteration (~2.9M probes at paper scale under churn); the
dirty-driven work queues need well under this many.  A change that quietly
reverts the balance pass to probe-everyone trips this even if it also
re-records the baseline counters."""


def _check_probe_ceiling(path: pathlib.Path) -> int:
    """Assert the committed churn baseline's probe counter is under the ceiling."""
    import json

    data = json.loads(path.read_text())
    probes = data["benchmarks"]["paper_scale_churn"]["metrics"].get("load_check_probes")
    if probes is None:
        print("paper-scale: FAIL churn baseline records no load_check_probes counter")
        return 1
    if probes > LOAD_CHECK_PROBE_CEILING:
        print(
            f"paper-scale: FAIL load_check_probes {probes} exceeds the "
            f"committed ceiling {LOAD_CHECK_PROBE_CEILING} (balance pass "
            "regressed toward probe-everyone)"
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = make_parser(__doc__.splitlines()[0], PAPER_BASELINE_PATH, mode_required=False)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile one churn-heavy paper-scale run and print the hot-path table",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        help="rows in the --profile table (default: 25)",
    )
    parser.add_argument(
        "--sort",
        choices=("cumtime", "tottime"),
        default="cumtime",
        help="ranking column of the --profile table (default: cumtime)",
    )
    parser.add_argument(
        "--profile-output",
        type=pathlib.Path,
        default=None,
        help="also dump the raw cProfile stats to PATH (pstats format)",
    )
    args = parser.parse_args(argv)
    if args.profile:
        print(
            profile_churn_run(
                top=args.profile_top, sort=args.sort, output=args.profile_output
            )
        )
        return 0
    if not (args.check or args.update):
        parser.error("one of --check, --update or --profile is required")
    if args.update:
        return update(args.baseline, BENCHMARKS, ROUNDS, tag="paper-scale")
    status = check(
        args.baseline,
        skip_wallclock=args.skip_wallclock,
        benchmarks=BENCHMARKS,
        rounds=ROUNDS,
        tag="paper-scale",
    )
    ceiling_status = _check_probe_ceiling(args.baseline)
    return status or ceiling_status


if __name__ == "__main__":
    sys.exit(main())
