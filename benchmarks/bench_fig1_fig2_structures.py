"""Regeneration of the paper's structural figures (Figure 1 and Figure 2).

These figures illustrate protocol mechanics rather than measurements; the
benchmark replays the exact splitting sequence of Figure 1 on a live
deployment and prints the resulting logical tree and the splitting server's
work table (Figure 2 layout).
"""

from __future__ import annotations

from repro.experiments.fig1_fig2 import run_figure1_figure2


def test_figure1_and_figure2_structures(benchmark):
    result = benchmark.pedantic(run_figure1_figure2, rounds=1, iterations=1)
    print()
    print("Figure 1 — binary splitting tree")
    print(result.tree_text)
    print()
    print("Figure 2 — server work table")
    print(result.table_text)
    # The paper's leaf set after the three splits of Figure 1.
    assert result.leaf_groups == ["0110*", "011100*", "011101*", "01111*"]
    # The splitting server retains the left spine (0110*) and records the
    # split of the root entry, exactly as in Figure 2's structure.
    assert "0110*" in result.table_text
    assert "-1" in result.table_text
