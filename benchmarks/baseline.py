"""Benchmark regression baseline: record and check reference numbers.

Performance work on the period loop is only safe when two things are pinned
down: the *metrics* every benchmark workload produces (splits, merges,
message counts — these must never drift under a perf refactor) and the
*wall-clock* cost (which must not quietly regress).  This module runs three
deterministic benchmark workloads and compares them against the committed
``BENCH_BASELINE.json``:

* ``bench_depth_search`` — the skew-split deployment + 400 client probes.
* ``bench_fig5_overhead`` — the Figure 5 signalling-overhead regeneration.
* ``bench_period_loop`` — a full CLASH flow simulation at
  ``ExperimentScale.scaled(factor=4)``, the period-engine hot path.

Usage (from the repo root, also exposed as ``make bench-check``)::

    PYTHONPATH=src python benchmarks/baseline.py --check
    PYTHONPATH=src python benchmarks/baseline.py --check --skip-wallclock
    PYTHONPATH=src python benchmarks/baseline.py --update

``--check`` fails loudly (exit code 1) on *any* metric drift, or on a
wall-clock regression beyond ``WALLCLOCK_TOLERANCE`` (25 %).  CI passes
``--skip-wallclock`` because shared runners are not comparable to the machine
that recorded the baseline; metric equality is always enforced.  After an
intentional perf or behaviour change, re-record with ``--update`` and commit
the new baseline together with the change.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.bench_depth_search import _build_skewed_system  # noqa: E402
from repro.experiments.fig5 import run_figure5  # noqa: E402
from repro.experiments.runner import ExperimentScale  # noqa: E402
from repro.keys.identifier import RandomKeyGenerator  # noqa: E402
from repro.sim.simulator import FlowSimulator  # noqa: E402
from repro.util.rng import RandomStream  # noqa: E402
from repro.workload.distributions import workload_b  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_BASELINE.json"
WALLCLOCK_TOLERANCE = 1.25
"""A run slower than baseline × this factor fails the wall-clock gate."""

WALLCLOCK_RETRIES = 3
"""Extra timed rounds granted to a benchmark over its wall-clock budget
before the gate fails (scheduler contention can slow a whole measurement
window; genuinely regressed code stays over budget across retries)."""


def _round(value: float) -> float:
    # Stored metrics are rounded so the JSON is stable across dump/load.
    return round(value, 9)


def bench_depth_search() -> dict[str, object]:
    """The depth-discovery workload of benchmarks/bench_depth_search.py.

    Reuses that module's ``_build_skewed_system`` so the committed baseline
    always guards exactly the deployment the benchmark itself runs.
    """
    system = _build_skewed_system(seed=13, splits=300)
    config = system.config
    client = system.make_client("baseline-client")
    probe_gen = RandomKeyGenerator(
        width=config.key_bits, base_bits=8, rng=RandomStream(99), base_weights=workload_b().weights
    )
    total_probes = 0
    total_messages = 0
    for _ in range(400):
        result = client.find_group(probe_gen.generate(), use_cache=False)
        total_probes += result.probes
        total_messages += result.messages
    return {
        "total_probes": total_probes,
        "total_messages": total_messages,
        "active_groups": len(system.active_groups()),
    }


def bench_fig5_overhead() -> dict[str, object]:
    """The Figure 5 signalling-overhead regeneration (reduced scale)."""
    scale = ExperimentScale.scaled(factor=25, phase_periods=2)
    result = run_figure5(scale, stream_lengths=(1000.0,))
    metrics: dict[str, object] = {}
    for case in result.cases:
        label = f"Ld={case.mean_stream_length:g},queries={case.query_clients}"
        for workload, rate in sorted(case.messages_per_server_per_second().items()):
            metrics[f"{label},workload={workload}"] = _round(rate)
        metrics[f"{label},total_splits"] = case.result.total_splits
        metrics[f"{label},total_merges"] = case.result.total_merges
    return metrics


def bench_period_loop() -> dict[str, object]:
    """One CLASH flow simulation at scaled(factor=4): the period-engine hot path."""
    scale = ExperimentScale.scaled(factor=4, phase_periods=4)
    result = FlowSimulator(
        config=scale.config(), params=scale.params(), scenario=scale.scenario()
    ).run()
    samples = result.metrics.samples
    return {
        "total_splits": result.total_splits,
        "total_merges": result.total_merges,
        "final_active_groups": result.final_active_groups,
        "periods": len(samples),
        "split_series": [sample.splits for sample in samples],
        "merge_series": [sample.merges for sample in samples],
        "max_load_series": [_round(sample.max_load_percent) for sample in samples],
        "message_rate_series": [
            _round(sample.messages_per_server_per_second) for sample in samples
        ],
    }


BENCHMARKS: dict[str, Callable[[], dict[str, object]]] = {
    "bench_depth_search": bench_depth_search,
    "bench_fig5_overhead": bench_fig5_overhead,
    "bench_period_loop": bench_period_loop,
}


ROUNDS = 3
"""Timed rounds per benchmark.  One untimed warm-up round runs first so
interpreter/import/allocator cold-start never lands in the numbers — and
doubles as a determinism check on the metrics.

The harness is deliberately asymmetric against scheduler noise: ``--update``
records the *median* round, while ``--check`` compares its *best* round
against the recorded value.  Noise only ever makes a round slower, so the
best round is the closest observable to the code's true cost, and checking
it against a median-recorded baseline leaves natural headroom on a
contended machine without loosening the regression tolerance."""


def run_all(
    benchmarks: dict[str, Callable[[], dict[str, object]]] | None = None,
    rounds: int | None = None,
    tag: str = "baseline",
) -> dict[str, dict[str, object]]:
    """Run a benchmark set, returning metrics + best/median timings.

    The harness is shared: ``benchmarks/bench_paper_scale.py`` runs its own
    benchmark dict (and round count) through the same warm-up, determinism
    assertion and best/median bookkeeping.
    """
    if benchmarks is None:
        benchmarks = BENCHMARKS
    if rounds is None:
        rounds = ROUNDS
    results: dict[str, dict[str, object]] = {}
    for name, runner in benchmarks.items():
        metrics = runner()  # warm-up, untimed
        times: list[float] = []
        for _timed_round in range(rounds):
            start = time.perf_counter()
            round_metrics = runner()
            times.append(time.perf_counter() - start)
            if round_metrics != metrics:
                raise AssertionError(
                    f"{name} is not deterministic: two rounds produced different metrics"
                )
        times.sort()
        best = times[0]
        median = times[len(times) // 2]
        results[name] = {
            "wall_clock_seconds": round(median, 4),
            "best_wall_clock_seconds": round(best, 4),
            "metrics": metrics,
        }
        print(f"[{tag}] {name}: best {best:.3f}s / median {median:.3f}s of {rounds}")
    return results


def update(
    path: pathlib.Path,
    benchmarks: dict[str, Callable[[], dict[str, object]]] | None = None,
    rounds: int | None = None,
    tag: str = "baseline",
) -> int:
    results = run_all(benchmarks, rounds, tag=tag)
    payload = {
        "wallclock_tolerance": WALLCLOCK_TOLERANCE,
        "benchmarks": results,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"[{tag}] wrote {path}")
    return 0


def check(
    path: pathlib.Path,
    skip_wallclock: bool,
    benchmarks: dict[str, Callable[[], dict[str, object]]] | None = None,
    rounds: int | None = None,
    tag: str = "baseline",
) -> int:
    if benchmarks is None:
        benchmarks = BENCHMARKS
    if not path.exists():
        print(f"[{tag}] FAIL: no baseline at {path}; run --update first", file=sys.stderr)
        return 1
    baseline = json.loads(path.read_text(encoding="utf-8"))
    tolerance = baseline.get("wallclock_tolerance", WALLCLOCK_TOLERANCE)
    results = run_all(benchmarks, rounds, tag=tag)
    failures: list[str] = []
    for name, current in results.items():
        reference = baseline["benchmarks"].get(name)
        if reference is None:
            failures.append(f"{name}: not present in the baseline (run --update)")
            continue
        if current["metrics"] != reference["metrics"]:
            for key in sorted(set(current["metrics"]) | set(reference["metrics"])):
                got = current["metrics"].get(key)
                want = reference["metrics"].get(key)
                if got != want:
                    failures.append(f"{name}: metric {key!r} drifted: {want!r} -> {got!r}")
        if not skip_wallclock:
            budget = reference["wall_clock_seconds"] * tolerance
            observed = current["best_wall_clock_seconds"]
            for _retry in range(WALLCLOCK_RETRIES):
                if observed <= budget:
                    break
                # A transiently contended machine can push every round of a
                # window over budget; re-measure before declaring a real
                # regression.  Genuine slow code stays slow across retries.
                print(
                    f"[{tag}] {name}: best {observed:.3f}s over budget "
                    f"{budget:.3f}s, re-measuring"
                )
                start = time.perf_counter()
                benchmarks[name]()
                observed = min(observed, time.perf_counter() - start)
            if observed > budget:
                failures.append(
                    f"{name}: best wall clock {observed:.3f}s exceeds median baseline "
                    f"{reference['wall_clock_seconds']:.3f}s × {tolerance} "
                    f"= {budget:.3f}s"
                )
    if failures:
        print(f"[{tag}] FAIL ({len(failures)} issue(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    gates = "metrics" if skip_wallclock else "metrics + wall clock"
    print(f"[{tag}] OK: {len(results)} benchmark(s) match the baseline ({gates})")
    return 0


def make_parser(
    description: str, default_path: pathlib.Path, mode_required: bool = True
) -> argparse.ArgumentParser:
    """The shared --check/--update/--skip-wallclock/--baseline argument set.

    ``mode_required=False`` lets a caller add further modes of its own (the
    paper-scale benchmark adds ``--profile``) and enforce the choice itself.
    """
    parser = argparse.ArgumentParser(description=description)
    mode = parser.add_mutually_exclusive_group(required=mode_required)
    mode.add_argument("--check", action="store_true", help="compare against the baseline")
    mode.add_argument("--update", action="store_true", help="re-record the baseline")
    parser.add_argument(
        "--skip-wallclock",
        action="store_true",
        help="enforce only metric equality (for CI machines with unrelated timing)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=default_path,
        help=f"baseline file location (default: {default_path})",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = make_parser(__doc__.splitlines()[0], BASELINE_PATH)
    args = parser.parse_args(argv)
    if args.update:
        return update(args.baseline)
    return check(args.baseline, skip_wallclock=args.skip_wallclock)


if __name__ == "__main__":
    sys.exit(main())
