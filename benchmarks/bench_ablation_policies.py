"""Ablation A1 — does the split-selection policy matter?

The paper leaves the choice of which group an overloaded server sheds outside
the core protocol and uses "hottest group" in its implementation.  This
ablation runs the same skewed scenario with the hottest-group, random and
round-robin policies and compares how quickly the worst-case server load is
brought under control and how many splits each policy spends doing so.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale
from repro.core.policy import (
    HottestGroupSplitPolicy,
    RandomGroupSplitPolicy,
    RoundRobinSplitPolicy,
)
from repro.experiments.reporting import format_table
from repro.sim.simulator import FlowSimulator
from repro.util.rng import RandomStream


def _run_with_policy(policy_name: str):
    scale = bench_scale(phase_periods=3)
    config, params, scenario = scale.config(), scale.params(), scale.scenario()
    factories = {
        "hottest": lambda: HottestGroupSplitPolicy(),
        "random": lambda: RandomGroupSplitPolicy(RandomStream(1234)),
        "round-robin": lambda: RoundRobinSplitPolicy(),
    }
    simulator = FlowSimulator(config, params, scenario)
    # Install the requested policy on every server (the factory hook on
    # ClashSystem covers construction time; here we swap post-construction to
    # reuse the identical ring placement across policies).
    for server in simulator.system.servers().values():
        server._split_policy = factories[policy_name]()
    return simulator.run()


def test_split_policy_ablation(benchmark):
    def run_all():
        return {name: _run_with_policy(name) for name in ("hottest", "random", "round-robin")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        phase_c = [p for p in result.phase_summaries() if p.workload == "C"][0]
        rows.append(
            [
                name,
                result.metrics.overall_peak_load(),
                phase_c.mean_max_load_percent,
                result.total_splits,
                phase_c.mean_active_servers,
            ]
        )
    print()
    print(
        format_table(
            ["split policy", "peak load %", "C: mean max load %", "total splits", "C: active servers"],
            rows,
        )
    )
    by_name = {row[0]: row for row in rows}
    # Every policy must eventually control the hotspot (they all split until
    # the overload clears), but the hottest-group policy should not need more
    # splits than the alternatives to do it.
    assert by_name["hottest"][3] <= by_name["random"][3] * 1.2
    assert by_name["hottest"][3] <= by_name["round-robin"][3] * 1.2
