"""Ablation A2 — CLASH vs the related-work load balancers (Section 2).

Compares three ways of handling the paper's highly skewed workload C on the
same server pool:

* CLASH (content-aware binary splitting),
* virtual-server migration (Rao et al. [13]) — moves whole virtual servers,
  so it cannot sub-divide a single hot key region, and
* power-of-2-choices placement (Byers et al. [5]) — balances object counts
  but scatters content-related objects across servers.

The printed table quantifies both the hotspot control and the content
clustering each scheme achieves.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale
from repro.baselines.power_of_d import PowerOfDChoicesPlacer
from repro.baselines.virtual_server_lb import VirtualServerBalancer
from repro.dht.hashspace import HashSpace
from repro.dht.ring import ChordRing
from repro.experiments.reporting import format_table
from repro.keys.identifier import IdentifierKey, RandomKeyGenerator
from repro.keys.keygroup import KeyGroup
from repro.sim.loadmeasure import LoadMeasure
from repro.sim.simulator import FlowSimulator
from repro.util.rng import RandomStream
from repro.workload.distributions import workload_c
from repro.workload.scenario import PhasedScenario, ScenarioPhase


def _clash_row(scale) -> list:
    scenario = PhasedScenario([ScenarioPhase(spec=workload_c(), duration=scale.phase_duration)])
    result = FlowSimulator(scale.config(), scale.params(), scenario).run()
    phase = result.phase_summaries()[0]
    # Content clustering: how many servers share the hottest base value's keys.
    simulator_groups = result.final_active_groups
    return ["CLASH", phase.mean_max_load_percent, phase.mean_active_servers, simulator_groups]


def _virtual_server_row(scale) -> list:
    config = scale.config()
    measure = LoadMeasure(
        spec=workload_c(), total_rate=scale.source_count * workload_c().source_rate
    )
    balancer = VirtualServerBalancer(capacity=config.server_capacity)
    for index in range(scale.server_count):
        balancer.add_physical_node(f"m{index}")
    # Each of the 2^6 fixed key groups is one "virtual server" assigned by hash.
    rng = RandomStream(77)
    for prefix in range(1 << 6):
        group = KeyGroup(prefix=prefix, depth=6, width=config.key_bits)
        load = measure.group_rate(group)
        balancer.assign_virtual_server(f"m{rng.randint(0, scale.server_count - 1)}", f"v{prefix}", load)
    balancer.balance()
    utilisations = balancer.node_utilisations()
    active = sum(1 for value in balancer.node_loads().values() if value > 0)
    return [
        "virtual-server migration",
        100.0 * max(utilisations.values()),
        float(active),
        1 << 6,
    ]


def _power_of_d_row(scale) -> list:
    config = scale.config()
    ring = ChordRing.build(
        node_count=scale.server_count, space=HashSpace(bits=config.hash_bits), rng=RandomStream(3)
    )
    placer = PowerOfDChoicesPlacer(ring, choices=2)
    generator = RandomKeyGenerator(
        width=config.key_bits, base_bits=8, rng=RandomStream(5), base_weights=workload_c().weights
    )
    per_object_load = (
        scale.source_count * workload_c().source_rate / 5000.0
    )  # 5000 placed objects carry the full offered load
    keys = generator.generate_many(5000)
    placer.place_all(keys, load=per_object_load)
    loads = placer.server_loads()
    active = sum(1 for value in loads.values() if value > 0)
    # Clustering loss: how many servers the hottest base value's objects span.
    hottest_base = max(range(256), key=lambda value: workload_c().weights[value])
    related = [key for key in keys if key.prefix(8) == hottest_base]
    spanned = placer.servers_spanned(related)
    return [
        "power-of-2-choices",
        100.0 * max(loads.values()) / config.server_capacity,
        float(active),
        spanned,
    ]


def test_baseline_ablation_against_clash(benchmark):
    scale = bench_scale(phase_periods=2)

    def run_all():
        return [_clash_row(scale), _virtual_server_row(scale), _power_of_d_row(scale)]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["scheme", "max load %", "servers used", "groups/servers for hot content"],
            rows,
        )
    )
    clash_row, virtual_row, power_row = rows
    # CLASH bounds the hotspot better than whole-virtual-server migration,
    # which cannot split the single hot region.
    assert clash_row[1] < virtual_row[1]
    # Power-of-d uses (roughly) the whole pool; CLASH stays on a fraction.
    assert clash_row[2] < power_row[2]
