"""Extension experiment E9 — range-query replication: CLASH vs fixed-depth DHT.

Section 7 of the paper argues that CLASH will lower the replication overhead
of range queries because it clusters contiguous key ranges on few servers.
This benchmark builds a CLASH deployment shaped by the skewed workload C,
issues range queries of several sizes, and compares the number of servers
each query must be sent to under CLASH versus under fixed-depth DHT(12) and
DHT(24).
"""

from __future__ import annotations

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.core.range_query import KeyRange, RangeQueryPlanner, fixed_depth_replica_count
from repro.experiments.reporting import format_table
from repro.keys.identifier import RandomKeyGenerator
from repro.util.rng import RandomStream
from repro.workload.distributions import workload_c

RANGE_SIZES_BITS = (10, 14, 18)  # ranges covering 2^k consecutive keys
QUERIES_PER_SIZE = 40


def _build_deployment() -> ClashSystem:
    config = ClashConfig(server_capacity=400.0)
    system = ClashSystem.create(config, server_count=128, rng=RandomStream(17))
    generator = RandomKeyGenerator(
        width=config.key_bits, base_bits=8, rng=RandomStream(18), base_weights=workload_c().weights
    )
    for _ in range(250):
        key = generator.generate()
        group, owner = system.find_active_group(key)
        if group.depth >= config.effective_max_depth:
            continue
        system.server(owner).set_group_rate(group, 2 * config.server_capacity)
        system.split_server(owner)
    return system


def test_range_query_replication_overhead(benchmark):
    def measure():
        system = _build_deployment()
        planner = RangeQueryPlanner(system)
        rng = RandomStream(77)
        key_bits = system.config.key_bits
        rows = []
        for size_bits in RANGE_SIZES_BITS:
            size = 1 << size_bits
            clash_total = 0.0
            dht12_total = 0.0
            dht24_total = 0.0
            for _ in range(QUERIES_PER_SIZE):
                low = rng.randint(0, (1 << key_bits) - size)
                key_range = KeyRange(low=low, high=low + size - 1, width=key_bits)
                clash_total += planner.plan(key_range).replica_count
                dht12_total += min(fixed_depth_replica_count(key_range, 12), 128)
                dht24_total += min(fixed_depth_replica_count(key_range, 24), 128)
            rows.append(
                [
                    f"2^{size_bits} keys",
                    clash_total / QUERIES_PER_SIZE,
                    dht12_total / QUERIES_PER_SIZE,
                    dht24_total / QUERIES_PER_SIZE,
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["range size", "CLASH replicas", "DHT(12) replicas (cap 128)", "DHT(24) replicas (cap 128)"],
            rows,
        )
    )
    # CLASH must need no more replicas than a fine-grained fixed-depth DHT,
    # and for large ranges the advantage should be substantial.
    for row in rows:
        assert row[1] <= row[2] + 1e-9
    assert rows[-1][1] * 2 < rows[-1][3]
