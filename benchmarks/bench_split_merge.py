"""Micro-benchmarks of the core protocol operations (split, merge, table lookups).

Not a figure from the paper, but the operations whose costs determine how
quickly a CLASH deployment can react within one LOAD_CHECK_PERIOD; recorded in
EXPERIMENTS.md alongside the figure reproductions.
"""

from __future__ import annotations

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream


def _fresh_system(seed: int = 3, servers: int = 64) -> ClashSystem:
    config = ClashConfig(server_capacity=400.0)
    return ClashSystem.create(config, server_count=servers, rng=RandomStream(seed))


def test_split_throughput(benchmark):
    """How many splits per second the redirection layer can orchestrate."""

    def do_splits():
        system = _fresh_system()
        rng = RandomStream(8)
        performed = 0
        for _ in range(200):
            groups = list(system.active_groups().items())
            group, owner = groups[rng.randint(0, len(groups) - 1)]
            if group.depth >= system.config.effective_max_depth:
                continue
            system.server(owner).set_group_rate(group, 2 * system.config.server_capacity)
            outcome = system.split_server(owner)
            performed += bool(outcome and outcome.shed)
        system.verify_invariants()
        return performed

    performed = benchmark.pedantic(do_splits, rounds=1, iterations=1)
    assert performed > 150


def test_merge_throughput(benchmark):
    """Cost of a full cool-down: consolidating a heavily split deployment."""

    def split_then_merge():
        system = _fresh_system(seed=5)
        rng = RandomStream(9)
        for _ in range(150):
            groups = list(system.active_groups().items())
            group, owner = groups[rng.randint(0, len(groups) - 1)]
            if group.depth >= system.config.effective_max_depth:
                continue
            system.server(owner).set_group_rate(group, 2 * system.config.server_capacity)
            system.split_server(owner)
        merges = 0
        for _ in range(40):
            for server in system.servers().values():
                server.reset_interval()
            report = system.run_load_check()
            merges += report.merge_count
            if report.merge_count == 0:
                break
        system.verify_invariants()
        return merges

    merges = benchmark.pedantic(split_then_merge, rounds=1, iterations=1)
    assert merges > 100


def test_accept_object_handling_rate(benchmark):
    """Server-side cost of handling ACCEPT_OBJECT probes."""
    system = _fresh_system(seed=7)
    config = system.config
    rng = RandomStream(11)
    keys = [
        IdentifierKey(value=rng.randbits(config.key_bits), width=config.key_bits)
        for _ in range(500)
    ]

    def route_all():
        replies = 0
        for key in keys:
            _reply, _cost = system.route_accept_object(key, config.initial_depth, "bench")
            replies += 1
        return replies

    assert benchmark(route_all) == 500
