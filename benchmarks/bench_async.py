"""Benchmark — the asyncio transport against inline and batching.

Runs the scaled reference workload (the ``scaled(factor=4)`` configuration
``make bench-check`` pins, the period-engine hot path) once per transport and
reports wall-clock side by side.  Two properties are asserted:

* **Metric equivalence** — the async run's ``PeriodSample`` stream is
  bit-identical to inline's (the same contract the golden test harness
  enforces at a smaller scale); batching must match too.
* **Bounded overhead** — stepping an asyncio loop per exchange costs real
  Python time; the async run must stay within ``ASYNC_OVERHEAD_BUDGET`` × the
  inline wall-clock so the overhead cannot quietly grow into unusability.

Run via ``make bench-async`` (or ``pytest -q benchmarks/bench_async.py``).
"""

from __future__ import annotations

import time

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentScale
from repro.sim.simulator import FlowSimulator, SimulationResult

TRANSPORT_LINEUP = ("inline", "batching", "async")

ASYNC_OVERHEAD_BUDGET = 5.0
"""The async run may cost at most this multiple of inline wall-clock.

Generous on purpose: the asyncio loop's value is awaitable handlers and
concurrency semantics, not raw speed — the budget guards against pathological
regressions (accidental re-entry, busy-wait loops), not against the inherent
per-exchange loop-step cost."""


def _timed_run(transport: str, factor: int = 4, phase_periods: int = 4) -> tuple[SimulationResult, float]:
    scale = ExperimentScale.scaled(factor=factor, phase_periods=phase_periods)
    simulator = FlowSimulator(
        config=scale.config(),
        params=scale.params(transport=transport),
        scenario=scale.scenario(),
    )
    start = time.perf_counter()
    try:
        result = simulator.run()
    finally:
        simulator.transport.close()
    return result, time.perf_counter() - start


def _assert_streams_identical(result: SimulationResult, reference: SimulationResult) -> None:
    differences = result.diff(reference)
    assert not differences, "; ".join(differences)


def test_async_transport_wallclock_and_equivalence(benchmark):
    def run_lineup():
        return {kind: _timed_run(kind) for kind in TRANSPORT_LINEUP}

    lineup = benchmark.pedantic(run_lineup, rounds=1, iterations=1)
    inline_result, inline_time = lineup["inline"]
    print()
    print(
        format_table(
            ["transport", "wall-clock (s)", "vs inline", "splits", "merges", "final groups"],
            [
                [
                    kind,
                    f"{elapsed:.3f}",
                    f"{elapsed / inline_time:.2f}x",
                    result.total_splits,
                    result.total_merges,
                    result.final_active_groups,
                ]
                for kind, (result, elapsed) in lineup.items()
            ],
        )
    )
    for kind in ("batching", "async"):
        _assert_streams_identical(lineup[kind][0], inline_result)
    async_time = lineup["async"][1]
    assert async_time <= inline_time * ASYNC_OVERHEAD_BUDGET, (
        f"async transport took {async_time:.3f}s vs inline {inline_time:.3f}s "
        f"(> {ASYNC_OVERHEAD_BUDGET}x budget)"
    )
