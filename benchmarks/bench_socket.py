"""Benchmark — the multi-process socket transport against inline and batching.

Runs the 4-shard ``scaled(factor=4)`` reference workload once per transport
and reports wall-clock plus CPU accounting side by side.  Three properties
are asserted:

* **Metric equivalence** — the socket run's ``PeriodSample`` stream is
  bit-identical to inline's (the golden contract its registry entry claims);
  batching must match too.
* **Multi-core execution** — the socket run must decode envelopes inside its
  worker processes and burn measurable CPU time there (``os.times()``
  children counters); on hosts with more than one CPU the run's aggregate
  CPU rate (coordinator + workers over wall-clock) must additionally exceed
  one core — the whole point of taking the message plane out of process.
* **Bounded overhead** — framing every envelope and crossing a socket costs
  real time; the socket run must stay within ``SOCKET_OVERHEAD_BUDGET`` ×
  the inline wall-clock so the IPC cost cannot quietly grow unbounded.

Run via ``make bench-socket`` (or ``pytest -q benchmarks/bench_socket.py``).
The paper-scale variant of this comparison is recorded in
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentScale
from repro.sim.simulator import FlowSimulator, SimulationResult

TRANSPORT_LINEUP = ("inline", "batching", "socket")

SHARDS = 4

SOCKET_OVERHEAD_BUDGET = 6.0
"""The socket run may cost at most this multiple of inline wall-clock.

Generous on purpose: at benchmark scale the run is dominated by protocol
traffic, and every request pays a serialize + socket round-trip that inline
dispatches as a function call.  The budget guards against pathological
regressions (a stalled worker, quadratic framing), not against the inherent
IPC cost — which shrinks relative to handler work as scale grows (see
docs/PERFORMANCE.md for the paper-scale numbers)."""


@dataclasses.dataclass
class _CpuSample:
    wall: float
    self_cpu: float
    workers_cpu: float
    #: Envelopes decoded inside worker processes (socket runs only) — the
    #: scheduling-independent proof that the wire plane ran out of process.
    worker_envelopes: int = 0

    @property
    def cores(self) -> float:
        return (self.self_cpu + self.workers_cpu) / self.wall if self.wall else 0.0


def _timed_run(
    transport: str, factor: int = 4, phase_periods: int = 4
) -> tuple[SimulationResult, _CpuSample]:
    scale = dataclasses.replace(
        ExperimentScale.scaled(factor=factor, phase_periods=phase_periods),
        shards=SHARDS,
        transport=transport,
    )
    simulator = FlowSimulator(
        config=scale.config(), params=scale.params(), scenario=scale.scenario()
    )
    before = os.times()
    start = time.perf_counter()
    try:
        result = simulator.run()
        wall = time.perf_counter() - start
        after = os.times()
        simulator.system.verify_invariants()
    finally:
        # run() already closed the transport; idempotent by contract.
        simulator.transport.close()
    worker_stats = getattr(simulator.transport, "final_worker_stats", {})
    sample = _CpuSample(
        wall=wall,
        self_cpu=(after.user - before.user) + (after.system - before.system),
        # Workers' CPU folds into the children counters once close() reaps
        # them, which run() guarantees happened before `after` was read.
        workers_cpu=(after.children_user - before.children_user)
        + (after.children_system - before.children_system),
        worker_envelopes=sum(
            counters.get("envelopes_decoded", 0) for counters in worker_stats.values()
        ),
    )
    return result, sample


def _assert_streams_identical(result: SimulationResult, reference: SimulationResult) -> None:
    differences = result.diff(reference)
    assert not differences, "; ".join(differences)


def test_socket_transport_multicore_and_equivalence(benchmark):
    def run_lineup():
        return {kind: _timed_run(kind) for kind in TRANSPORT_LINEUP}

    lineup = benchmark.pedantic(run_lineup, rounds=1, iterations=1)
    inline_result, inline_sample = lineup["inline"]
    print()
    print(
        format_table(
            ["transport", "wall-clock (s)", "vs inline", "cpu self (s)", "cpu workers (s)", "cores"],
            [
                [
                    kind,
                    f"{sample.wall:.3f}",
                    f"{sample.wall / inline_sample.wall:.2f}x",
                    f"{sample.self_cpu:.3f}",
                    f"{sample.workers_cpu:.3f}",
                    f"{sample.cores:.2f}",
                ]
                for kind, (result, sample) in lineup.items()
            ],
        )
    )
    for kind in ("batching", "socket"):
        _assert_streams_identical(lineup[kind][0], inline_result)
    socket_sample = lineup["socket"][1]
    assert socket_sample.worker_envelopes > 0, (
        "no envelope was decoded inside a worker process — the wire plane "
        "did not leave the coordinator"
    )
    assert socket_sample.workers_cpu > 0.0, (
        "the socket run burned no CPU in its worker processes — the wire "
        "plane did not leave the coordinator"
    )
    if (os.cpu_count() or 1) > 1:
        assert socket_sample.cores > 1.0, (
            f"socket run used {socket_sample.cores:.2f} aggregate cores on a "
            f"{os.cpu_count()}-CPU host; the multi-process transport must "
            "exceed a single core"
        )
    else:
        # A single-CPU host cannot exceed one core no matter how parallel
        # the program is; the worker CPU/decode assertions above are the
        # multi-process evidence there.
        print(f"single-CPU host: skipping the >1-core assertion "
              f"(aggregate {socket_sample.cores:.2f} cores measured)")
    assert socket_sample.wall <= inline_sample.wall * SOCKET_OVERHEAD_BUDGET, (
        f"socket transport took {socket_sample.wall:.3f}s vs inline "
        f"{inline_sample.wall:.3f}s (> {SOCKET_OVERHEAD_BUDGET}x budget)"
    )
