"""Benchmark / regeneration of Figure 3 — the workload skew profiles (E1).

Prints the expected number of clients per base-key value bin for workloads A,
B and C, together with skew statistics, mirroring the three curves of the
paper's Figure 3.
"""

from __future__ import annotations

from repro.experiments.fig3 import run_figure3
from repro.experiments.reporting import render_figure3


def test_figure3_workload_profiles(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure3(population=100_000, sample_size=20_000),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure3(result))
    # Sanity conditions matching the paper's description of the workloads.
    assert result.skew["A"]["max_over_mean"] < result.skew["C"]["max_over_mean"]
    assert result.skew["C"]["hottest_window_share"] > 0.2


def test_figure3_key_generation_throughput(benchmark):
    """Micro-benchmark: drawing identifier keys from the skewed generator."""
    from repro.keys.identifier import RandomKeyGenerator
    from repro.util.rng import RandomStream
    from repro.workload.distributions import workload_c

    spec = workload_c()
    generator = RandomKeyGenerator(
        width=24, base_bits=8, rng=RandomStream(1), base_weights=spec.weights
    )
    keys = benchmark(lambda: generator.generate_many(1000))
    assert len(keys) == 1000
