"""Small argument-validation helpers.

Configuration objects in this code base validate eagerly at construction time
(fail fast, with a message naming the offending parameter) rather than deep in
the simulation loop.  These helpers keep those checks one-liners.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_type",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_power_of_two",
]


def check_type(name: str, value: Any, expected_type: type | tuple[type, ...]) -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected_type``.

    Booleans are rejected when an int is expected, since ``True`` silently
    passing as ``1`` is a common source of configuration bugs.
    """
    if expected_type is int or (
        isinstance(expected_type, tuple) and int in expected_type and float not in expected_type
    ):
        if isinstance(value, bool):
            raise TypeError(f"{name} must be an int, got bool")
    if not isinstance(value, expected_type):
        expected_name = (
            expected_type.__name__
            if isinstance(expected_type, type)
            else " or ".join(t.__name__ for t in expected_type)
        )
        raise TypeError(f"{name} must be {expected_name}, got {type(value).__name__}")


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_non_negative(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise :class:`ValueError` unless ``value`` is a positive power of two."""
    check_type(name, value, int)
    check_positive(name, value)
    if value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is a probability in [0, 1]."""
    check_in_range(name, value, 0.0, 1.0)
