"""Shared low-level utilities used across the CLASH reproduction.

The utilities are deliberately dependency-light: everything in this package is
pure Python (plus :mod:`math`) so that the key-manipulation and simulation
layers above it remain easy to reason about and to test in isolation.
"""

from repro.util.bitops import (
    bit_length_mask,
    bits_to_int,
    common_prefix_length,
    extract_prefix,
    int_to_bits,
    is_prefix_of,
    pad_prefix_to_width,
    reverse_bits,
    set_bit,
    test_bit,
)
from repro.util.rng import RandomStream, SeedSequenceFactory
from repro.util.stats import (
    OnlineStats,
    Percentiles,
    TimeSeries,
    WindowedCounter,
    mean,
    percentile,
)
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "bit_length_mask",
    "bits_to_int",
    "common_prefix_length",
    "extract_prefix",
    "int_to_bits",
    "is_prefix_of",
    "pad_prefix_to_width",
    "reverse_bits",
    "set_bit",
    "test_bit",
    "RandomStream",
    "SeedSequenceFactory",
    "OnlineStats",
    "Percentiles",
    "TimeSeries",
    "WindowedCounter",
    "mean",
    "percentile",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
