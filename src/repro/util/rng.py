"""Deterministic random-number streams for reproducible simulations.

Every stochastic component of the simulator (workload generation, key churn,
query lifetimes, DHT node identifiers) draws from its own named stream derived
from a single master seed.  This keeps experiments reproducible while ensuring
that changing the number of draws in one component does not perturb another —
a standard practice for discrete-event simulation studies.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable, Sequence

__all__ = ["RandomStream", "SeedSequenceFactory"]


class RandomStream:
    """A seeded random stream with the distributions the simulator needs.

    Thin wrapper over :class:`random.Random` adding the handful of
    distributions used by the workload model (exponential with mean,
    discrete pmf sampling, bounded integers) plus convenience helpers.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """A float uniformly distributed in ``[low, high)``."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """An integer uniformly distributed in ``[low, high]`` (inclusive)."""
        if low > high:
            raise ValueError(f"low ({low}) must be <= high ({high})")
        return self._rng.randint(low, high)

    def randbits(self, width: int) -> int:
        """A ``width``-bit random integer (``width`` may be 0)."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if width == 0:
            return 0
        return self._rng.getrandbits(width)

    def exponential(self, mean: float) -> float:
        """An exponentially-distributed float with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def poisson(self, mean: float) -> int:
        """A Poisson-distributed integer with the given mean.

        Uses Knuth's algorithm for small means and a normal approximation for
        large means; the simulator only needs modest accuracy here (it is used
        for per-period event counts).
        """
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if mean == 0:
            return 0
        if mean > 50:
            value = int(round(self._rng.gauss(mean, math.sqrt(mean))))
            return max(0, value)
        threshold = math.exp(-mean)
        count = 0
        product = self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count

    def choice(self, items: Sequence):
        """A uniformly random element of a non-empty sequence."""
        if len(items) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def sample_pmf(self, weights: Sequence[float]) -> int:
        """Sample an index from an (unnormalised) discrete weight vector."""
        total = 0.0
        for weight in weights:
            if weight < 0:
                raise ValueError(f"weights must be non-negative, got {weight}")
            total += weight
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        target = self._rng.random() * total
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if target < cumulative:
                return index
        return len(weights) - 1

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._rng.shuffle(items)

    def spawn(self, name: str) -> "RandomStream":
        """Derive an independent child stream labelled ``name``."""
        return SeedSequenceFactory(self._seed).stream(name)


class SeedSequenceFactory:
    """Derive independent, named :class:`RandomStream` objects from one master seed.

    Stream seeds are derived by hashing ``(master_seed, name)`` with SHA-256,
    so the mapping is stable across Python versions and process invocations.
    """

    def __init__(self, master_seed: int) -> None:
        if not isinstance(master_seed, int) or isinstance(master_seed, bool):
            raise TypeError(
                f"master_seed must be an int, got {type(master_seed).__name__}"
            )
        self._master_seed = master_seed

    @property
    def master_seed(self) -> int:
        """The master seed all derived streams are based on."""
        return self._master_seed

    def seed_for(self, name: str) -> int:
        """The derived 63-bit seed for the stream called ``name``."""
        if not isinstance(name, str) or not name:
            raise ValueError("stream name must be a non-empty string")
        payload = f"{self._master_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") & ((1 << 63) - 1)

    def stream(self, name: str) -> RandomStream:
        """Create the named stream."""
        return RandomStream(self.seed_for(name))

    def streams(self, names: Iterable[str]) -> dict[str, RandomStream]:
        """Create several named streams at once."""
        return {name: self.stream(name) for name in names}
