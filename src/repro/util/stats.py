"""Lightweight statistics helpers used by the metrics layer.

The simulator records a handful of per-period aggregates (max/avg server load,
active server counts, tree depth statistics, message rates).  These helpers
keep that bookkeeping explicit and well tested without pulling a heavyweight
dependency into the hot loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

__all__ = [
    "OnlineStats",
    "Percentiles",
    "TimeSeries",
    "WindowedCounter",
    "mean",
    "percentile",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if len(values) == 0:
        raise ValueError("mean() of an empty sequence")
    return float(sum(values)) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of a non-empty sequence."""
    if len(values) == 0:
        raise ValueError("percentile() of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


class OnlineStats:
    """Streaming count/mean/variance/min/max (Welford's algorithm)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the running statistics."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        """Number of observations seen so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean of observations (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of observations (0.0 with fewer than 2 samples)."""
        if self._count < 2:
            return 0.0
        return self._m2 / self._count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation seen (raises if empty)."""
        if self._count == 0:
            raise ValueError("no observations recorded")
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation seen (raises if empty)."""
        if self._count == 0:
            raise ValueError("no observations recorded")
        return self._max

    def as_dict(self) -> dict[str, float]:
        """Summary dictionary, convenient for reporting."""
        return {
            "count": float(self._count),
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
        }


@dataclass
class Percentiles:
    """Snapshot of common percentiles of a sample."""

    p50: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "Percentiles":
        """Compute the snapshot from a non-empty sample."""
        return cls(
            p50=percentile(values, 50),
            p90=percentile(values, 90),
            p99=percentile(values, 99),
            maximum=max(float(v) for v in values),
        )


@dataclass
class TimeSeries:
    """An ordered sequence of ``(time, value)`` observations.

    Times must be appended in non-decreasing order; this is asserted so that
    downstream plotting/reporting code can rely on monotonicity.
    """

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Record one observation at the given time."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time {time} is earlier than the last recorded time {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def latest(self) -> tuple[float, float]:
        """The most recent ``(time, value)`` pair (raises if empty)."""
        if not self.times:
            raise ValueError(f"time series {self.name!r} is empty")
        return self.times[-1], self.values[-1]

    def value_stats(self) -> OnlineStats:
        """Aggregate statistics over the recorded values."""
        stats = OnlineStats()
        stats.extend(self.values)
        return stats

    def resample_mean(self, bucket_width: float) -> "TimeSeries":
        """Average the series into fixed-width time buckets.

        Useful for turning fine-grained samples into the hourly points the
        paper's figures plot.
        """
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        result = TimeSeries(name=f"{self.name}/mean[{bucket_width}]")
        if not self.times:
            return result
        bucket_start = self.times[0]
        bucket_values: list[float] = []
        for time, value in self:
            while time >= bucket_start + bucket_width:
                if bucket_values:
                    result.append(bucket_start, mean(bucket_values))
                    bucket_values = []
                bucket_start += bucket_width
            bucket_values.append(value)
        if bucket_values:
            result.append(bucket_start, mean(bucket_values))
        return result


class WindowedCounter:
    """Counter that accumulates events and reports per-window rates.

    Used for message accounting: the simulator adds message counts as they
    occur and asks for the rate (events per second) at the end of each
    measurement window.
    """

    def __init__(self) -> None:
        self._window_total = 0.0
        self._grand_total = 0.0

    def add(self, count: float = 1.0) -> None:
        """Accumulate ``count`` events into the current window."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._window_total += count
        self._grand_total += count

    @property
    def window_total(self) -> float:
        """Events accumulated in the current window."""
        return self._window_total

    @property
    def grand_total(self) -> float:
        """Events accumulated over the counter's lifetime."""
        return self._grand_total

    def roll_window(self, window_seconds: float) -> float:
        """Close the current window and return its rate in events/second."""
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        rate = self._window_total / window_seconds
        self._window_total = 0.0
        return rate
