"""Bit-level helpers for fixed-width binary keys.

CLASH identifier keys, virtual keys and key groups are all fixed-width bit
strings (the paper uses ``N = 24`` bits for identifier keys and ``M = 24`` bits
for the Chord hash space).  Python integers are arbitrary precision, so every
helper here takes the intended *width* explicitly and validates that values fit
within it.  All functions treat bit 0 as the most significant bit of the key —
this matches the paper's prefix notation where ``"011*"`` means "the first three
bits are 0, 1, 1".
"""

from __future__ import annotations

__all__ = [
    "bit_length_mask",
    "bits_to_int",
    "common_prefix_length",
    "extract_prefix",
    "int_to_bits",
    "is_prefix_of",
    "pad_prefix_to_width",
    "reverse_bits",
    "set_bit",
    "test_bit",
]


def _check_width(width: int) -> None:
    if not isinstance(width, int) or isinstance(width, bool):
        raise TypeError(f"width must be an int, got {type(width).__name__}")
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")


def _check_value(value: int, width: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"value must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")


def bit_length_mask(width: int) -> int:
    """Return a mask with the lowest ``width`` bits set (``2**width - 1``)."""
    _check_width(width)
    return (1 << width) - 1


def int_to_bits(value: int, width: int) -> str:
    """Render ``value`` as a ``width``-character binary string (MSB first).

    >>> int_to_bits(6, 4)
    '0110'
    """
    _check_width(width)
    _check_value(value, width)
    if width == 0:
        return ""
    return format(value, f"0{width}b")


def bits_to_int(bits: str) -> int:
    """Parse an MSB-first binary string into an integer.

    >>> bits_to_int('0110')
    6
    """
    if not isinstance(bits, str):
        raise TypeError(f"bits must be a str, got {type(bits).__name__}")
    if bits == "":
        return 0
    if any(ch not in "01" for ch in bits):
        raise ValueError(f"bits must contain only '0'/'1', got {bits!r}")
    return int(bits, 2)


def extract_prefix(value: int, width: int, depth: int) -> int:
    """Return the first ``depth`` bits of a ``width``-bit value as an integer.

    The result is an integer in ``[0, 2**depth)``.

    >>> extract_prefix(0b0110101, 7, 4)
    6
    """
    _check_width(width)
    _check_value(value, width)
    if depth < 0 or depth > width:
        raise ValueError(f"depth must be in [0, {width}], got {depth}")
    return value >> (width - depth)


def pad_prefix_to_width(prefix: int, depth: int, width: int) -> int:
    """Zero-pad a ``depth``-bit prefix up to ``width`` bits (the virtual key).

    This is exactly the paper's ``Shape()`` operation: take the first ``depth``
    bits and set the remaining ``width - depth`` bits to zero.

    >>> pad_prefix_to_width(0b0110, 4, 7) == 0b0110000
    True
    """
    _check_width(width)
    if depth < 0 or depth > width:
        raise ValueError(f"depth must be in [0, {width}], got {depth}")
    _check_value(prefix, depth)
    return prefix << (width - depth)


def is_prefix_of(prefix: int, depth: int, value: int, width: int) -> bool:
    """Return ``True`` if the ``depth``-bit ``prefix`` matches the first bits of ``value``."""
    return extract_prefix(value, width, depth) == _checked_prefix(prefix, depth)


def _checked_prefix(prefix: int, depth: int) -> int:
    _check_width(depth)
    _check_value(prefix, depth)
    return prefix


def common_prefix_length(a: int, b: int, width: int) -> int:
    """Length of the longest common MSB-first prefix of two ``width``-bit values.

    >>> common_prefix_length(0b0110001, 0b0101010, 7)
    2
    """
    _check_width(width)
    _check_value(a, width)
    _check_value(b, width)
    diff = a ^ b
    if diff == 0:
        return width
    return width - diff.bit_length()


def test_bit(value: int, width: int, index: int) -> bool:
    """Return bit ``index`` (0 = most significant) of a ``width``-bit value."""
    _check_width(width)
    _check_value(value, width)
    if index < 0 or index >= width:
        raise ValueError(f"index must be in [0, {width}), got {index}")
    return bool((value >> (width - 1 - index)) & 1)


def set_bit(value: int, width: int, index: int, bit: bool) -> int:
    """Return ``value`` with bit ``index`` (0 = MSB) set to ``bit``."""
    _check_width(width)
    _check_value(value, width)
    if index < 0 or index >= width:
        raise ValueError(f"index must be in [0, {width}), got {index}")
    mask = 1 << (width - 1 - index)
    if bit:
        return value | mask
    return value & ~mask


def reverse_bits(value: int, width: int) -> int:
    """Reverse the bit order of a ``width``-bit value.

    Used by the quad-tree encoder tests to verify symmetry properties; not on
    any hot path.
    """
    _check_width(width)
    _check_value(value, width)
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result
