"""Trace minimisation by ddmin delta debugging (Zeller & Hildebrandt).

The shrinker works on an abstract list of *schedule events* — for this
fuzzer, kept tie-tape entries and kept churn events — and a predicate that
answers "does the schedule built from this subset still reproduce the
failure?".  Classic ddmin: partition the failing set into ``n`` chunks, try
each chunk and each complement, restart at coarse granularity on success,
refine on failure, stop at 1-minimality (or when the test budget runs out —
every predicate call replays a whole simulation, so the budget is real).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

__all__ = ["ShrinkResult", "ddmin"]

Event = TypeVar("Event")


@dataclass
class ShrinkResult:
    """Outcome of one ddmin run.

    Attributes:
        kept: The minimised failing subset, in original order.
        tests_run: Predicate evaluations performed (cache misses only).
        minimal: True when ddmin proved 1-minimality — removing any single
            kept event makes the failure disappear.  False when the test
            budget ran out first; ``kept`` is still failing, just possibly
            not minimal.
    """

    kept: list
    tests_run: int
    minimal: bool


class _BudgetExhausted(Exception):
    """Internal: the predicate budget ran out mid-search."""


def ddmin(
    events: Sequence[Event],
    failing: Callable[[list[Event]], bool],
    max_tests: int = 256,
) -> ShrinkResult:
    """Minimise ``events`` to a smaller subset on which ``failing`` holds.

    Args:
        events: The full failing schedule's events.  ``failing(list(events))``
            must be true — the caller has already observed the failure.
        failing: The reproduction predicate; called with candidate subsets
            (always subsequences of ``events``, in original order).
        max_tests: Budget of distinct predicate evaluations; repeated
            candidates are served from a cache and cost nothing.

    Returns:
        A :class:`ShrinkResult` whose ``kept`` subset is failing, and
        1-minimal when the budget sufficed.
    """
    current: list[Event] = list(events)
    tests_run = 0
    cache: dict[tuple[int, ...], bool] = {}
    # Cache keys are index tuples into the original list, so events
    # themselves never need to be hashable.
    index_of = {id(event): index for index, event in enumerate(current)}

    def check(candidate: list[Event]) -> bool:
        nonlocal tests_run
        key = tuple(index_of[id(event)] for event in candidate)
        if key in cache:
            return cache[key]
        if tests_run >= max_tests:
            raise _BudgetExhausted()
        tests_run += 1
        outcome = bool(failing(list(candidate)))
        cache[key] = outcome
        return outcome

    if not current:
        return ShrinkResult(kept=[], tests_run=0, minimal=True)

    granularity = 2
    try:
        while len(current) >= 2:
            chunk_size = len(current) / granularity
            chunks = [
                current[round(i * chunk_size) : round((i + 1) * chunk_size)]
                for i in range(granularity)
            ]
            reduced = False
            # Try each chunk alone ("reduce to subset") ...
            for chunk in chunks:
                if chunk and len(chunk) < len(current) and check(chunk):
                    current = chunk
                    granularity = 2
                    reduced = True
                    break
            if reduced:
                continue
            # ... then each complement ("reduce to complement").
            if granularity > 2:
                for index in range(granularity):
                    complement = [
                        event
                        for i, chunk in enumerate(chunks)
                        if i != index
                        for event in chunk
                    ]
                    if len(complement) < len(current) and check(complement):
                        current = complement
                        granularity = max(granularity - 1, 2)
                        reduced = True
                        break
            if reduced:
                continue
            if granularity >= len(current):
                # Every single-event removal was tested and failed to
                # reproduce: current is 1-minimal.
                return ShrinkResult(kept=current, tests_run=tests_run, minimal=True)
            granularity = min(granularity * 2, len(current))
    except _BudgetExhausted:
        return ShrinkResult(kept=current, tests_run=tests_run, minimal=False)
    # len(current) <= 1: nothing left to remove (the empty set is by
    # definition passing — a failure needs at least the events it needs).
    return ShrinkResult(kept=current, tests_run=tests_run, minimal=True)
