"""One fuzz case = one fully specified simulator run, recordable and replayable.

:class:`FuzzCase` pins every axis the fuzzer sweeps — transport, master
seed, delivery-order seed, churn seeds and rates, shard count, scale — and
knows how to build the corresponding :class:`~repro.sim.simulator.FlowSimulator`
twice over:

* **recording** (``run_case(..., record=True)``): the live ready source is
  wrapped in a :class:`~repro.net.replay.TieRecorder`, executed membership
  events are captured on ``simulator.churn_log``, and the transport's
  delivery ring buffer is turned on — the run's whole schedule comes out as
  a :class:`RecordedTrace`;
* **replaying** (``run_case(..., schedule=...)``): an async case runs on the
  ``"replay"`` transport with the schedule's tie tape, any other transport
  re-runs as itself, and recorded churn is executed verbatim by the
  simulator instead of drawing Poisson arrivals.  Same schedule ⇒ same run,
  bit for bit (``SimulationResult.diff`` is the comparator).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping

from repro.experiments.runner import ExperimentScale
from repro.fuzz.oracle import FuzzOracle, OracleViolation
from repro.net.replay import ChurnEvent, RebalanceEvent, ReplaySchedule, TieRecorder
from repro.sim.simulator import FlowSimulator, SimulationResult

__all__ = ["CaseOutcome", "FuzzCase", "RecordedTrace", "run_case"]


@dataclass(frozen=True)
class FuzzCase:
    """Everything needed to rebuild one fuzzed run from scratch.

    Attributes:
        transport: Transport kind the case runs on (``"async"``/``"event"``).
        seed: Master seed (workload, ring, identities).
        delivery_seed: Independent ready-order seed (``None`` derives the
            tie-break stream from ``seed``; the async sweep axis).
        churn_seed: Independent churn-timing seed (``None`` derives the
            arrival streams from ``seed``).
        join_rate: Poisson server-join rate (events/sec) in every phase.
        fail_rate: Poisson server-failure rate (events/sec) in every phase.
        shards: Chord ring shards (power of two).
        partition: Partition map for sharded cases (``"static"`` or
            ``"adaptive"``; the latter exercises online rebalancing).
        full_load_scan: Run the balance passes in the reference
            probe-everyone mode instead of the dirty-driven work queues
            (sweeping both keeps the two paths under the same oracle).
        scale_factor: Down-scaling factor for :meth:`ExperimentScale.scaled`.
        phase_periods: Load-check periods per workload phase.
    """

    transport: str = "async"
    seed: int = 20040324
    delivery_seed: int | None = None
    churn_seed: int | None = None
    join_rate: float = 0.0
    fail_rate: float = 0.0
    shards: int = 1
    partition: str = "static"
    full_load_scan: bool = False
    scale_factor: int = 100
    phase_periods: int = 2

    def case_id(self) -> str:
        """A filesystem-safe identifier (artifact file names, report rows)."""
        parts = [self.transport, f"s{self.seed}"]
        if self.delivery_seed is not None:
            parts.append(f"d{self.delivery_seed}")
        if self.churn_seed is not None:
            parts.append(f"c{self.churn_seed}")
        if self.join_rate or self.fail_rate:
            parts.append(f"j{self.join_rate:g}-f{self.fail_rate:g}")
        if self.shards != 1:
            parts.append(f"sh{self.shards}")
        if self.partition != "static":
            parts.append(self.partition)
        if self.full_load_scan:
            parts.append("fullscan")
        return "-".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips through :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "FuzzCase":
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown fuzz case fields: {', '.join(sorted(unknown))}")
        return cls(**dict(data))

    # ------------------------------------------------------------------ #
    # Simulator construction
    # ------------------------------------------------------------------ #

    def scale(self) -> ExperimentScale:
        """The experiment scale this case runs at."""
        base = ExperimentScale.scaled(
            factor=self.scale_factor, phase_periods=self.phase_periods
        )
        return dataclasses.replace(
            base,
            seed=self.seed,
            transport=self.transport,
            join_rate=self.join_rate,
            fail_rate=self.fail_rate,
            shards=self.shards,
            partition=self.partition,
            force_full_load_scan=self.full_load_scan,
        )

    def build_simulator(
        self, schedule: ReplaySchedule | None = None
    ) -> FlowSimulator:
        """A fresh simulator for this case (forced onto ``schedule`` if given).

        Replaying an async case swaps the transport kind to ``"replay"`` so
        the schedule's tie tape drives delivery order; every other transport
        has no tie tape and re-runs as itself (its delivery order is already
        a pure function of the seeds), with only the churn events forced.
        """
        scale = self.scale()
        kind = scale.transport
        if schedule is not None and kind == "async":
            kind = "replay"
            scale = dataclasses.replace(scale, transport=kind)
        params = scale.params(
            delivery_seed=self.delivery_seed, churn_seed=self.churn_seed
        )
        return FlowSimulator(
            scale.config(), params, scale.scenario(), schedule=schedule
        )


@dataclass(frozen=True)
class RecordedTrace:
    """The schedule one recorded run actually executed.

    Attributes:
        ties: Every ready-order tie-break draw, in draw order (empty for
            transports without a tie tape).
        churn: Every executed membership event with its identity pinned
            (``None`` when the run was not recorded with churn capture).
        rebalances: Every installed partition map with its boundaries and
            version pinned (``None`` when the run was not recorded; an empty
            tuple means the run was recorded and installed no map).
        deliveries: Tail of the transport's delivery ring buffer —
            ``(time, server, payload type)`` rows kept for artifact context,
            not needed for replay.
    """

    ties: tuple[float, ...] = ()
    churn: tuple[ChurnEvent, ...] | None = None
    rebalances: tuple[RebalanceEvent, ...] | None = None
    deliveries: tuple[tuple[float, str, str], ...] = ()

    def schedule(self) -> ReplaySchedule:
        """The full (unshrunk) replay schedule for this trace."""
        return ReplaySchedule.full(self.ties, self.churn, self.rebalances)


@dataclass
class CaseOutcome:
    """What one (recorded or replayed) case execution produced.

    Attributes:
        case: The case that ran.
        violation: The oracle violation, or ``None`` for a clean run.
        trace: The recorded schedule (empty unless ``record=True``).
        result: The run's :class:`SimulationResult` (``None`` when a
            violation aborted the run before completion).
    """

    case: FuzzCase
    violation: OracleViolation | None = None
    trace: RecordedTrace = RecordedTrace()
    result: SimulationResult | None = None


DELIVERY_TAIL_LIMIT = 64
"""How many trailing delivery-log rows a recorded trace keeps for context."""


def run_case(
    case: FuzzCase,
    oracle: FuzzOracle | None = None,
    schedule: ReplaySchedule | None = None,
    record: bool = False,
) -> CaseOutcome:
    """Execute one case, optionally recording its schedule or forcing one.

    Args:
        case: The case to run.
        oracle: Oracle installed at the simulator's quiescent points
            (``None`` runs unchecked).
        schedule: Replay schedule to force (``None`` = a live run).
        record: Capture the run's tie draws, churn events and delivery tail.

    Returns:
        The outcome; ``violation`` is the first :class:`OracleViolation`
        raised (the run stops there), ``trace`` is filled when recording.
    """
    simulator = case.build_simulator(schedule=schedule)
    transport = simulator.transport
    recorder: TieRecorder | None = None
    try:
        if record:
            if hasattr(transport, "set_ready_source"):
                recorder = TieRecorder(transport.ready_source)
                transport.set_ready_source(recorder)
            simulator.record_churn = True
            simulator.record_rebalances = True
            transport.enable_delivery_log()
        if oracle is not None:
            oracle.bind(simulator)
            simulator.set_oracles(
                invariant=oracle.check_system, sample=oracle.check_sample
            )
        violation: OracleViolation | None = None
        result: SimulationResult | None = None
        try:
            result = simulator.run()
        except OracleViolation as error:
            violation = error
        trace = RecordedTrace()
        if record:
            trace = RecordedTrace(
                ties=tuple(recorder.draws) if recorder is not None else (),
                churn=tuple(simulator.churn_log),
                rebalances=tuple(simulator.rebalance_log),
                deliveries=tuple(
                    list(transport.delivery_log)[-DELIVERY_TAIL_LIMIT:]
                ),
            )
        return CaseOutcome(
            case=case, violation=violation, trace=trace, result=result
        )
    finally:
        transport.close()
