"""Adversarial schedule fuzzing with automatic trace minimisation.

The fuzzer sweeps delivery-order seeds, churn timings and shard counts over
the async and event transports, runs the protocol's invariant oracle at
every quiescent point, records each run's schedule (tie-break tape + pinned
membership events) as a replayable trace, and — when a violation fires —
shrinks the trace with ddmin delta debugging to a minimal failing schedule
packaged as a self-contained JSON repro artifact.

Entry points:

* :func:`run_fuzz` / :class:`FuzzPlan` — the sweep driver (CLI ``fuzz``).
* :func:`replay_artifact` / :class:`ReproArtifact` — bit-identical replay of
  a packaged finding (CLI ``repro``).
* :func:`run_case` / :class:`FuzzCase` — one recordable, replayable run.
* :func:`ddmin` — the schedule-agnostic minimiser.

See ``docs/FUZZING.md`` for the workflow.
"""

from __future__ import annotations

from repro.fuzz.artifact import ARTIFACT_FORMAT, ReproArtifact, replay_artifact
from repro.fuzz.harness import CaseOutcome, FuzzCase, RecordedTrace, run_case
from repro.fuzz.oracle import (
    ORACLES,
    FuzzOracle,
    InvariantOracle,
    OracleViolation,
    TieWitnessOracle,
    build_oracle,
)
from repro.fuzz.fuzzer import (
    FuzzFinding,
    FuzzPlan,
    FuzzReport,
    enumerate_cases,
    render_report,
    run_fuzz,
)
from repro.fuzz.shrink import ShrinkResult, ddmin

__all__ = [
    "ARTIFACT_FORMAT",
    "ORACLES",
    "CaseOutcome",
    "FuzzCase",
    "FuzzFinding",
    "FuzzOracle",
    "FuzzPlan",
    "FuzzReport",
    "InvariantOracle",
    "OracleViolation",
    "RecordedTrace",
    "ReproArtifact",
    "ShrinkResult",
    "TieWitnessOracle",
    "build_oracle",
    "ddmin",
    "enumerate_cases",
    "render_report",
    "replay_artifact",
    "run_case",
    "run_fuzz",
]
