"""The fuzz driver: sweep → record → oracle → shrink → artifact.

:func:`run_fuzz` enumerates a :class:`FuzzPlan`'s case grid (delivery-order
seeds × churn timings × transports × shard counts), runs every case with its
schedule recorded and the oracle installed at each quiescent point, and — on
a violation — shrinks the recorded schedule with
:func:`~repro.fuzz.shrink.ddmin` and writes a self-contained
:class:`~repro.fuzz.artifact.ReproArtifact` that the ``repro`` CLI command
replays bit-identically.

Shrinking treats the recorded schedule as one combined event list:

* a *tie event* keeps one tie-tape entry — removing it masks that draw back
  to the FIFO default 0.0 (one reordering decision undone);
* a *churn event* keeps one recorded membership event — removing it drops
  the join/failure from the forced schedule entirely.

Recorded partition rebalances are *pinned*, not shrinkable: every candidate
schedule carries them verbatim, so a shrunk repro always replays the exact
partition history the failure occurred under.

The reproduction predicate replays the candidate schedule and demands the
*same oracle check* fail (check names are stable; detail text may differ).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.fuzz.artifact import ReproArtifact
from repro.fuzz.harness import CaseOutcome, FuzzCase, run_case
from repro.fuzz.oracle import build_oracle
from repro.fuzz.shrink import ShrinkResult, ddmin
from repro.net.replay import ChurnEvent, RebalanceEvent, ReplaySchedule

__all__ = ["FuzzFinding", "FuzzPlan", "FuzzReport", "enumerate_cases", "render_report", "run_fuzz"]

DEFAULT_CHURN_RATES: tuple[tuple[float, float], ...] = ((0.0, 0.0), (0.01, 0.01))
"""(join_rate, fail_rate) variants swept by default: calm, and churning."""


@dataclass(frozen=True)
class FuzzPlan:
    """The sweep grid and budgets for one fuzzing session.

    Attributes:
        transports: Transport kinds to sweep.
        shards: Shard counts to sweep (powers of two).
        partitions: Partition maps to sweep for sharded cases (``shards=1``
            cases always run static).
        seeds: Base seeds; each also derives the case's delivery/churn seeds
            so every axis varies per seed.
        churn_rates: (join_rate, fail_rate) variants to sweep.
        full_scans: Balance-pass modes to sweep — ``False`` is the
            dirty-driven work-queue pass, ``True`` the reference
            probe-everyone scan; sweeping both keeps the two code paths
            under the same oracle.
        budget: Maximum cases to run (the grid is truncated seed-major, so a
            small budget still covers every transport/shard/churn variant).
        scale_factor: Down-scaling factor for every case.
        phase_periods: Load-check periods per workload phase.
        oracle: Registry name of the oracle to install.
        oracle_params: Oracle constructor parameters.
        shrink_budget: Maximum replays ddmin may spend per finding.
    """

    transports: tuple[str, ...] = ("async", "event")
    shards: tuple[int, ...] = (1, 2)
    partitions: tuple[str, ...] = ("static", "adaptive")
    seeds: tuple[int, ...] = tuple(range(8))
    churn_rates: tuple[tuple[float, float], ...] = DEFAULT_CHURN_RATES
    full_scans: tuple[bool, ...] = (False,)
    budget: int = 16
    scale_factor: int = 100
    phase_periods: int = 2
    oracle: str = "invariants"
    oracle_params: dict = field(default_factory=dict)
    shrink_budget: int = 192


def enumerate_cases(plan: FuzzPlan) -> list[FuzzCase]:
    """The plan's case grid, seed-major, truncated to the budget.

    Seed-major order means the first ``len(transports) × len(shards) ×
    len(churn_rates)`` cases already span the whole structural grid; extra
    budget buys more seeds (fresh delivery orders and churn timings) rather
    than more of the same seed.
    """
    cases: list[FuzzCase] = []
    for seed_index, seed in enumerate(plan.seeds):
        for transport in plan.transports:
            for shards in plan.shards:
                for partition in plan.partitions:
                    if partition != "static" and shards <= 1:
                        # A single ring has no shard boundaries to move.
                        continue
                    for join_rate, fail_rate in plan.churn_rates:
                        for full_scan in plan.full_scans:
                            if len(cases) >= plan.budget:
                                return cases
                            cases.append(
                                FuzzCase(
                                    transport=transport,
                                    seed=20040324 + seed,
                                    # Independent per-seed axes: the delivery
                                    # order and churn timing sweeps never
                                    # perturb the workload streams.
                                    delivery_seed=(
                                        710_000 + seed_index
                                        if transport == "async"
                                        else None
                                    ),
                                    churn_seed=(
                                        830_000 + seed_index
                                        if (join_rate or fail_rate)
                                        else None
                                    ),
                                    join_rate=join_rate,
                                    fail_rate=fail_rate,
                                    shards=shards,
                                    partition=partition,
                                    full_load_scan=full_scan,
                                    scale_factor=plan.scale_factor,
                                    phase_periods=plan.phase_periods,
                                )
                            )
    return cases


@dataclass
class FuzzFinding:
    """One violation, after shrinking.

    Attributes:
        case: The failing case.
        check: Violated oracle check name.
        message: The original violation's detail text.
        artifact: The packaged repro artifact.
        artifact_path: Where the artifact was written (``None`` when no
            output directory was given).
    """

    case: FuzzCase
    check: str
    message: str
    artifact: ReproArtifact
    artifact_path: pathlib.Path | None = None


@dataclass
class FuzzReport:
    """Everything one :func:`run_fuzz` sweep produced."""

    plan: FuzzPlan
    cases_run: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the whole sweep found no violation."""
        return not self.findings


def _schedule_from_events(
    events: Sequence[tuple],
    churn_recorded: bool,
    rebalances: tuple[RebalanceEvent, ...] | None,
) -> ReplaySchedule:
    """Build the replay schedule a kept-event subset denotes.

    Recorded rebalances ride along verbatim on every candidate — they are
    pinned, never part of the shrinkable event list, so each replay installs
    the exact partition history the original failure ran under.
    """
    ties: dict[int, float] = {}
    churn: list[ChurnEvent] = []
    for event in events:
        if event[0] == "tie":
            ties[event[1]] = event[2]
        else:
            churn.append(event[1])
    return ReplaySchedule(
        ties=ties,
        churn=tuple(churn) if churn_recorded else None,
        rebalances=rebalances,
    )


def shrink_outcome(
    outcome: CaseOutcome, plan: FuzzPlan
) -> tuple[ReplaySchedule, ShrinkResult, int]:
    """Minimise a violating recorded run to its smallest failing schedule.

    Returns ``(minimal schedule, ddmin result, original event count)``.
    """
    assert outcome.violation is not None
    trace = outcome.trace
    churn_recorded = trace.churn is not None
    rebalances = trace.rebalances
    events: list[tuple] = [
        ("tie", index, value) for index, value in enumerate(trace.ties)
    ]
    events.extend(("churn", event) for event in trace.churn or ())
    target_check = outcome.violation.check

    def still_fails(subset: list[tuple]) -> bool:
        schedule = _schedule_from_events(subset, churn_recorded, rebalances)
        oracle = build_oracle(plan.oracle, plan.oracle_params)
        replay = run_case(outcome.case, oracle=oracle, schedule=schedule)
        return (
            replay.violation is not None
            and replay.violation.check == target_check
        )

    shrunk = ddmin(events, still_fails, max_tests=plan.shrink_budget)
    minimal = _schedule_from_events(shrunk.kept, churn_recorded, rebalances)
    return minimal, shrunk, len(events)


def run_fuzz(
    plan: FuzzPlan,
    output_dir: pathlib.Path | str | None = None,
    log: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run the sweep; shrink and package every violation found.

    Args:
        plan: The sweep grid and budgets.
        output_dir: Directory repro artifacts are written to (one
            ``fuzz-<case id>.json`` per finding; ``None`` keeps them
            in-memory only).
        log: Progress sink (e.g. ``print``); ``None`` is silent.
    """
    emit = log if log is not None else (lambda message: None)
    report = FuzzReport(plan=plan)
    for case in enumerate_cases(plan):
        oracle = build_oracle(plan.oracle, plan.oracle_params)
        outcome = run_case(case, oracle=oracle, record=True)
        report.cases_run += 1
        if outcome.violation is None:
            emit(f"[fuzz] {case.case_id()}: ok")
            continue
        violation = outcome.violation
        emit(f"[fuzz] {case.case_id()}: VIOLATION {violation.check} — shrinking")
        minimal, shrunk, original_count = shrink_outcome(outcome, plan)
        artifact = ReproArtifact(
            case=case,
            oracle=plan.oracle,
            oracle_params=dict(plan.oracle_params),
            failure_check=violation.check,
            failure_message=violation.detail,
            ties=dict(minimal.ties),
            churn=minimal.churn,
            rebalances=minimal.rebalances,
            original_events=original_count,
            minimal_events=len(shrunk.kept),
            shrink_tests=shrunk.tests_run,
            shrink_minimal=shrunk.minimal,
            delivery_tail=outcome.trace.deliveries,
        )
        path: pathlib.Path | None = None
        if output_dir is not None:
            path = artifact.save(
                pathlib.Path(output_dir) / f"fuzz-{case.case_id()}.json"
            )
            emit(f"[fuzz] {case.case_id()}: artifact written to {path}")
        report.findings.append(
            FuzzFinding(
                case=case,
                check=violation.check,
                message=violation.detail,
                artifact=artifact,
                artifact_path=path,
            )
        )
    return report


def render_report(report: FuzzReport) -> str:
    """The sweep summarised as a plain-text report."""
    plan = report.plan
    lines = [
        "Adversarial schedule fuzz sweep",
        "",
        f"oracle:     {plan.oracle}",
        f"transports: {', '.join(plan.transports)}",
        f"shards:     {', '.join(str(count) for count in plan.shards)}",
        f"churn:      {', '.join(f'(j={j:g}, f={f:g})' for j, f in plan.churn_rates)}",
        f"cases run:  {report.cases_run} (budget {plan.budget})",
        "",
    ]
    if report.clean:
        lines.append("No oracle violations found.")
        return "\n".join(lines)
    lines.append(f"{len(report.findings)} violation(s):")
    for finding in report.findings:
        artifact = finding.artifact
        lines.append(
            f"  {finding.case.case_id()}: {finding.check} — "
            f"{artifact.original_events} events shrunk to "
            f"{artifact.minimal_events} in {artifact.shrink_tests} replays"
            + ("" if artifact.shrink_minimal else " (budget exhausted)")
        )
        if finding.artifact_path is not None:
            lines.append(f"    artifact: {finding.artifact_path}")
        lines.append(f"    {finding.message}")
    return "\n".join(lines)
