"""Invariant oracles the schedule fuzzer runs at every quiescent point.

An oracle is a pair of callbacks the harness installs on a
:class:`~repro.sim.simulator.FlowSimulator` (via ``set_oracles``):
``check_system`` fires after membership events, after each balance
iteration's load check and at period boundaries; ``check_sample``
additionally sees each freshly built
:class:`~repro.sim.metrics.PeriodSample`.  A violated property raises
:class:`OracleViolation`, which carries a stable ``check`` name — the
shrinker's predicate compares check names, not messages, so a minimised
schedule counts as reproducing the failure even when the detail text differs.

Two oracles ship:

* :class:`InvariantOracle` (``"invariants"``) — the real one: the full
  protocol invariant pass (prefix-freeness, coverage, ownership registry,
  shard locality) plus metric sanity checks on every period sample.
* :class:`TieWitnessOracle` (``"tie-witness"``) — a synthetic oracle for
  testing the fuzz loop itself: it "fails" exactly when every one of its
  witness tie-break draws exceeded a threshold, which makes the minimal
  failing schedule *predictable* (precisely the witness entries, since a
  masked tie draws the FIFO default 0.0).
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

from repro.sim.metrics import PeriodSample

__all__ = [
    "ORACLES",
    "FuzzOracle",
    "InvariantOracle",
    "OracleViolation",
    "TieWitnessOracle",
    "build_oracle",
]


class OracleViolation(AssertionError):
    """An oracle property failed.

    Attributes:
        check: Stable name of the violated property (e.g. ``"invariants"``
            or ``"metrics:load"``) — the shrinker's reproduction criterion.
        detail: Human-readable description of the violation.
    """

    def __init__(self, check: str, detail: str) -> None:
        super().__init__(f"{check}: {detail}")
        self.check = check
        self.detail = detail


class FuzzOracle:
    """Base oracle: named, parameterisable, bound to one simulator run."""

    name = "oracle"

    def params(self) -> dict:
        """JSON-ready constructor parameters (for the repro artifact)."""
        return {}

    def bind(self, simulator) -> None:
        """Attach to the simulator about to run (default: nothing)."""

    def check_system(self, system) -> None:
        """Verify system-state properties at a quiescent point."""

    def check_sample(self, system, sample: PeriodSample) -> None:
        """Verify a period's freshly built metrics sample."""


class InvariantOracle(FuzzOracle):
    """The production oracle: protocol invariants + metric sanity.

    ``check_system`` wraps
    :meth:`~repro.core.protocol.ClashSystem.verify_invariants`;
    ``check_sample`` re-runs it and then validates the period metrics
    (loads, depths, rates, latency and shard fields must be finite, ordered
    and non-negative).
    """

    name = "invariants"

    def check_system(self, system) -> None:
        try:
            system.verify_invariants()
        except OracleViolation:
            raise
        except AssertionError as error:
            raise OracleViolation("invariants", str(error)) from error

    def check_sample(self, system, sample: PeriodSample) -> None:
        self.check_system(system)
        for check, passed, detail in self._sample_checks(sample):
            if not passed:
                raise OracleViolation(check, detail)
        self._check_partition(system)

    @staticmethod
    def _check_partition(system) -> None:
        """Every registered group's key lands on the shard that owns it.

        The partition map is the single routing authority after a rebalance:
        a group registered to a server of some other shard would be
        unreachable through ``shard_of_key`` routing.  Single-ring systems
        have no partition to check.
        """
        router = system.router
        if router.shard_count <= 1:
            return
        for group, owner in sorted(system.active_groups().items()):
            key_shard = router.shard_of_key(group.virtual_key)
            owner_shard = router.server_shard(owner)
            if key_shard != owner_shard:
                raise OracleViolation(
                    "metrics:partition",
                    f"group {group} maps to shard {key_shard} (partition "
                    f"version {router.partition_version}) but its owner "
                    f"{owner!r} lives on shard {owner_shard}",
                )

    @staticmethod
    def _sample_checks(sample: PeriodSample):
        """Yield ``(check name, passed, detail)`` for one period sample."""

        def finite(*values: float) -> bool:
            return all(math.isfinite(value) for value in values)

        yield (
            "metrics:load",
            finite(sample.max_load_percent, sample.avg_load_percent)
            and 0.0 <= sample.avg_load_percent <= sample.max_load_percent,
            f"avg={sample.avg_load_percent} max={sample.max_load_percent} "
            f"at t={sample.time}",
        )
        yield (
            "metrics:depth",
            finite(sample.min_depth, sample.avg_depth, sample.max_depth)
            and sample.min_depth <= sample.avg_depth <= sample.max_depth,
            f"min={sample.min_depth} avg={sample.avg_depth} "
            f"max={sample.max_depth} at t={sample.time}",
        )
        yield (
            "metrics:rates",
            finite(sample.messages_per_server_per_second)
            and sample.messages_per_server_per_second >= 0.0
            and sample.splits >= 0
            and sample.merges >= 0
            and all(
                finite(rate) and rate >= 0.0
                for rate in sample.message_breakdown.values()
            ),
            f"msgs/server/s={sample.messages_per_server_per_second} "
            f"splits={sample.splits} merges={sample.merges} at t={sample.time}",
        )
        yield (
            "metrics:latency",
            finite(sample.mean_message_latency)
            and sample.mean_message_latency >= 0.0,
            f"mean latency={sample.mean_message_latency} at t={sample.time}",
        )
        yield (
            "metrics:churn",
            sample.server_joins >= 0
            and sample.server_failures >= 0
            and sample.groups_reassigned >= 0
            and sample.dropped_messages >= 0,
            f"joins={sample.server_joins} failures={sample.server_failures} "
            f"reassigned={sample.groups_reassigned} "
            f"dropped={sample.dropped_messages} at t={sample.time}",
        )
        yield (
            "metrics:shards",
            sample.shard_count >= 1
            and len(sample.shard_peak_loads) in (0, sample.shard_count)
            and finite(sample.cross_shard_imbalance)
            and sample.cross_shard_imbalance >= 0.0,
            f"shard_count={sample.shard_count} "
            f"peaks={len(sample.shard_peak_loads)} "
            f"imbalance={sample.cross_shard_imbalance} at t={sample.time}",
        )
        yield (
            "metrics:partition",
            sample.groups_migrated >= 0
            and sample.partition_version >= 0
            and (sample.shard_count > 1 or sample.groups_migrated == 0),
            f"migrated={sample.groups_migrated} "
            f"version={sample.partition_version} "
            f"shard_count={sample.shard_count} at t={sample.time}",
        )


class TieWitnessOracle(FuzzOracle):
    """Synthetic oracle: fails iff every witness tie draw exceeds a threshold.

    With the default threshold 0.0 and a strictly-greater comparison, a
    seeded-RNG recording fails with probability one (genuine uniform draws
    are positive) while any schedule that *masks* one witness entry passes
    (a masked tie replays the FIFO default 0.0).  Delta debugging on such a
    failure therefore converges to exactly the witness entries — a known
    minimal set the shrinker tests assert on.

    Args:
        indices: Tie-tape draw indices that must all exceed the threshold.
        threshold: The strict lower bound on each witness draw.
    """

    name = "tie-witness"

    def __init__(self, indices: Sequence[int], threshold: float = 0.0) -> None:
        self.indices = tuple(sorted(int(index) for index in indices))
        if not self.indices:
            raise ValueError("tie-witness oracle needs at least one index")
        self.threshold = float(threshold)
        self._simulator = None

    def params(self) -> dict:
        return {"indices": list(self.indices), "threshold": self.threshold}

    def bind(self, simulator) -> None:
        self._simulator = simulator

    def _draws(self) -> Sequence[float]:
        if self._simulator is None:
            return ()
        source = getattr(self._simulator.transport, "ready_source", None)
        return getattr(source, "draws", ())

    def check_sample(self, system, sample: PeriodSample) -> None:
        draws = self._draws()
        if not draws or self.indices[-1] >= len(draws):
            return
        if all(draws[index] > self.threshold for index in self.indices):
            raise OracleViolation(
                "tie-witness",
                f"tie draws at {list(self.indices)} all exceed "
                f"{self.threshold} at t={sample.time}",
            )


ORACLES: dict[str, Callable[[Mapping], FuzzOracle]] = {
    InvariantOracle.name: lambda params: InvariantOracle(),
    TieWitnessOracle.name: lambda params: TieWitnessOracle(**params),
}
"""Oracle constructors by name; each takes the artifact's parameter dict."""


def build_oracle(name: str, params: Mapping | None = None) -> FuzzOracle:
    """Construct a *fresh* oracle instance by registry name."""
    if name not in ORACLES:
        raise ValueError(
            f"unknown oracle {name!r}; expected one of {', '.join(sorted(ORACLES))}"
        )
    return ORACLES[name](dict(params or {}))
