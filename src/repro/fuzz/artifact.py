"""Self-contained JSON repro artifacts for fuzzer-found violations.

An artifact carries everything needed to re-run a failing schedule on a
machine that has only this repository: the :class:`~repro.fuzz.harness.FuzzCase`
(rebuilds the exact simulator), the oracle name and parameters (rebuilds the
failed check), and the minimised schedule (tie-tape entries plus pinned churn
events).  ``replay_artifact`` — and the ``repro`` CLI command on top of it —
replays the schedule bit-identically and reports whether the violation still
fires.

The JSON is deterministic by construction: keys are sorted, field order is
fixed and no wall-clock timestamp is embedded, so re-fuzzing the same seed
produces byte-identical artifacts.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Mapping

from repro.fuzz.harness import CaseOutcome, FuzzCase, run_case
from repro.fuzz.oracle import build_oracle
from repro.net.replay import ChurnEvent, RebalanceEvent, ReplaySchedule

__all__ = ["ARTIFACT_FORMAT", "ReproArtifact", "replay_artifact"]

ARTIFACT_FORMAT = 2
"""Schema version stamped into every artifact.

Format history: 1 — ties + churn; 2 — adds the pinned partition-rebalance
schedule (and the case's ``partition`` axis)."""


@dataclass
class ReproArtifact:
    """One fuzzer finding, minimised and packaged for replay.

    Attributes:
        case: The failing run's full parameterisation.
        oracle: Registry name of the oracle that flagged the violation.
        oracle_params: The oracle's constructor parameters.
        failure_check: Stable name of the violated check.
        failure_message: The violation's detail text from the original run.
        ties: The minimised tie tape — draw index to recorded value
            (indices absent from the map replay as FIFO 0.0).
        churn: The minimised churn schedule (``None`` when the recorded run
            captured no churn dimension).
        rebalances: The pinned partition-rebalance schedule, verbatim from
            the recorded run — never shrunk (``None`` when the run was not
            recorded with rebalance capture).
        original_events: Schedule size before shrinking.
        minimal_events: Schedule size after shrinking.
        shrink_tests: Replays the shrinker spent.
        shrink_minimal: Whether 1-minimality was proven within budget.
        delivery_tail: Last recorded deliveries of the failing run, for
            human context only.
    """

    case: FuzzCase
    oracle: str
    oracle_params: dict = field(default_factory=dict)
    failure_check: str = ""
    failure_message: str = ""
    ties: dict[int, float] = field(default_factory=dict)
    churn: tuple[ChurnEvent, ...] | None = None
    rebalances: tuple[RebalanceEvent, ...] | None = None
    original_events: int = 0
    minimal_events: int = 0
    shrink_tests: int = 0
    shrink_minimal: bool = True
    delivery_tail: tuple[tuple[float, str, str], ...] = ()

    def schedule(self) -> ReplaySchedule:
        """The replay schedule this artifact pins."""
        return ReplaySchedule(
            ties=dict(self.ties), churn=self.churn, rebalances=self.rebalances
        )

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """Deterministic JSON text (sorted keys, no timestamps)."""
        payload = {
            "format": ARTIFACT_FORMAT,
            "case": self.case.to_dict(),
            "oracle": self.oracle,
            "oracle_params": self.oracle_params,
            "failure_check": self.failure_check,
            "failure_message": self.failure_message,
            # JSON object keys must be strings; from_json converts back.
            "ties": {str(index): value for index, value in sorted(self.ties.items())},
            "churn": (
                None
                if self.churn is None
                else [event.to_json() for event in self.churn]
            ),
            "rebalances": (
                None
                if self.rebalances is None
                else [event.to_json() for event in self.rebalances]
            ),
            "original_events": self.original_events,
            "minimal_events": self.minimal_events,
            "shrink_tests": self.shrink_tests,
            "shrink_minimal": self.shrink_minimal,
            "delivery_tail": [list(row) for row in self.delivery_tail],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ReproArtifact":
        payload = json.loads(text)
        version = payload.get("format")
        if version != ARTIFACT_FORMAT:
            raise ValueError(
                f"unsupported repro artifact format {version!r} "
                f"(this build reads format {ARTIFACT_FORMAT})"
            )
        churn = payload.get("churn")
        rebalances = payload.get("rebalances")
        return cls(
            case=FuzzCase.from_dict(payload["case"]),
            oracle=payload["oracle"],
            oracle_params=dict(payload.get("oracle_params", {})),
            failure_check=payload.get("failure_check", ""),
            failure_message=payload.get("failure_message", ""),
            ties={
                int(index): float(value)
                for index, value in payload.get("ties", {}).items()
            },
            churn=(
                None
                if churn is None
                else tuple(ChurnEvent.from_json(row) for row in churn)
            ),
            rebalances=(
                None
                if rebalances is None
                else tuple(RebalanceEvent.from_json(row) for row in rebalances)
            ),
            original_events=int(payload.get("original_events", 0)),
            minimal_events=int(payload.get("minimal_events", 0)),
            shrink_tests=int(payload.get("shrink_tests", 0)),
            shrink_minimal=bool(payload.get("shrink_minimal", True)),
            delivery_tail=tuple(
                (float(row[0]), row[1], row[2])
                for row in payload.get("delivery_tail", [])
            ),
        )

    def save(self, path: pathlib.Path | str) -> pathlib.Path:
        """Write the artifact to ``path`` (parents created), return the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: pathlib.Path | str) -> "ReproArtifact":
        """Read an artifact previously written by :meth:`save`."""
        return cls.from_json(pathlib.Path(path).read_text(encoding="utf-8"))


def replay_artifact(artifact: ReproArtifact, mapping: Mapping | None = None) -> CaseOutcome:
    """Re-run an artifact's minimised schedule under its original oracle.

    Returns the replay's :class:`~repro.fuzz.harness.CaseOutcome`; the
    artifact *reproduces* when ``outcome.violation`` is set and its check
    name equals ``artifact.failure_check``.
    """
    oracle = build_oracle(artifact.oracle, mapping or artifact.oracle_params)
    return run_case(artifact.case, oracle=oracle, schedule=artifact.schedule())
