"""Configuration of the CLASH protocol and its simulation environment.

Defaults follow Section 6.1 of the paper: N = 24-bit identifier keys with an
8-bit skewed base portion, a 24-bit hash space, a starting depth of 6, a
90 % overload threshold, a 54 % underload threshold and a 5-minute
LOAD_CHECK_PERIOD.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import (
    check_in_range,
    check_positive,
    check_type,
)

__all__ = ["ClashConfig"]


@dataclass(frozen=True)
class ClashConfig:
    """All tunable parameters of a CLASH deployment.

    Attributes:
        key_bits: Identifier key width N.
        hash_bits: Hash space width M used by the underlying DHT.
        base_bits: Number of leading key bits drawn from the (possibly skewed)
            base distribution in the simulated workloads (X in the paper).
        initial_depth: Depth at which the key space is initially partitioned
            into root key groups (the paper's depth-variation plot starts at 6).
        min_depth: Minimum depth consolidation may collapse to; root
            ServerTable entries (ParentID = −1) enforce this floor.
        max_depth: Maximum depth splitting may reach; defaults to ``key_bits``.
        overload_threshold: Fraction of server capacity above which a server
            sheds load (0.90 in the paper).
        underload_threshold: Fraction of capacity below which a leaf group is
            considered "cold" and eligible for consolidation (0.54).
        server_capacity: Server processing capacity in load units per second;
            load values are reported as a percentage of this capacity.
        load_check_period: Seconds between load checks (LOAD_CHECK_PERIOD,
            5 minutes in the paper).
        split_retry_limit: Bound on the number of extra depth increases a
            server attempts when the DHT maps a right-child group back to the
            splitting server itself.
        count_routing_hops: If True, message accounting charges every DHT
            forwarding hop; if False only end-to-end request/reply pairs are
            charged.  The paper is ambiguous on this point, so both modes are
            supported and reported.
        data_rate_weight: Load contributed by one data packet per second.
        query_load_weight: Load contributed by the ``log2(1 + queries)`` term.
    """

    key_bits: int = 24
    hash_bits: int = 24
    base_bits: int = 8
    initial_depth: int = 6
    min_depth: int = 2
    max_depth: int | None = None
    overload_threshold: float = 0.90
    underload_threshold: float = 0.54
    server_capacity: float = 4000.0
    load_check_period: float = 300.0
    split_retry_limit: int = 8
    count_routing_hops: bool = False
    data_rate_weight: float = 1.0
    query_load_weight: float = 10.0

    def __post_init__(self) -> None:
        check_type("key_bits", self.key_bits, int)
        check_type("hash_bits", self.hash_bits, int)
        check_type("base_bits", self.base_bits, int)
        check_type("initial_depth", self.initial_depth, int)
        check_type("min_depth", self.min_depth, int)
        check_positive("key_bits", self.key_bits)
        check_positive("hash_bits", self.hash_bits)
        if not 0 <= self.base_bits <= self.key_bits:
            raise ValueError(
                f"base_bits must be in [0, {self.key_bits}], got {self.base_bits}"
            )
        if not 0 <= self.min_depth <= self.initial_depth <= self.key_bits:
            raise ValueError(
                "expected 0 <= min_depth <= initial_depth <= key_bits, got "
                f"min_depth={self.min_depth}, initial_depth={self.initial_depth}, "
                f"key_bits={self.key_bits}"
            )
        if self.max_depth is not None:
            check_type("max_depth", self.max_depth, int)
            if not self.initial_depth <= self.max_depth <= self.key_bits:
                raise ValueError(
                    f"max_depth must be in [{self.initial_depth}, {self.key_bits}], "
                    f"got {self.max_depth}"
                )
        check_in_range("overload_threshold", self.overload_threshold, 0.0, 10.0)
        check_in_range("underload_threshold", self.underload_threshold, 0.0, 10.0)
        if self.underload_threshold >= self.overload_threshold:
            raise ValueError(
                "underload_threshold must be strictly below overload_threshold, got "
                f"{self.underload_threshold} >= {self.overload_threshold}"
            )
        check_positive("server_capacity", self.server_capacity)
        check_positive("load_check_period", self.load_check_period)
        check_type("split_retry_limit", self.split_retry_limit, int)
        check_positive("split_retry_limit", self.split_retry_limit)
        check_positive("data_rate_weight", self.data_rate_weight)
        if self.query_load_weight < 0:
            raise ValueError(
                f"query_load_weight must be non-negative, got {self.query_load_weight}"
            )

    @property
    def effective_max_depth(self) -> int:
        """The depth splitting may not exceed (``max_depth`` or ``key_bits``)."""
        return self.max_depth if self.max_depth is not None else self.key_bits

    @property
    def overload_load(self) -> float:
        """Overload threshold expressed in absolute load units per second."""
        return self.overload_threshold * self.server_capacity

    @property
    def underload_load(self) -> float:
        """Underload threshold expressed in absolute load units per second."""
        return self.underload_threshold * self.server_capacity

    def with_overrides(self, **overrides) -> "ClashConfig":
        """Return a copy with selected fields replaced (validation re-runs)."""
        return replace(self, **overrides)

    @classmethod
    def paper_defaults(cls) -> "ClashConfig":
        """The configuration used throughout the paper's Section 6 experiments."""
        return cls()

    @classmethod
    def small_scale(cls) -> "ClashConfig":
        """A reduced configuration convenient for unit tests and examples.

        Shorter keys and a lower capacity make splits happen quickly with a
        handful of sources, while leaving every protocol code path identical.
        """
        return cls(
            key_bits=12,
            hash_bits=16,
            base_bits=4,
            initial_depth=2,
            min_depth=1,
            server_capacity=100.0,
            load_check_period=10.0,
        )
