"""The per-server table of key groups (Figure 2 of the paper).

Each CLASH server maintains only local state: one :class:`ServerTableEntry`
per key group it currently manages or has split in the past.  The entry fields
mirror Figure 2 exactly:

=================  ======================================================
Field              Meaning
=================  ======================================================
VirtualKeyGroup    The key group (virtual key + depth).
Depth              Redundant with the group, kept for fidelity.
ParentID           Server managing the parent group; ``"self"`` when this
                   server split the parent itself; ``None`` (the paper's −1)
                   for root entries, which stop consolidation from
                   collapsing below a configured minimum depth.
RightChildID       Server that accepted the right-child group when this
                   entry was split; ``None`` while the entry is a leaf.
Active             True when the entry is a leaf of the logical tree, i.e.
                   this server is *currently* aggregating keys under it.
=================  ======================================================

The table's central invariant is that the **active** entries of all servers
taken together form a prefix-free cover of the key space — no active group is
an ancestor of another active group.  Locally the table enforces the part of
the invariant it can see, and the property-based tests check the global
version through :class:`~repro.core.protocol.ClashSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup, first_overlapping_pair

__all__ = ["ServerTableEntry", "ServerTable", "SELF_PARENT"]

SELF_PARENT = "self"
"""ParentID marker meaning "this server split the parent group itself"."""


@dataclass
class ServerTableEntry:
    """One row of a server's work table (Figure 2).

    Attributes:
        group: The virtual key group this row describes.
        parent_id: Name of the server managing the parent group, ``"self"``
            if this server split the parent itself, or ``None`` for a root
            entry (the paper's ParentID = −1).
        right_child_id: Name of the server that accepted the right child when
            this row was split; ``None`` while the row is active (a leaf).
        active: True if this row is a leaf of the logical splitting tree.
    """

    group: KeyGroup
    parent_id: str | None
    right_child_id: str | None = None
    active: bool = True

    @property
    def depth(self) -> int:
        """The group's depth (the table's Depth column)."""
        return self.group.depth

    @property
    def is_root(self) -> bool:
        """True for root entries (ParentID = −1 in the paper)."""
        return self.parent_id is None

    def describe(self) -> dict[str, object]:
        """Plain-dict view matching the paper's column layout."""
        return {
            "VirtualKeyGroup": self.group.wildcard(),
            "Depth": self.depth,
            "ParentID": self.parent_id if self.parent_id is not None else -1,
            "RightChildID": self.right_child_id if self.right_child_id is not None else "-",
            "Active": "Y" if self.active else "N",
        }


class ServerTable:
    """The set of key-group rows a single server knows about.

    Args:
        key_bits: Identifier key width N; all groups stored must use it.
    """

    def __init__(self, key_bits: int) -> None:
        if key_bits <= 0:
            raise ValueError(f"key_bits must be positive, got {key_bits}")
        self._key_bits = key_bits
        self._entries: dict[KeyGroup, ServerTableEntry] = {}
        #: Monotonic counter bumped by every table mutation.  The owning
        #: server keys its per-group load cache on it (a plain attribute, not
        #: a property — the staleness probe is extremely hot).  Flipping an
        #: entry's ``active`` flag outside the table's own mutators would
        #: bypass the counter, which is why all active-ness changes go
        #: through :meth:`record_split` / :meth:`record_consolidation`.
        self.version = 0
        #: Optional zero-argument callback fired on every mutation (i.e. every
        #: ``version`` bump).  The owning server hooks this to flag its load
        #: cache dirty the moment the table changes, instead of re-deriving
        #: staleness from the version counters on every read — the read path
        #: is orders of magnitude hotter than the mutation path.
        self.on_change = None
        self._active_cache: list[KeyGroup] | None = None
        self._sorted_cache: list[KeyGroup] | None = None
        self._active_count = 0

    def _invalidate(self) -> None:
        self.version += 1
        self._active_cache = None
        self._sorted_cache = None
        if self.on_change is not None:
            self.on_change()

    # ------------------------------------------------------------------ #
    # Basic access
    # ------------------------------------------------------------------ #

    @property
    def key_bits(self) -> int:
        """Identifier key width the table operates over."""
        return self._key_bits

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, group: KeyGroup) -> bool:
        return group in self._entries

    def entries(self) -> list[ServerTableEntry]:
        """All rows, sorted by virtual key then depth (stable for reporting).

        The sort order is maintained across reads: it only needs recomputing
        after a row is inserted or removed.
        """
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._entries)
        entries = self._entries
        return [entries[group] for group in self._sorted_cache]

    def entry(self, group: KeyGroup) -> ServerTableEntry:
        """The row for ``group`` (raises :class:`KeyError` if absent)."""
        if group not in self._entries:
            raise KeyError(f"no table entry for group {group}")
        return self._entries[group]

    def active_groups(self) -> list[KeyGroup]:
        """The groups this server currently manages (the leaves).

        The sorted list is maintained incrementally: it is rebuilt only after
        a table mutation, so the very hot load-check path (which reads it many
        times between mutations) pays the sort once.
        """
        if self._active_cache is None:
            self._active_cache = sorted(
                group for group, entry in self._entries.items() if entry.active
            )
        return list(self._active_cache)

    def has_active_groups(self) -> bool:
        """True if at least one entry is active (O(1))."""
        return self._active_count > 0

    def inactive_groups(self) -> list[KeyGroup]:
        """Previously split groups retained as interior bookkeeping rows."""
        return sorted(group for group, entry in self._entries.items() if not entry.active)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_entry(self, entry: ServerTableEntry) -> None:
        """Insert a new row, enforcing local invariants.

        A new *active* row may not be an ancestor or descendant of an existing
        active row: a server never simultaneously aggregates keys under both a
        group and one of its sub-groups.
        """
        group = entry.group
        if group.width != self._key_bits:
            raise ValueError(
                f"group width {group.width} does not match table key_bits {self._key_bits}"
            )
        if group in self._entries:
            raise ValueError(f"group {group} already has a table entry")
        if entry.active:
            for existing_group, existing in self._entries.items():
                if not existing.active:
                    continue
                if existing_group.overlaps(group):
                    raise ValueError(
                        f"active group {group} overlaps existing active group {existing_group}"
                    )
        self._entries[group] = entry
        if entry.active:
            self._active_count += 1
        self._invalidate()

    def remove_entry(self, group: KeyGroup) -> ServerTableEntry:
        """Remove and return the row for ``group``."""
        if group not in self._entries:
            raise KeyError(f"no table entry for group {group}")
        removed = self._entries.pop(group)
        if removed.active:
            self._active_count -= 1
        self._invalidate()
        return removed

    def record_split(self, group: KeyGroup, right_child_server: str) -> tuple[KeyGroup, KeyGroup]:
        """Record that ``group`` was split and its right child shipped away.

        The row for ``group`` becomes inactive with ``RightChildID`` set; a new
        active row is created for the left child with ``ParentID = "self"``.
        Returns the (left, right) child groups.
        """
        entry = self.entry(group)
        if not entry.active:
            raise ValueError(f"cannot split inactive group {group}")
        left, right = group.split()
        entry.active = False
        self._active_count -= 1
        self._invalidate()
        entry.right_child_id = right_child_server
        self.add_entry(ServerTableEntry(group=left, parent_id=SELF_PARENT))
        return left, right

    def record_consolidation(self, parent_group: KeyGroup) -> KeyGroup:
        """Record that the children of ``parent_group`` were merged back.

        The left child's row (held locally) is removed, the parent row becomes
        active again and its ``RightChildID`` is cleared.  Returns the left
        child group that was removed.
        """
        entry = self.entry(parent_group)
        if entry.active:
            raise ValueError(f"group {parent_group} is already active; nothing to consolidate")
        left, _right = parent_group.split()
        if left not in self._entries:
            raise KeyError(
                f"cannot consolidate {parent_group}: left child {left} is not in the table"
            )
        left_entry = self._entries[left]
        if not left_entry.active:
            raise ValueError(
                f"cannot consolidate {parent_group}: left child {left} has itself been split"
            )
        self.remove_entry(left)
        entry.active = True
        self._active_count += 1
        self._invalidate()
        entry.right_child_id = None
        return left

    # ------------------------------------------------------------------ #
    # Queries used by the ACCEPT_OBJECT handler
    # ------------------------------------------------------------------ #

    def active_group_for(self, key: IdentifierKey) -> KeyGroup | None:
        """The active group containing ``key``, or ``None`` if no leaf matches.

        At most one active group can match because active groups are mutually
        prefix-free.
        """
        if key.width != self._key_bits:
            raise ValueError(
                f"key width {key.width} does not match table key_bits {self._key_bits}"
            )
        for group, entry in self._entries.items():
            if entry.active and group.contains_key(key):
                return group
        return None

    def longest_prefix_match(self, key: IdentifierKey) -> int:
        """The longest common prefix between ``key`` and any table row.

        This is the ``d_min`` value an ``INCORRECT_DEPTH`` reply carries; the
        client uses it to narrow its binary search.  Inactive rows count too —
        they tell the client that the group has been split to a greater depth.
        """
        if key.width != self._key_bits:
            raise ValueError(
                f"key width {key.width} does not match table key_bits {self._key_bits}"
            )
        best = 0
        for group in self._entries:
            virtual = group.virtual_key
            match = min(key.common_prefix_length(virtual), group.depth)
            best = max(best, match)
        return best

    # ------------------------------------------------------------------ #
    # Invariant checking (used heavily by the test-suite)
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` if any local invariant is violated."""
        active = [group for group, entry in self._entries.items() if entry.active]
        pair = first_overlapping_pair(active)
        assert pair is None, f"active groups {pair[0]} and {pair[1]} overlap"
        for group, entry in self._entries.items():
            if not entry.active:
                assert entry.right_child_id is not None, (
                    f"inactive group {group} must record its right child"
                )

    def describe(self) -> list[dict[str, object]]:
        """The table rendered as Figure 2-style rows (list of plain dicts)."""
        return [entry.describe() for entry in self.entries()]
