"""CLASH protocol messages and message accounting.

Section 5 of the paper defines the message vocabulary informally; this module
makes it concrete:

* ``ACCEPT_OBJECT`` — a client (or a server acting on a client's behalf)
  presents an object key together with an *estimated* depth.
* ``OK`` / ``OK`` with corrected depth / ``INCORRECT_DEPTH`` — the three
  possible server responses (cases (a), (b) and (c) in the paper).
* ``ACCEPT_KEYGROUP`` — an overloaded server transfers responsibility for a
  right-child key group to a peer; the peer *must* accept.
* ``RELEASE_KEYGROUP`` — a child returns a cold key group to its parent during
  bottom-up consolidation.
* ``LOAD_REPORT`` — the periodic leaf → parent workload report consolidation
  relies on.

The evaluation (Figure 5) reports message rates, so every message carries a
:class:`MessageCategory` and the simulator folds deliveries into a
:class:`MessageStats` accumulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup

__all__ = [
    "MessageCategory",
    "ReplyStatus",
    "AcceptObject",
    "AcceptObjectReply",
    "AcceptKeyGroup",
    "ReleaseKeyGroup",
    "LoadReport",
    "MessageStats",
]


class MessageCategory(enum.Enum):
    """Broad categories used when accounting protocol traffic."""

    LOOKUP = "lookup"
    """Client depth-determination probes and their replies."""

    DHT_ROUTING = "dht_routing"
    """Per-hop forwarding inside the underlying DHT."""

    SPLIT = "split"
    """Key-group split signalling (ACCEPT_KEYGROUP and acknowledgements)."""

    MERGE = "merge"
    """Consolidation signalling (LOAD_REPORT, RELEASE_KEYGROUP)."""

    STATE_TRANSFER = "state_transfer"
    """Application state (stored queries) migrated during splits/merges."""

    DATA = "data"
    """Application data packets delivered to their managing server."""


class ReplyStatus(enum.Enum):
    """The three server responses to an ``ACCEPT_OBJECT`` (paper cases a–c)."""

    OK = "ok"
    """The client guessed the correct depth."""

    OK_CORRECTED_DEPTH = "ok_corrected_depth"
    """The guess was wrong but this server manages the object anyway; the
    reply carries the corrected depth."""

    INCORRECT_DEPTH = "incorrect_depth"
    """The server does not manage the object; the reply carries the longest
    prefix match between the key and the server's table entries."""


@dataclass(frozen=True, slots=True)
class AcceptObject:
    """A request to store (or route) an object under an identifier key.

    Attributes:
        key: The object's N-bit identifier key.
        estimated_depth: The sender's current guess at the key group depth.
        sender: Name of the client or server that issued the request.
    """

    key: IdentifierKey
    estimated_depth: int
    sender: str


@dataclass(frozen=True, slots=True)
class AcceptObjectReply:
    """A server's response to :class:`AcceptObject`.

    Attributes:
        status: Which of the three cases applied.
        correct_depth: The group depth at this server, present for the two OK
            cases.
        longest_prefix_match: For ``INCORRECT_DEPTH``, the length of the
            longest prefix match between the key and any of the server's
            table entries (the paper's ``d_min``).
        server: Name of the responding server.
    """

    status: ReplyStatus
    server: str
    correct_depth: int | None = None
    longest_prefix_match: int | None = None

    def __post_init__(self) -> None:
        if self.status in (ReplyStatus.OK, ReplyStatus.OK_CORRECTED_DEPTH):
            if self.correct_depth is None:
                raise ValueError(f"{self.status} replies must carry correct_depth")
        if self.status is ReplyStatus.INCORRECT_DEPTH:
            if self.longest_prefix_match is None:
                raise ValueError(
                    "INCORRECT_DEPTH replies must carry longest_prefix_match"
                )


@dataclass(frozen=True, slots=True)
class AcceptKeyGroup:
    """Transfer of responsibility for a key group to a child server.

    The receiving server is required to accept (Section 5): an overloaded node
    must always be able to shed load; the child may in turn split further.
    Membership handoffs (server join / failure recovery) reuse the same
    message to move whole groups between peers.

    Attributes:
        group: The key group being transferred (a right child when the
            transfer comes from a split; any active group during a membership
            handoff).
        parent_server: Name of the server managing the parent group, or
            ``None`` when the group is (re)installed as a root entry — the
            paper's ParentID = −1 — during a membership handoff.
        migrated_queries: Number of stored query objects migrated with the
            group (counted as state-transfer overhead).
    """

    group: KeyGroup
    parent_server: str | None
    migrated_queries: int = 0


@dataclass(frozen=True, slots=True)
class ReleaseKeyGroup:
    """A child returns a cold key group to its parent during consolidation.

    Attributes:
        group: The (child) key group being released.
        child_server: Name of the releasing server.
        migrated_queries: Stored queries handed back to the parent.
    """

    group: KeyGroup
    child_server: str
    migrated_queries: int = 0


@dataclass(frozen=True, slots=True)
class LoadReport:
    """Periodic leaf → parent workload report used by consolidation.

    Attributes:
        group: The leaf key group the report describes.
        child_server: Name of the reporting server.
        load: The group's load over the last measurement interval, in absolute
            load units per second.
    """

    group: KeyGroup
    child_server: str
    load: float


@dataclass
class MessageStats:
    """Counts of protocol messages by category.

    The simulator adds to these counters as messages are (logically) sent and
    converts them into the per-server per-second rates Figure 5 reports.
    """

    counts: dict[MessageCategory, float] = field(
        default_factory=lambda: {category: 0.0 for category in MessageCategory}
    )

    def add(self, category: MessageCategory, count: float = 1.0) -> None:
        """Accumulate ``count`` messages of the given category."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.counts[category] += count

    def merge(self, other: "MessageStats") -> None:
        """Fold another accumulator into this one."""
        for category, count in other.counts.items():
            self.counts[category] += count

    def total(self, include: set[MessageCategory] | None = None) -> float:
        """Total messages, optionally restricted to a set of categories."""
        if include is None:
            return sum(self.counts.values())
        return sum(count for category, count in self.counts.items() if category in include)

    def signalling_total(self) -> float:
        """All CLASH signalling (everything except raw application data)."""
        return self.total(
            include={
                MessageCategory.LOOKUP,
                MessageCategory.DHT_ROUTING,
                MessageCategory.SPLIT,
                MessageCategory.MERGE,
                MessageCategory.STATE_TRANSFER,
            }
        )

    def reset(self) -> None:
        """Zero every counter."""
        for category in self.counts:
            self.counts[category] = 0.0

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy keyed by category value (for reporting)."""
        return {category.value: count for category, count in self.counts.items()}
