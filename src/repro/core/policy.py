"""Split and merge selection policies.

The paper deliberately leaves the choice of *which* key group an overloaded
server sheds (and which cold group a server tries to consolidate) outside the
core protocol specification; its implementation uses the hottest group for
splitting and the coldest active group for consolidation (Section 6).  The
policies are pluggable here so that the ablation benchmark (A1 in DESIGN.md)
can quantify how much that choice matters.
"""

from __future__ import annotations

import abc

from repro.keys.keygroup import KeyGroup
from repro.util.rng import RandomStream

__all__ = [
    "SplitPolicy",
    "MergePolicy",
    "HottestGroupSplitPolicy",
    "RandomGroupSplitPolicy",
    "RoundRobinSplitPolicy",
    "CoolestGroupMergePolicy",
]


class SplitPolicy(abc.ABC):
    """Chooses which active key group an overloaded server should split."""

    @abc.abstractmethod
    def select(self, group_loads: dict[KeyGroup, float], max_depth: int) -> KeyGroup | None:
        """Pick a group to split.

        Args:
            group_loads: Load (absolute units/sec) of each active group on the
                overloaded server.
            max_depth: Groups already at this depth cannot be split further.

        Returns:
            The chosen group, or ``None`` if no group is splittable.
        """

    @staticmethod
    def _splittable(group_loads: dict[KeyGroup, float], max_depth: int) -> list[KeyGroup]:
        return [group for group in group_loads if group.depth < max_depth]


class HottestGroupSplitPolicy(SplitPolicy):
    """The paper's choice: split the group with the highest recent load."""

    def select(self, group_loads: dict[KeyGroup, float], max_depth: int) -> KeyGroup | None:
        candidates = self._splittable(group_loads, max_depth)
        if not candidates:
            return None
        return max(candidates, key=lambda group: (group_loads[group], group))


class RandomGroupSplitPolicy(SplitPolicy):
    """Ablation: split a uniformly random splittable group."""

    def __init__(self, rng: RandomStream) -> None:
        self._rng = rng

    def select(self, group_loads: dict[KeyGroup, float], max_depth: int) -> KeyGroup | None:
        candidates = self._splittable(group_loads, max_depth)
        if not candidates:
            return None
        return self._rng.choice(sorted(candidates))


class RoundRobinSplitPolicy(SplitPolicy):
    """Ablation: cycle deterministically through the splittable groups."""

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, group_loads: dict[KeyGroup, float], max_depth: int) -> KeyGroup | None:
        candidates = sorted(self._splittable(group_loads, max_depth))
        if not candidates:
            return None
        choice = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return choice


class MergePolicy(abc.ABC):
    """Chooses which cold group an under-loaded server should try to consolidate."""

    @abc.abstractmethod
    def select(
        self, group_loads: dict[KeyGroup, float], cold_threshold: float, min_depth: int
    ) -> KeyGroup | None:
        """Pick an active group whose parent should attempt consolidation.

        Args:
            group_loads: Load of each active group on the under-loaded server.
            cold_threshold: Loads at or below this value count as cold.
            min_depth: Groups at this depth (root groups) are never merged.
        """


class CoolestGroupMergePolicy(MergePolicy):
    """The paper's choice: consolidate the coldest active key group."""

    def select(
        self, group_loads: dict[KeyGroup, float], cold_threshold: float, min_depth: int
    ) -> KeyGroup | None:
        candidates = [
            group
            for group, load in group_loads.items()
            if group.depth > min_depth and load <= cold_threshold
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda group: (group_loads[group], group))
