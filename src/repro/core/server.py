"""The CLASH server: load monitoring, binary splitting and consolidation.

A :class:`ClashServer` owns a :class:`~repro.core.server_table.ServerTable`,
a :class:`~repro.app.query_store.QueryStore` of persistent queries, and the
per-group data-rate measurements for the current interval.  It implements the
server side of Section 5 of the paper:

* the three-case ``ACCEPT_OBJECT`` handler,
* mandatory acceptance of ``ACCEPT_KEYGROUP`` transfers,
* selection of a group to shed when overloaded (pluggable policy, the paper
  uses "hottest"),
* bottom-up consolidation bookkeeping (load reports from children, merge when
  both children of an inactive entry are cold).

Servers never talk to each other directly in this module — all inter-server
communication is mediated by :class:`~repro.core.protocol.ClashSystem`, which
models the network and charges message costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.load_model import LoadModel
from repro.app.query_store import Query, QueryStore
from repro.core.config import ClashConfig
from repro.core.messages import (
    AcceptKeyGroup,
    AcceptObject,
    AcceptObjectReply,
    LoadReport,
    ReleaseKeyGroup,
    ReplyStatus,
)
from repro.core.policy import (
    CoolestGroupMergePolicy,
    HottestGroupSplitPolicy,
    MergePolicy,
    SplitPolicy,
)
from repro.core.server_table import SELF_PARENT, ServerTable, ServerTableEntry
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup

__all__ = ["ClashServer", "GroupLoad"]


@dataclass(frozen=True)
class GroupLoad:
    """Load breakdown of a single key group over the last interval.

    Attributes:
        group: The key group.
        data_rate: Aggregate packet rate (packets/sec) directed at the group.
        query_count: Number of persistent queries stored under the group.
        load: Combined load in absolute units/sec according to the load model.
    """

    group: KeyGroup
    data_rate: float
    query_count: int
    load: float


class ClashServer:
    """One peer server participating in the CLASH overlay.

    Args:
        name: The server's name (also its identity on the Chord ring).
        config: Protocol configuration.
        split_policy: How to choose the group to shed when overloaded
            (defaults to the paper's hottest-group policy).
        merge_policy: How to choose the group to consolidate when under-loaded
            (defaults to the paper's coldest-group policy).
    """

    def __init__(
        self,
        name: str,
        config: ClashConfig,
        split_policy: SplitPolicy | None = None,
        merge_policy: MergePolicy | None = None,
    ) -> None:
        if not name:
            raise ValueError("server name must be non-empty")
        self._name = name
        self._config = config
        self._load_model = LoadModel(config)
        self._table = ServerTable(key_bits=config.key_bits)
        self._queries = QueryStore()
        self._group_rates: dict[KeyGroup, float] = {}
        self._group_query_counts: dict[KeyGroup, float] = {}
        self._child_reports: dict[KeyGroup, LoadReport] = {}
        self._split_policy = split_policy or HottestGroupSplitPolicy()
        self._merge_policy = merge_policy or CoolestGroupMergePolicy()
        self.splits_performed = 0
        self.merges_performed = 0
        # Per-interval load cache.  The load check asks for total_load() /
        # group loads many times between mutations (overload probes, split
        # selection, report building); the cache makes every repeat read a
        # dict hit and is recomputed — in exactly the order the uncached code
        # used, so the floats are bit-identical — only after one of the three
        # load inputs (rates/overrides, the table, the query store) changed.
        # Staleness is *pushed* at mutation time (rate setters call
        # _mark_loads_dirty directly; the table and query store fire their
        # on_change hooks), so the read path is a single bool test instead of
        # re-summing three version counters per call — _current_loads runs
        # millions of times per paper-scale run.
        self._loads_dirty = True
        self._loads_epoch = 0
        self._loads_cache: dict[KeyGroup, GroupLoad] = {}
        self._total_load_cache = 0.0
        self._reports_epoch = -1
        self._reports_cache: list[tuple[str, LoadReport]] = []
        self._table.on_change = self._mark_loads_dirty
        self._queries.on_change = self._mark_loads_dirty
        # Load-change listener (overload-set tracking).  The owning
        # ClashSystem installs a callback here; every mutation of a load
        # input -- measured rates / query overrides, the table's active
        # groups, the query store -- pushes this server's name into the
        # system's dirty set, so steady-state load checks probe only the
        # servers that actually changed.
        self._load_listener = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """The server's name."""
        return self._name

    @property
    def config(self) -> ClashConfig:
        """The protocol configuration the server runs with."""
        return self._config

    @property
    def table(self) -> ServerTable:
        """The server's work table (Figure 2)."""
        return self._table

    @property
    def query_store(self) -> QueryStore:
        """The persistent queries currently stored on this server."""
        return self._queries

    @property
    def load_model(self) -> LoadModel:
        """The load model used for overload / underload decisions."""
        return self._load_model

    def set_load_listener(self, listener) -> None:
        """Install the callback invoked (with this server's name) whenever a
        load input changes.  ``None`` disables notifications."""
        self._load_listener = listener

    def _notify_load_changed(self) -> None:
        if self._load_listener is not None:
            self._load_listener(self._name)

    def active_groups(self) -> list[KeyGroup]:
        """The key groups this server currently manages."""
        return self._table.active_groups()

    def is_active(self) -> bool:
        """True if the server currently manages at least one key group."""
        return self._table.has_active_groups()

    # ------------------------------------------------------------------ #
    # Load bookkeeping
    # ------------------------------------------------------------------ #

    def reset_interval(self) -> None:
        """Clear per-interval measurements (rates and child load reports)."""
        self._group_rates.clear()
        self._group_query_counts.clear()
        self._child_reports.clear()
        self._touch_rates()

    def clear_child_reports(self) -> None:
        """Drop the child load reports without touching the measured rates.

        The incremental assignment path uses this where a full reassignment
        used :meth:`reset_interval`: reports must not survive into the next
        load check, but the (still exact) rates and query overrides do.
        """
        if self._child_reports:
            self._child_reports.clear()

    def discard_measurements(self, group: KeyGroup) -> None:
        """Drop the interval rate and query override recorded for ``group``.

        The incremental assignment path calls this at a period/iteration
        boundary for groups this server no longer manages — exactly what a
        full ``reset_interval`` would have wiped.  Without it, a stale query
        override would be resurrected if the same group were re-activated
        here by a later split or merge.
        """
        removed = self._group_rates.pop(group, None) is not None
        if self._group_query_counts.pop(group, None) is not None:
            removed = True
        if removed:
            self._touch_rates()

    def set_group_rate(self, group: KeyGroup, rate: float) -> None:
        """Record the data rate observed for an active group this interval."""
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        if group not in self._table or not self._table.entry(group).active:
            raise KeyError(f"{self._name} does not actively manage group {group}")
        self._group_rates[group] = rate
        self._touch_rates()

    def add_group_rate(self, group: KeyGroup, rate: float) -> None:
        """Accumulate additional data rate onto an active group."""
        current = self._group_rates.get(group, 0.0)
        self.set_group_rate(group, current + rate)

    def set_group_query_count(self, group: KeyGroup, count: float) -> None:
        """Override the stored-query count used for an active group's load.

        The flow-level simulator models the 50,000-strong query population
        analytically (expected counts per group) rather than materialising
        every query object; this override supplies that expected count.  When
        no override is present the count comes from the server's own
        :class:`~repro.app.query_store.QueryStore`.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if group not in self._table or not self._table.entry(group).active:
            raise KeyError(f"{self._name} does not actively manage group {group}")
        self._group_query_counts[group] = count
        self._touch_rates()

    def _touch_rates(self) -> None:
        """Invalidate the load cache after a rate/override mutation."""
        self._loads_dirty = True
        self._notify_load_changed()

    def _mark_loads_dirty(self) -> None:
        """Table / query-store mutation hook: the load cache is stale."""
        self._loads_dirty = True

    def _current_loads(self) -> dict[KeyGroup, GroupLoad]:
        """The cached per-group loads, recomputed only after a mutation.

        Internal callers iterate this dict directly and must not mutate it;
        :meth:`group_loads` hands out a copy.
        """
        if self._loads_dirty:
            loads: dict[KeyGroup, GroupLoad] = {}
            for group in self._table.active_groups():
                rate = self._group_rates.get(group, 0.0)
                if group in self._group_query_counts:
                    query_count = self._group_query_counts[group]
                else:
                    query_count = self._queries.count_in_group(group)
                load = self._load_model.load(rate, query_count)
                loads[group] = GroupLoad(
                    group=group, data_rate=rate, query_count=int(query_count), load=load
                )
            self._loads_cache = loads
            self._total_load_cache = sum(entry.load for entry in loads.values())
            self._loads_dirty = False
            self._loads_epoch += 1
        return self._loads_cache

    def group_loads(self) -> dict[KeyGroup, GroupLoad]:
        """Per-active-group load breakdown for the current interval."""
        return dict(self._current_loads())

    def total_load(self) -> float:
        """The server's total load in absolute units/sec."""
        self._current_loads()
        return self._total_load_cache

    def load_percent(self) -> float:
        """The server's total load as a percentage of its capacity."""
        return 100.0 * self.total_load() / self._config.server_capacity

    def is_overloaded(self) -> bool:
        """True if the server's load exceeds the overload threshold."""
        self._current_loads()
        return self._load_model.is_overloaded(self._total_load_cache)

    def is_underloaded(self) -> bool:
        """True if the server's load is below the underload threshold."""
        self._current_loads()
        return self._load_model.is_underloaded(self._total_load_cache)

    # ------------------------------------------------------------------ #
    # Key-group assignment
    # ------------------------------------------------------------------ #

    def assign_root_group(self, group: KeyGroup) -> None:
        """Assign an initial (root) key group to this server at bootstrap.

        Root entries have ParentID = −1 (``None``); consolidation never
        collapses past them.
        """
        self._table.add_entry(ServerTableEntry(group=group, parent_id=None))
        self._notify_load_changed()

    def accept_keygroup(self, message: AcceptKeyGroup, queries: list[Query] | None = None) -> None:
        """Accept responsibility for a key group shed by an overloaded peer.

        Acceptance is mandatory (Section 5); the receiving server may later
        split the group further if it is itself overloaded.
        """
        self._table.add_entry(
            ServerTableEntry(group=message.group, parent_id=message.parent_server)
        )
        if queries:
            self._queries.add_all(queries)
        self._notify_load_changed()

    def accept_keygroup_back(self, group: KeyGroup, queries: list[Query] | None = None) -> None:
        """Re-absorb a consolidated child group's state (parent side of a merge)."""
        if queries:
            self._queries.add_all(queries)
        self.merges_performed += 1
        self._table.record_consolidation(group)
        self._notify_load_changed()

    def release_group(self, group: KeyGroup) -> list[Query]:
        """Give up an active group during consolidation (child side of a merge).

        Removes the table entry and returns the queries that must migrate back
        to the parent.
        """
        entry = self._table.entry(group)
        if not entry.active:
            raise ValueError(f"cannot release group {group}: it has been split further")
        queries = self._queries.extract_group(group)
        self._table.remove_entry(group)
        self._group_rates.pop(group, None)
        self._notify_load_changed()
        return queries

    # ------------------------------------------------------------------ #
    # The ACCEPT_OBJECT handler (paper cases a, b, c)
    # ------------------------------------------------------------------ #

    def handle_accept_object(self, message: AcceptObject) -> AcceptObjectReply:
        """Respond to an object presented with an estimated depth."""
        key = message.key
        matching = self._table.active_group_for(key)
        if matching is not None:
            if matching.depth == message.estimated_depth:
                # Case (a): the client guessed the right depth.
                status = ReplyStatus.OK
            else:
                # Case (b): wrong depth, but the object still belongs here.
                status = ReplyStatus.OK_CORRECTED_DEPTH
            return AcceptObjectReply(
                status=status, server=self._name, correct_depth=matching.depth
            )
        # Case (c): this server is not responsible for the object.
        return AcceptObjectReply(
            status=ReplyStatus.INCORRECT_DEPTH,
            server=self._name,
            longest_prefix_match=self._table.longest_prefix_match(key),
        )

    def store_query(self, query: Query) -> None:
        """Store a persistent query (the object type that survives splits)."""
        if self._table.active_group_for(query.key) is None:
            raise ValueError(
                f"{self._name} does not manage a group containing key {query.key}"
            )
        self._queries.add(query)
        self._notify_load_changed()

    # ------------------------------------------------------------------ #
    # Splitting (overload)
    # ------------------------------------------------------------------ #

    def choose_group_to_split(self) -> KeyGroup | None:
        """Pick the group to shed according to the split policy."""
        loads = {group: info.load for group, info in self._current_loads().items()}
        if not loads:
            return None
        return self._split_policy.select(loads, self._config.effective_max_depth)

    def perform_split(
        self, group: KeyGroup, right_child_server: str
    ) -> tuple[KeyGroup, KeyGroup, list[Query]]:
        """Split ``group`` and extract the state migrating to the right child.

        Returns ``(left, right, migrated_queries)``.  The caller (the
        :class:`~repro.core.protocol.ClashSystem`) is responsible for
        delivering the ``ACCEPT_KEYGROUP`` message and the queries to the
        right-child server.
        """
        rate = self._group_rates.pop(group, 0.0)
        left, right = self._table.record_split(group, right_child_server)
        migrated = self._queries.extract_group(right)
        # Until fresh measurements arrive, attribute half the parent's rate to
        # the remaining left child (the key space halves under a split).
        self._group_rates[left] = rate / 2.0
        self.splits_performed += 1
        self._notify_load_changed()
        return left, right, migrated

    def undo_split(self, group: KeyGroup, queries: list[Query] | None = None) -> None:
        """Revert a :meth:`perform_split` whose transfer was never delivered.

        The right-child server failed while the ``ACCEPT_KEYGROUP`` was in
        flight, so responsibility never moved: the table reverts to the
        pre-split entry and the extracted queries come home.  The parent's
        measured rate was dropped by :meth:`perform_split`; the caller must
        mark the group for reassignment.
        """
        left = self._table.record_consolidation(group)
        self._group_rates.pop(left, None)
        if queries:
            self._queries.add_all(queries)
        self.splits_performed -= 1
        self._notify_load_changed()

    def perform_local_split(self, group: KeyGroup) -> tuple[KeyGroup, KeyGroup]:
        """Split ``group`` but keep both children on this server.

        Used when the DHT maps the right child back to the splitting server
        itself (Section 5's self-collision case): the server records the split
        and immediately retries by splitting the right child again.
        """
        rate = self._group_rates.pop(group, 0.0)
        left, right = self._table.record_split(group, right_child_server=self._name)
        self._table.add_entry(ServerTableEntry(group=right, parent_id=SELF_PARENT))
        self._group_rates[left] = rate / 2.0
        self._group_rates[right] = rate / 2.0
        self.splits_performed += 1
        self._notify_load_changed()
        return left, right

    # ------------------------------------------------------------------ #
    # Consolidation (underload, bottom-up)
    # ------------------------------------------------------------------ #

    def choose_group_to_consolidate(self) -> KeyGroup | None:
        """Pick the cold leaf group to report to its parent (merge policy)."""
        loads = {group: info.load for group, info in self._current_loads().items()}
        if not loads:
            return None
        return self._merge_policy.select(
            loads, cold_threshold=0.5 * self._config.underload_load, min_depth=self._config.min_depth
        )

    def build_load_reports(self) -> list[LoadReport]:
        """Load reports for every active leaf group whose parent lives elsewhere.

        These are the periodic leaf → parent messages that drive bottom-up
        consolidation.
        """
        return [report for _parent, report in self.addressed_load_reports()]

    def addressed_load_reports(self) -> list[tuple[str, LoadReport]]:
        """``(parent server, report)`` pairs for every reportable leaf group.

        The pairs are cached against the load epoch: while nothing changed
        since the last check, the identical frozen report objects are
        re-delivered without being rebuilt.
        """
        loads = self._current_loads()
        if self._reports_epoch == self._loads_epoch:
            return self._reports_cache
        reports: list[tuple[str, LoadReport]] = []
        for group, info in loads.items():
            parent_id = self._table.entry(group).parent_id
            if parent_id is None or parent_id == SELF_PARENT:
                continue
            reports.append(
                (parent_id, LoadReport(group=group, child_server=self._name, load=info.load))
            )
        self._reports_cache = reports
        self._reports_epoch = self._loads_epoch
        return reports

    def receive_load_report(self, report: LoadReport) -> None:
        """Record a child's load report for the current interval."""
        self._child_reports[report.group] = report

    def discard_child_report(self, group: KeyGroup) -> None:
        """Forget the child load report recorded for ``group`` (if any).

        The report-diff exchange uses this to retract a report that a
        re-delivering child no longer addresses here — the state a
        period-boundary :meth:`clear_child_reports` would have wiped.  Like
        report delivery, it does not notify the load listener: child reports
        are consolidation inputs, not load inputs.
        """
        self._child_reports.pop(group, None)

    def consolidation_candidates(self) -> list[KeyGroup]:
        """Inactive parent groups whose two children are currently both cold.

        The left child is held locally (its load is measured directly).  The
        right child's load comes from the most recent
        :class:`~repro.core.messages.LoadReport` — or, when the right child is
        also held locally (the self-collision case of Section 5), from the
        local measurement.  A parent group qualifies when the combined child
        load is below the underload threshold *and* absorbing the right child
        would not push this server over the overload threshold — without the
        second condition a split performed to relieve overload would be undone
        at the next check, producing a split/merge oscillation.
        """
        candidates: list[KeyGroup] = []
        local_loads = self._current_loads()
        total_load = self._total_load_cache
        for entry in self._table.entries():
            if entry.active:
                continue
            parent_group = entry.group
            left, right = parent_group.split()
            if left not in self._table or not self._table.entry(left).active:
                continue
            left_load = local_loads[left].load if left in local_loads else 0.0
            right_is_local = right in self._table and self._table.entry(right).active
            if right_is_local:
                right_load = local_loads[right].load if right in local_loads else 0.0
            else:
                report = self._child_reports.get(right)
                if report is None:
                    continue
                right_load = report.load
            if not self._load_model.siblings_mergeable(left_load, right_load):
                continue
            added_load = 0.0 if right_is_local else right_load
            if self._load_model.is_overloaded(total_load + added_load):
                continue
            candidates.append(parent_group)
        return sorted(candidates, key=lambda group: -group.depth)

    def build_release_request(self, parent_group: KeyGroup) -> ReleaseKeyGroup:
        """The request a parent sends to the right-child server during a merge."""
        entry = self._table.entry(parent_group)
        if entry.active:
            raise ValueError(f"group {parent_group} is active; nothing to consolidate")
        if entry.right_child_id is None:
            raise ValueError(f"group {parent_group} has no recorded right child")
        _left, right = parent_group.split()
        return ReleaseKeyGroup(group=right, child_server=entry.right_child_id)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def describe(self) -> dict[str, object]:
        """Snapshot of the server, convenient for examples and debugging."""
        return {
            "name": self._name,
            "active_groups": [group.wildcard() for group in self.active_groups()],
            "load_percent": self.load_percent(),
            "stored_queries": len(self._queries),
            "splits_performed": self.splits_performed,
            "merges_performed": self.merges_performed,
        }
