"""The CLASH client: depth discovery and server caching.

A client wishing to insert or look up an object must first discover the
*current* depth of the key group its identifier key belongs to (Section 5).
It does so with a modified binary search over the depth range ``[0, N]``:

* probe an estimated depth ``d`` by sending ``ACCEPT_OBJECT`` for the virtual
  key of depth ``d`` (routed through the DHT);
* an ``OK`` (possibly with a corrected depth) ends the search;
* an ``INCORRECT_DEPTH(d_min)`` reply narrows the range using the paper's two
  rules: if ``d_min > d`` the true depth is at least ``d_min + 1`` (no new
  upper bound); if ``d_min < d`` the true depth lies in
  ``[d_min + 1, d - 1]``.

The paper's rules are heuristics — they are correct in the common case but the
information in a single ``INCORRECT_DEPTH`` reply does not always bound the
true depth (see EXPERIMENTS.md, E7).  The implementation therefore tracks the
set of depths already probed and, whenever the heuristic window empties or
repeats itself, falls back to probing the nearest untried depth.  Probing the
true depth always succeeds (the virtual key of the true group routes to the
server that manages it), so the search is guaranteed to converge within
``N + 1`` probes while remaining much faster on average — matching the paper's
"faster than log N in practice" claim.

Clients also cache the (group → server) binding they discover so that
subsequent packets of the same virtual stream are sent directly to the
managing server without any DHT traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.messages import AcceptObjectReply, ReplyStatus
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup
from repro.net.transport import DeliveryFailed

__all__ = ["ClashClient", "DepthSearchResult", "ObjectRouter"]


class ObjectRouter(Protocol):
    """The transport a client uses to probe servers.

    Implemented by :class:`~repro.core.protocol.ClashSystem`; the indirection
    keeps the client testable with a scripted router.
    """

    def route_accept_object(
        self, key: IdentifierKey, estimated_depth: int, sender: str
    ) -> tuple[AcceptObjectReply, int]:
        """Route an ``ACCEPT_OBJECT`` probe; returns (reply, messages charged)."""
        ...


@dataclass(frozen=True)
class DepthSearchResult:
    """Outcome of one depth-discovery search.

    Attributes:
        key: The identifier key that was resolved.
        group: The active key group the key currently belongs to.
        server: Name of the server managing that group.
        probes: Number of ``ACCEPT_OBJECT`` probes issued.
        messages: Total messages charged for the search (probes, replies and —
            depending on configuration — DHT routing hops).
        probe_depths: The sequence of depths probed, in order.
    """

    key: IdentifierKey
    group: KeyGroup
    server: str
    probes: int
    messages: int
    probe_depths: tuple[int, ...] = field(default_factory=tuple)


class ClashClient:
    """A client node that inserts objects into, and queries, a CLASH system.

    Args:
        name: Client name (used as the message sender).
        router: Transport used to deliver ``ACCEPT_OBJECT`` probes.
        key_bits: Identifier key width N.
        initial_depth_hint: Depth used as the first guess when nothing better
            is known; the paper's clients "estimate (e.g. pick at random)" —
            a stable hint equal to the system's initial depth converges faster
            and is what the reference simulation uses.
    """

    def __init__(
        self,
        name: str,
        router: ObjectRouter,
        key_bits: int,
        initial_depth_hint: int | None = None,
    ) -> None:
        if not name:
            raise ValueError("client name must be non-empty")
        if key_bits <= 0:
            raise ValueError(f"key_bits must be positive, got {key_bits}")
        if initial_depth_hint is not None and not 0 <= initial_depth_hint <= key_bits:
            raise ValueError(
                f"initial_depth_hint must be in [0, {key_bits}], got {initial_depth_hint}"
            )
        self._name = name
        self._router = router
        self._key_bits = key_bits
        self._initial_depth_hint = (
            initial_depth_hint if initial_depth_hint is not None else key_bits // 4
        )
        self._cache: dict[KeyGroup, str] = {}
        self.lookups_performed = 0
        self.cache_hits = 0

    @property
    def name(self) -> str:
        """The client's name."""
        return self._name

    @property
    def cache(self) -> dict[KeyGroup, str]:
        """The client's (key group → server) cache (read-only view by convention)."""
        return self._cache

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #

    def cached_server_for(self, key: IdentifierKey) -> tuple[KeyGroup, str] | None:
        """Return the cached (group, server) binding covering ``key``, if any."""
        for group, server in self._cache.items():
            if group.contains_key(key):
                return group, server
        return None

    def invalidate(self, group: KeyGroup) -> None:
        """Drop a cached binding (e.g. after being redirected by a split)."""
        self._cache.pop(group, None)

    def invalidate_all(self) -> None:
        """Drop every cached binding."""
        self._cache.clear()

    # ------------------------------------------------------------------ #
    # Depth discovery
    # ------------------------------------------------------------------ #

    def find_group(
        self, key: IdentifierKey, use_cache: bool = True
    ) -> DepthSearchResult:
        """Resolve the active key group (and server) for ``key``.

        Uses the cache when permitted and falls back to the modified binary
        search otherwise.  A cached resolution costs zero messages.
        """
        if key.width != self._key_bits:
            raise ValueError(
                f"key width {key.width} does not match client key_bits {self._key_bits}"
            )
        if use_cache:
            cached = self.cached_server_for(key)
            if cached is not None:
                group, server = cached
                self.cache_hits += 1
                return DepthSearchResult(
                    key=key,
                    group=group,
                    server=server,
                    probes=0,
                    messages=0,
                    probe_depths=(),
                )
        result = self._search_depth(key)
        self._cache[result.group] = result.server
        self.lookups_performed += 1
        return result

    def _search_depth(self, key: IdentifierKey) -> DepthSearchResult:
        """The modified binary search of Section 5."""
        low, high = 0, self._key_bits
        tried: set[int] = set()
        probe_depths: list[int] = []
        total_messages = 0
        failed_probes = 0
        estimate = min(max(self._initial_depth_hint, low), high)
        while True:
            estimate = self._next_untried(estimate, low, high, tried)
            tried.add(estimate)
            probe_depths.append(estimate)
            try:
                reply, cost = self._router.route_accept_object(key, estimate, self._name)
            except DeliveryFailed:
                # The probed server failed with the request in flight.  The
                # DHT re-stabilises before control returns, so the same depth
                # re-probes against a live owner; the bound keeps a cascading
                # failure from retrying forever.
                failed_probes += 1
                if failed_probes > self._key_bits:
                    raise
                total_messages += 1  # the lost probe still crossed the wire
                tried.discard(estimate)
                continue
            total_messages += cost
            if reply.status in (ReplyStatus.OK, ReplyStatus.OK_CORRECTED_DEPTH):
                depth = reply.correct_depth
                assert depth is not None
                group = KeyGroup.from_key(key, depth)
                return DepthSearchResult(
                    key=key,
                    group=group,
                    server=reply.server,
                    probes=len(probe_depths),
                    messages=total_messages,
                    probe_depths=tuple(probe_depths),
                )
            d_min = reply.longest_prefix_match
            assert d_min is not None
            if d_min > estimate:
                # Paper rule 1: the true depth is beyond d_min; no upper bound.
                low = max(low, d_min + 1)
            elif d_min < estimate:
                # Paper rule 2: the true depth lies in [d_min + 1, estimate - 1].
                low = max(low, d_min + 1)
                high = min(high, estimate - 1)
            else:
                # d_min == estimate: the guess itself is wrong, look deeper first.
                low = max(low, estimate + 1)
            if low > high or all(d in tried for d in range(low, high + 1)):
                # The heuristic window is exhausted (its rules are not always
                # sound); widen back to every depth not yet probed.
                low, high = 0, self._key_bits
            if len(tried) > self._key_bits:
                raise RuntimeError(
                    f"depth search for key {key} did not converge after probing "
                    f"every depth; the system's group state is inconsistent"
                )
            estimate = (low + high) // 2

    @staticmethod
    def _next_untried(estimate: int, low: int, high: int, tried: set[int]) -> int:
        """The untried depth closest to ``estimate`` within ``[low, high]``.

        Falls back to any untried depth when the window is fully explored.
        """
        candidates = [d for d in range(low, high + 1) if d not in tried]
        if not candidates:
            candidates = [d for d in range(0, max(high, low) + 1) if d not in tried]
        if not candidates:
            raise RuntimeError("no untried depths remain")
        return min(candidates, key=lambda d: (abs(d - estimate), d))

    # ------------------------------------------------------------------ #
    # Object operations
    # ------------------------------------------------------------------ #

    def insert_object(self, key: IdentifierKey) -> DepthSearchResult:
        """Insert an object: resolve its group, then deliver it to the server.

        Returns the resolution result; the caller is responsible for any
        application-level handling of the stored object.
        """
        return self.find_group(key)

    def handle_redirect(self, key: IdentifierKey) -> DepthSearchResult:
        """Re-resolve a key after a split or merge redirected this client."""
        cached = self.cached_server_for(key)
        if cached is not None:
            self.invalidate(cached[0])
        return self.find_group(key, use_cache=False)
