"""Range queries over the hierarchical identifier key space (paper Section 7).

The paper's future-work section argues that CLASH will handle *range queries*
better than a basic DHT: because CLASH clusters a contiguous range of
identifier keys onto few servers (one, if load permits), a query over a key
range needs to be replicated to far fewer servers than under a fixed
fine-grained partition, where the range is scattered across many nodes.

This module implements that extension:

* :func:`canonical_cover` — decompose an arbitrary closed key interval into
  the minimal set of prefix-aligned key groups (the classic canonical cover
  used by trie/quad-tree range queries).
* :class:`RangeQueryPlanner` — resolve a range against a live
  :class:`~repro.core.protocol.ClashSystem`: which active key groups (and
  therefore servers) must receive a copy of the query, and at what message
  cost.
* :func:`fixed_depth_replica_count` — the comparison point: how many
  fixed-depth groups a basic ``DHT(x)`` deployment would have to contact for
  the same range.

The E9 benchmark (`benchmarks/bench_range_queries.py`) quantifies the
difference on skew-shaped deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.protocol import ClashSystem
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup
from repro.util.validation import check_type

__all__ = [
    "KeyRange",
    "canonical_cover",
    "fixed_depth_replica_count",
    "RangeQueryPlan",
    "RangeQueryPlanner",
]


@dataclass(frozen=True)
class KeyRange:
    """A closed interval ``[low, high]`` of ``width``-bit identifier key values.

    Attributes:
        low: Smallest key value in the range.
        high: Largest key value in the range (inclusive).
        width: Identifier key width N.
    """

    low: int
    high: int
    width: int

    def __post_init__(self) -> None:
        check_type("low", self.low, int)
        check_type("high", self.high, int)
        check_type("width", self.width, int)
        if self.width <= 0:
            raise ValueError(f"width must be positive, got {self.width}")
        if not 0 <= self.low <= self.high < (1 << self.width):
            raise ValueError(
                f"expected 0 <= low <= high < 2**width, got low={self.low}, "
                f"high={self.high}, width={self.width}"
            )

    @property
    def size(self) -> int:
        """Number of key values in the range."""
        return self.high - self.low + 1

    def contains(self, key: IdentifierKey) -> bool:
        """True if the key's value falls inside the range."""
        if key.width != self.width:
            raise ValueError(
                f"key width {key.width} does not match range width {self.width}"
            )
        return self.low <= key.value <= self.high

    def overlaps_group(self, group: KeyGroup) -> bool:
        """True if the range shares at least one key with ``group``."""
        if group.width != self.width:
            raise ValueError(
                f"group width {group.width} does not match range width {self.width}"
            )
        group_low = group.virtual_key.value
        group_high = group_low + group.size - 1
        return not (group_high < self.low or group_low > self.high)

    @classmethod
    def from_prefix(cls, group: KeyGroup) -> "KeyRange":
        """The contiguous range covered by a key group."""
        low = group.virtual_key.value
        return cls(low=low, high=low + group.size - 1, width=group.width)


def canonical_cover(key_range: KeyRange) -> list[KeyGroup]:
    """Decompose a key range into the minimal list of prefix-aligned key groups.

    The returned groups are disjoint, ordered by their low end, and their
    union is exactly the range.  The list has at most ``2 * width`` entries.
    """
    check_type("key_range", key_range, KeyRange)
    cover: list[KeyGroup] = []

    def descend(group: KeyGroup) -> None:
        group_range = KeyRange.from_prefix(group)
        if group_range.low > key_range.high or group_range.high < key_range.low:
            return
        if key_range.low <= group_range.low and group_range.high <= key_range.high:
            cover.append(group)
            return
        left, right = group.split()
        descend(left)
        descend(right)

    descend(KeyGroup.root(key_range.width))
    return cover


def fixed_depth_replica_count(key_range: KeyRange, depth: int) -> int:
    """How many depth-``depth`` groups a basic DHT must contact for the range.

    This is the number of distinct ``depth``-bit prefixes intersecting the
    range; with high probability each maps to a different server, so it is
    also (up to collisions) the number of query replicas ``DHT(depth)`` needs.
    """
    if not 0 <= depth <= key_range.width:
        raise ValueError(f"depth must be in [0, {key_range.width}], got {depth}")
    shift = key_range.width - depth
    first = key_range.low >> shift
    last = key_range.high >> shift
    return last - first + 1


@dataclass
class RangeQueryPlan:
    """The result of planning one range query against a CLASH deployment.

    Attributes:
        key_range: The queried range.
        cover: The canonical prefix cover of the range.
        groups: The active key groups that must receive the query.
        servers: The distinct servers those groups live on (the replica set).
        messages: Messages charged for resolving the plan (one probe/reply
            pair per cover segment when resolved through the protocol;
            zero when resolved from the simulator-side registry).
    """

    key_range: KeyRange
    cover: list[KeyGroup] = field(default_factory=list)
    groups: list[KeyGroup] = field(default_factory=list)
    servers: list[str] = field(default_factory=list)
    messages: int = 0

    @property
    def replica_count(self) -> int:
        """Number of servers the query must be replicated to."""
        return len(self.servers)


class RangeQueryPlanner:
    """Plan range queries against a live CLASH deployment.

    Args:
        system: The deployment to plan against.
    """

    def __init__(self, system: ClashSystem) -> None:
        check_type("system", system, ClashSystem)
        self._system = system

    def plan(self, key_range: KeyRange, use_protocol: bool = False) -> RangeQueryPlan:
        """Compute the replica set for a range query.

        Args:
            key_range: The queried key range.
            use_protocol: When True, each cover segment is resolved through a
                real client depth search (charging messages); when False the
                simulator-side registry is consulted directly (no messages),
                which is sufficient for analysis.
        """
        if key_range.width != self._system.config.key_bits:
            raise ValueError(
                f"range width {key_range.width} does not match the system's key "
                f"width {self._system.config.key_bits}"
            )
        cover = canonical_cover(key_range)
        plan = RangeQueryPlan(key_range=key_range, cover=cover)
        seen_groups: set[KeyGroup] = set()
        seen_servers: set[str] = set()
        client = self._system.make_client("range-query-planner") if use_protocol else None
        for segment in cover:
            targets = self._resolve_segment(segment, client, plan)
            for group, owner in targets:
                if group not in seen_groups:
                    seen_groups.add(group)
                    plan.groups.append(group)
                if owner not in seen_servers:
                    seen_servers.add(owner)
                    plan.servers.append(owner)
        return plan

    def _resolve_segment(self, segment, client, plan) -> list[tuple[KeyGroup, str]]:
        """All (active group, owner) pairs overlapping one cover segment."""
        active = self._system.active_groups()
        # Case 1: the segment is contained in a single (shallower or equal)
        # active group — find it by resolving the segment's first key.
        first_key = segment.virtual_key
        containing, owner = self._system.find_active_group(first_key)
        if client is not None:
            result = client.find_group(first_key, use_cache=False)
            plan.messages += result.messages
            containing, owner = result.group, result.server
        if containing.depth <= segment.depth:
            return [(containing, owner)]
        # Case 2: the segment has been split further — every active descendant
        # of the segment receives a copy.
        targets = []
        for group, group_owner in active.items():
            if segment.contains_group(group):
                targets.append((group, group_owner))
                if client is not None:
                    # Locating each additional shard costs one more resolution.
                    result = client.find_group(group.virtual_key, use_cache=False)
                    plan.messages += result.messages
        return sorted(targets)

    def compare_with_fixed_depth(
        self, key_range: KeyRange, depth: int
    ) -> dict[str, float]:
        """CLASH vs ``DHT(depth)`` replica counts for one range.

        Returns a dictionary with the CLASH replica count, the fixed-depth
        replica count and the reduction factor (>= 1 means CLASH contacts no
        more servers than the fixed-depth DHT).
        """
        plan = self.plan(key_range)
        fixed = fixed_depth_replica_count(key_range, depth)
        clash = max(1, plan.replica_count)
        return {
            "clash_replicas": float(plan.replica_count),
            "fixed_depth_replicas": float(fixed),
            "reduction_factor": fixed / clash,
        }
