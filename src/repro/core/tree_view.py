"""Rendering of the logical splitting tree and of server work tables.

The paper illustrates CLASH with two structural figures: Figure 1 shows the
logical binary tree produced by a sequence of splits (annotated with the
server managing each leaf), and Figure 2 shows one server's work table.  This
module renders both from live protocol state, so examples, documentation and
the Figure 1/2 reproduction benchmark can print the same pictures for any
deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.protocol import ClashSystem
from repro.core.server_table import ServerTable
from repro.keys.keygroup import KeyGroup

__all__ = ["SplitTreeNode", "build_split_tree", "render_split_tree", "render_server_table"]


@dataclass
class SplitTreeNode:
    """A node of the logical splitting tree.

    Attributes:
        group: The key group this node represents.
        owner: Name of the managing server for leaves, ``None`` for interior
            nodes (which are no longer actively managed by anyone).
        children: The (left, right) children, empty for leaves.
    """

    group: KeyGroup
    owner: str | None = None
    children: list["SplitTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True if the node is an active key group (a leaf of the logical tree)."""
        return not self.children

    def leaves(self) -> list["SplitTreeNode"]:
        """All leaf nodes below (and including) this node, left to right."""
        if self.is_leaf:
            return [self]
        result: list[SplitTreeNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def depth_span(self) -> tuple[int, int]:
        """(minimum, maximum) leaf depth in this subtree."""
        depths = [leaf.group.depth for leaf in self.leaves()]
        return min(depths), max(depths)


def build_split_tree(system: ClashSystem, root: KeyGroup) -> SplitTreeNode:
    """Build the logical splitting tree under ``root`` from a system's active groups.

    ``root`` may be any group; the tree descends until every branch reaches an
    active key group.  Raises :class:`LookupError` if some part of ``root`` is
    not covered by any active group (which would violate the protocol
    invariant).
    """
    active = system.active_groups()
    if root in active:
        return SplitTreeNode(group=root, owner=active[root])
    if root.depth >= root.width:
        raise LookupError(f"no active key group covers {root}")
    left, right = root.split()
    node = SplitTreeNode(group=root, owner=None)
    node.children = [build_split_tree(system, left), build_split_tree(system, right)]
    return node


def render_split_tree(node: SplitTreeNode, indent: str = "") -> str:
    """Render a splitting tree as an indented ASCII diagram (Figure 1 style).

    Leaves are annotated with the managing server; interior nodes show the
    group that was split.
    """
    if node.is_leaf:
        label = f"{node.group.wildcard()}  (depth={node.group.depth})  -> {node.owner}"
    else:
        label = f"{node.group.wildcard()}  (depth={node.group.depth})  [split]"
    lines = [indent + label]
    for index, child in enumerate(node.children):
        connector = "|-- " if index == 0 else "`-- "
        child_text = render_split_tree(child, indent + "    ")
        child_lines = child_text.splitlines()
        lines.append(indent + connector + child_lines[0].strip())
        lines.extend(child_lines[1:])
    return "\n".join(lines)


def render_server_table(table: ServerTable, server_name: str) -> str:
    """Render a server's work table in the layout of Figure 2."""
    headers = ["No.", "VirtualKeyGroup", "Depth", "ParentID", "RightChildID", "Active"]
    rows = []
    for index, entry in enumerate(table.entries(), start=1):
        description = entry.describe()
        rows.append(
            [
                str(index),
                str(description["VirtualKeyGroup"]),
                str(description["Depth"]),
                str(description["ParentID"]),
                str(description["RightChildID"]),
                str(description["Active"]),
            ]
        )
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [f"Server work table for {server_name}"]
    lines.append(
        " | ".join(header.ljust(widths[column]) for column, header in enumerate(headers))
    )
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[column]) for column, cell in enumerate(row)))
    return "\n".join(lines)
