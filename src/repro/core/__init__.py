"""The CLASH protocol: Content and Load-Aware Scalable Hashing.

This package implements the paper's primary contribution — a redirection
layer placed in front of an unmodified DHT:

* :class:`~repro.core.config.ClashConfig` — all protocol parameters
  (key width N, hash width M, load thresholds, LOAD_CHECK_PERIOD, …).
* :mod:`~repro.core.messages` — the protocol message vocabulary
  (``ACCEPT_OBJECT``, ``OK``, ``INCORRECT_DEPTH``, ``ACCEPT_KEYGROUP``, …)
  and the message-accounting counters used by the evaluation.
* :class:`~repro.core.server_table.ServerTable` — the per-server table of
  key groups (Figure 2 of the paper).
* :class:`~repro.core.server.ClashServer` — overload detection, binary
  splitting, bottom-up consolidation and the three ``ACCEPT_OBJECT`` cases.
* :class:`~repro.core.client.ClashClient` — the modified binary search a
  client uses to discover the current depth of a key's group.
* :class:`~repro.core.protocol.ClashSystem` — the redirection layer binding
  servers to a Chord ring; this is the main public entry point.
"""

from repro.core.client import ClashClient, DepthSearchResult
from repro.core.config import ClashConfig
from repro.core.messages import (
    AcceptKeyGroup,
    AcceptObject,
    AcceptObjectReply,
    MessageCategory,
    MessageStats,
    ReleaseKeyGroup,
    ReplyStatus,
)
from repro.core.policy import (
    CoolestGroupMergePolicy,
    HottestGroupSplitPolicy,
    MergePolicy,
    RandomGroupSplitPolicy,
    RoundRobinSplitPolicy,
    SplitPolicy,
)
from repro.core.protocol import ClashSystem, SplitOutcome
from repro.core.range_query import (
    KeyRange,
    RangeQueryPlan,
    RangeQueryPlanner,
    canonical_cover,
    fixed_depth_replica_count,
)
from repro.core.server import ClashServer, GroupLoad
from repro.core.server_table import ServerTable, ServerTableEntry
from repro.core.tree_view import build_split_tree, render_server_table, render_split_tree

__all__ = [
    "ClashConfig",
    "ClashSystem",
    "SplitOutcome",
    "ClashServer",
    "GroupLoad",
    "ClashClient",
    "DepthSearchResult",
    "ServerTable",
    "ServerTableEntry",
    "AcceptObject",
    "AcceptObjectReply",
    "AcceptKeyGroup",
    "ReleaseKeyGroup",
    "ReplyStatus",
    "MessageCategory",
    "MessageStats",
    "SplitPolicy",
    "MergePolicy",
    "HottestGroupSplitPolicy",
    "RandomGroupSplitPolicy",
    "RoundRobinSplitPolicy",
    "CoolestGroupMergePolicy",
    "KeyRange",
    "RangeQueryPlan",
    "RangeQueryPlanner",
    "canonical_cover",
    "fixed_depth_replica_count",
    "build_split_tree",
    "render_split_tree",
    "render_server_table",
]
