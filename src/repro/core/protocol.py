"""The CLASH redirection layer: servers + Chord ring + message accounting.

:class:`ClashSystem` is the package's main entry point.  It owns the routing
tier (a :class:`~repro.dht.router.RingRouter` over one Chord ring, or a
sharded federation of them), the :class:`~repro.core.server.ClashServer`
instances, and the global message counters, and it mediates every inter-node
interaction:

* routing ``ACCEPT_OBJECT`` probes from clients to the DHT-resolved server,
* orchestrating splits (including the "right child maps back to myself, so
  split again" retry described in Section 5),
* orchestrating bottom-up consolidation (load reports, ``RELEASE_KEYGROUP``),
* bookkeeping of which server currently owns each active key group.

Every exchange travels as an :class:`~repro.net.envelope.Envelope` through a
pluggable :class:`~repro.net.transport.Transport`: the default
:class:`~repro.net.inline.InlineTransport` dispatches synchronously (the
original semantics), while the event-driven and batching transports add
simulated latency or per-period coalescing without touching protocol code.

The ownership registry kept here is *simulator-side* state used for metrics
and invariant checking; the protocol itself never consults it — clients
discover groups exclusively through ``ACCEPT_OBJECT`` probes and servers know
only their own tables, exactly as in the paper.
"""

from __future__ import annotations

import heapq
import inspect
from dataclasses import dataclass, field

from repro.core.client import ClashClient
from repro.core.config import ClashConfig
from repro.core.messages import (
    AcceptKeyGroup,
    AcceptObject,
    AcceptObjectReply,
    LoadReport,
    MessageCategory,
    MessageStats,
    ReleaseKeyGroup,
)
from repro.core.policy import MergePolicy, SplitPolicy
from repro.core.server import ClashServer
from repro.core.server_table import SELF_PARENT
from repro.dht.hashspace import HashSpace
from repro.dht.partition import PartitionMap
from repro.dht.ring import ChordRing
from repro.dht.router import RingRouter, build_router
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup, first_overlapping_pair
from repro.net.envelope import DhtAddress, Envelope
from repro.net.inline import InlineTransport
from repro.net.transport import DeliveryFailed, Transport, TransportError
from repro.util.rng import RandomStream
from repro.util.validation import check_positive, check_power_of_two, check_type

__all__ = ["AwaitableHandler", "ClashSystem", "SplitOutcome", "MergeOutcome"]


class AwaitableHandler:
    """The thin sync/async bridge every server endpoint is bound behind.

    Synchronous transports (inline, event, batching) call the handler like a
    plain function — dispatch runs on the caller's stack, exactly as before.
    The asyncio transport awaits :meth:`handle_async` instead, which also
    unwraps handlers that themselves return awaitables, so individual server
    handlers may become native coroutines without touching the transports.
    """

    __slots__ = ("_handle",)

    def __init__(self, handle) -> None:
        self._handle = handle

    def __call__(self, envelope: Envelope):
        reply = self._handle(envelope)
        if inspect.isawaitable(reply):
            if inspect.iscoroutine(reply):
                reply.close()  # silence the never-awaited warning
            raise TransportError(
                "handler returned an awaitable on a synchronous transport; "
                "use the async transport for coroutine handlers"
            )
        return reply

    async def handle_async(self, envelope: Envelope):
        """Awaitable dispatch (used by the asyncio transport)."""
        reply = self._handle(envelope)
        if inspect.isawaitable(reply):
            reply = await reply
        return reply


@dataclass(frozen=True)
class SplitOutcome:
    """Result of one attempt by an overloaded server to shed load.

    Attributes:
        parent_server: Name of the splitting server.
        group: The key group that was split (the deepest one actually split,
            after any self-collision retries).
        left: The left child, retained by the parent.
        right: The right child, transferred to ``child_server``.
        child_server: Name of the server that accepted the right child.
        migrated_queries: Number of persistent queries migrated with the group.
        self_collisions: How many times the DHT mapped the right child back to
            the splitting server before a distinct child was found.
        shed: True if responsibility was actually transferred to another
            server; False if every retry collapsed back onto the parent.
    """

    parent_server: str
    group: KeyGroup
    left: KeyGroup
    right: KeyGroup
    child_server: str
    migrated_queries: int
    self_collisions: int
    shed: bool


@dataclass(frozen=True)
class MergeOutcome:
    """Result of one bottom-up consolidation.

    Attributes:
        parent_server: Server that resumed management of the parent group.
        parent_group: The group whose children were merged back.
        child_server: Server that released the right child.
        returned_queries: Queries migrated back to the parent.
    """

    parent_server: str
    parent_group: KeyGroup
    child_server: str
    returned_queries: int


@dataclass
class _LoadCheckReport:
    """Aggregate outcome of one system-wide load check.

    Attributes:
        splits: Every split performed during the check.
        merges: Every consolidation performed during the check.
        touched_groups: Every key group whose assignment (owner, measured
            rate or query override) may have changed during the check —
            split parents and both children (including self-collision
            intermediates), merge parents and the released children, and
            shed/handoff targets.  An incremental load assigner only needs
            to refresh these groups; all others still carry exact values.
        retired_assignments: ``(group, former owner)`` pairs for every
            deactivation during the check.  A full reassignment implicitly
            discards the former owner's measurements via ``reset_interval``;
            an incremental assigner must prune them explicitly (stale query
            overrides would otherwise be resurrected if the same group is
            re-activated on that server in a later check).
    """

    splits: list[SplitOutcome] = field(default_factory=list)
    merges: list[MergeOutcome] = field(default_factory=list)
    touched_groups: set[KeyGroup] = field(default_factory=set)
    retired_assignments: list[tuple[KeyGroup, str]] = field(default_factory=list)

    @property
    def split_count(self) -> int:
        return len(self.splits)

    @property
    def merge_count(self) -> int:
        return len(self.merges)


class ClashSystem:
    """A complete CLASH deployment over one Chord ring or a sharded federation.

    Args:
        config: Protocol configuration.
        server_names: Names of the participating servers.
        rng: Random stream used for node placement on the ring (``None``
            derives node ids from names by hashing, which is also valid Chord
            behaviour).
        split_policy_factory: Optional callable producing a per-server split
            policy (ablation hook).
        merge_policy_factory: Optional callable producing a per-server merge
            policy (ablation hook).
        transport: The transport every inter-node envelope travels through
            (defaults to a fresh :class:`~repro.net.inline.InlineTransport`,
            which preserves direct synchronous dispatch).
        shards: Number of independent Chord rings the key space is
            partitioned across (power of two).  ``1`` — the default — routes
            through a :class:`~repro.dht.router.SingleRingRouter` and is
            bit-identical to the pre-sharding behaviour; higher values
            prefix-partition keys and servers across a
            :class:`~repro.dht.router.ShardedRingRouter` federation.
            ``log2(shards)`` may not exceed ``config.initial_depth``: root
            groups and all their descendants must be shard-local so that
            splits, merges and parent links never cross shards.
    """

    def __init__(
        self,
        config: ClashConfig,
        server_names: list[str],
        rng: RandomStream | None = None,
        split_policy_factory=None,
        merge_policy_factory=None,
        transport: Transport | None = None,
        shards: int = 1,
    ) -> None:
        check_type("config", config, ClashConfig)
        check_power_of_two("shards", shards)
        if not server_names:
            raise ValueError("at least one server is required")
        if len(set(server_names)) != len(server_names):
            raise ValueError("server names must be unique")
        shard_bits = shards.bit_length() - 1
        if shard_bits > config.initial_depth:
            raise ValueError(
                f"{shards} shards partition on {shard_bits} key bits, which "
                f"exceeds initial_depth={config.initial_depth}; root groups "
                "must be shard-local so splits and merges never cross shards"
            )
        if shards > len(server_names):
            raise ValueError(
                f"cannot spread {len(server_names)} servers over {shards} shards; "
                "every shard needs at least one server"
            )
        self._config = config
        self._split_policy_factory = split_policy_factory
        self._merge_policy_factory = merge_policy_factory
        self._space = HashSpace(bits=config.hash_bits)
        self._router = build_router(shards, space=self._space, key_bits=config.key_bits)
        used_ids: set[int] = set()
        for name in server_names:
            if rng is None:
                self._router.add_server(name)
            else:
                node_id = rng.randbits(config.hash_bits)
                while node_id in used_ids:
                    node_id = rng.randbits(config.hash_bits)
                used_ids.add(node_id)
                self._router.add_server(name, node_id=node_id)
        self._router.stabilise()
        self._servers: dict[str, ClashServer] = {}
        for name in server_names:
            self._servers[name] = self._make_server(name)
        self._group_owner: dict[KeyGroup, str] = {}
        # Maintained indexes over the ownership registry.  They are mutated
        # exclusively through _register_group/_unregister_group so that
        # active_servers() and depth_statistics() are O(active servers) /
        # O(distinct depths) reads instead of full registry scans.
        self._owner_counts: dict[str, int] = {}
        self._depth_counts: dict[int, int] = {}
        self._depth_total = 0
        self._touched_groups: set[KeyGroup] = set()
        self._retired_assignments: list[tuple[KeyGroup, str]] = []
        self._messages = MessageStats()
        self._bootstrapped = False
        # Overload-set tracking: servers push a load-change notification the
        # moment any load input of theirs mutates, and run_load_check probes
        # only the notified (dirty) servers, reusing cached overload /
        # underload verdicts for everyone else.  Every server starts dirty.
        self._dirty_load_servers: set[str] = set()
        self._load_flags: dict[str, tuple[bool, bool]] = {}
        # Work-queue state for the incremental balance pass.  Full scans
        # visit ``list(self._servers.items())`` — creation (insertion) order —
        # so every server gets a monotone order index at creation and the
        # split / consolidation passes drain their dirty sets in index order,
        # reproducing the full scan's visit order exactly (see
        # :meth:`_drain_balance_queue` for the mid-pass admission rule).
        self._server_order: dict[str, int] = {}
        self._order_names: dict[int, str] = {}
        self._order_counter = 0
        self._dirty_split: set[str] = set()
        self._dirty_merge: set[str] = set()
        self._dirty_reports: set[str] = set()
        self._pass_heap: list[int] | None = None
        self._pass_cursor = -1
        self._pass_boundary = 0
        # Report-diff bookkeeping: per child server, the (parent, group)
        # pairs whose delivered reports still stand on the parents, plus the
        # parents touched by the most recent exchange (the consolidation
        # pass's extra work source: report arrival does not mark a server
        # load-dirty, but it can create merge candidates).
        self._delivered_reports: dict[str, list[tuple[str, KeyGroup]]] = {}
        self._standing_report_total = 0
        self._last_report_recipients: set[str] = set()
        #: Fresh overload/underload probes performed by load checks (telemetry
        #: for the steady-state tests; cached verdicts are not counted).
        self.load_probes = 0
        #: How many times :meth:`consolidate_server` ran a candidate sweep.
        self.consolidation_probes = 0
        #: Load-report posts elided by the report-diff exchange (the reports
        #: already stood, bit-identical, on their parents).
        self.reports_skipped = 0
        #: When True, every load check probes every server and walks the full
        #: membership snapshot (disables the dirty-set shortcut, the work
        #: queues and the report-diff exchange; the equivalence tests compare
        #: both modes).
        self.force_full_load_scan = False
        for name in self._servers:
            self._track_new_server(name)
        self._transport = transport if transport is not None else InlineTransport()
        self._transport.set_resolver(self._router.lookup)
        for name, server in self._servers.items():
            self._transport.bind(
                name, self._make_endpoint(server), shard=self._router.server_shard(name)
            )

    def _make_server(self, name: str) -> ClashServer:
        """Construct one server with this deployment's policy factories."""
        split_policy: SplitPolicy | None = (
            self._split_policy_factory() if self._split_policy_factory else None
        )
        merge_policy: MergePolicy | None = (
            self._merge_policy_factory() if self._merge_policy_factory else None
        )
        server = ClashServer(
            name=name,
            config=self._config,
            split_policy=split_policy,
            merge_policy=merge_policy,
        )
        server.set_load_listener(self._mark_server_load_dirty)
        return server

    def _track_new_server(self, name: str) -> None:
        """Register a (freshly created) server with the balance work queues.

        Assigns the creation-order index the work queues sort by and seeds
        every dirty set: a new server has never been probed, so both balance
        passes and the report exchange must look at it — exactly what a full
        scan's ``name not in self._load_flags`` fallback would do.
        """
        order = self._order_counter
        self._order_counter += 1
        self._server_order[name] = order
        self._order_names[order] = name
        self._dirty_load_servers.add(name)
        self._dirty_split.add(name)
        self._dirty_merge.add(name)
        self._dirty_reports.add(name)

    def _mark_server_load_dirty(self, name: str) -> None:
        """A server's load inputs changed; its cached verdicts are stale."""
        self._dirty_load_servers.add(name)
        self._dirty_split.add(name)
        self._dirty_merge.add(name)
        self._dirty_reports.add(name)
        # A server dirtied while a balance pass is draining joins that pass's
        # queue only if its position still lies ahead of the cursor *and* it
        # existed when the pass started — the full scan would visit exactly
        # those; everyone else keeps their dirty bit for the next pass.
        if self._pass_heap is not None:
            order = self._server_order.get(name)
            if order is not None and self._pass_cursor < order < self._pass_boundary:
                heapq.heappush(self._pass_heap, order)

    def _make_endpoint(self, server: ClashServer) -> AwaitableHandler:
        """The transport-facing handler for one server.

        Dispatches on the payload type of the incoming envelope; this is the
        single place where transported messages re-enter server code.  The
        returned :class:`AwaitableHandler` is callable for the synchronous
        transports and awaitable (``handle_async``) for the asyncio one.
        """

        def handle(envelope: Envelope):
            payload = envelope.payload
            if type(payload) is AcceptObject:
                return server.handle_accept_object(payload)
            if type(payload) is AcceptKeyGroup:
                server.accept_keygroup(payload, queries=envelope.attachment)
                return None
            if type(payload) is ReleaseKeyGroup:
                group = payload.group
                if group not in server.table or not server.table.entry(group).active:
                    # The child has split the group further since reporting;
                    # refuse the release (the parent skips this merge).
                    return None
                return server.release_group(group)
            if type(payload) is LoadReport:
                server.receive_load_report(payload)
                return None
            raise TransportError(
                f"server {server.name!r} cannot handle payload "
                f"{type(payload).__name__}"
            )

        return AwaitableHandler(handle)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        config: ClashConfig,
        server_count: int,
        rng: RandomStream | None = None,
        bootstrap: bool = True,
        **kwargs,
    ) -> "ClashSystem":
        """Create a system with servers named ``s0 .. s{n-1}`` and bootstrap it."""
        check_type("server_count", server_count, int)
        check_positive("server_count", server_count)
        system = cls(
            config=config,
            server_names=[f"s{index}" for index in range(server_count)],
            rng=rng,
            **kwargs,
        )
        if bootstrap:
            system.bootstrap()
        return system

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> ClashConfig:
        """The protocol configuration."""
        return self._config

    @property
    def ring(self) -> ChordRing:
        """The underlying Chord ring (single-ring deployments only).

        Sharded deployments have no single ring; use :attr:`router` (and its
        ``rings()``) instead — accessing this property then raises
        :class:`AttributeError`.
        """
        return self._router.ring

    @property
    def router(self) -> RingRouter:
        """The routing tier every DHT resolution goes through."""
        return self._router

    @property
    def shard_count(self) -> int:
        """Number of independent rings the key space is partitioned across."""
        return self._router.shard_count

    @property
    def partition_version(self) -> int:
        """Version of the partition map routing currently follows (0 = single ring)."""
        return self._router.partition_version

    def dht_stats(self) -> dict[str, int]:
        """Routing-tier telemetry: lookup-memo and stabilisation counters.

        Flat dict with ``memo_``-prefixed lookup-memo counters and
        ``ring_``-prefixed stabilisation counters, summed across shards.
        Purely observational — reading it does not perturb the simulation.
        """
        stats = {f"memo_{k}": v for k, v in self._router.memo_stats().items()}
        stats.update(
            {f"ring_{k}": v for k, v in self._router.stabilise_stats().items()}
        )
        return stats

    def set_force_full_stabilise(self, flag: bool) -> None:
        """Force every ring onto the from-scratch stabilisation path.

        The reference mode the incremental repair is benchmarked and
        equivalence-tested against; it does not change any routing outcome,
        only how the routing state is recomputed.
        """
        self._router.set_force_full_stabilise(flag)

    def can_remove_server(self, name: str) -> bool:
        """True if ``name`` may fail without leaving a shard serverless."""
        return name in self._servers and self._router.can_remove(name)

    @property
    def messages(self) -> MessageStats:
        """Cumulative message counters (reset with :meth:`reset_messages`)."""
        return self._messages

    @property
    def transport(self) -> Transport:
        """The transport carrying every inter-node envelope."""
        return self._transport

    def reset_messages(self) -> None:
        """Zero the message counters (typically at the start of an interval)."""
        self._messages.reset()

    def servers(self) -> dict[str, ClashServer]:
        """All servers, keyed by name."""
        return dict(self._servers)

    def server(self, name: str) -> ClashServer:
        """A single server by name."""
        if name not in self._servers:
            raise KeyError(f"no server named {name!r}")
        return self._servers[name]

    def server_names(self) -> list[str]:
        """The names of every server in the deployment."""
        return list(self._servers)

    def active_servers(self) -> list[str]:
        """Names of the servers currently managing at least one key group."""
        return sorted(self._owner_counts)

    def active_groups(self) -> dict[KeyGroup, str]:
        """The current (active key group → owning server) map."""
        return dict(self._group_owner)

    def depth_statistics(self) -> tuple[int, float, int]:
        """(min, average, max) depth over all active key groups.

        Served from the maintained depth histogram: min/max scan the distinct
        depths present and the average divides the maintained depth sum, so
        the numbers are identical to a full registry scan at a fraction of
        the cost.
        """
        if not self._group_owner:
            raise ValueError("the system has no active key groups")
        return (
            min(self._depth_counts),
            self._depth_total / len(self._group_owner),
            max(self._depth_counts),
        )

    # ------------------------------------------------------------------ #
    # Ownership registry maintenance
    # ------------------------------------------------------------------ #

    def _register_group(self, group: KeyGroup, owner: str) -> None:
        """Record ``owner`` as managing ``group``, updating every index."""
        previous = self._group_owner.get(group)
        if previous is not None:
            self._unregister_group(group)
        self._group_owner[group] = owner
        self._owner_counts[owner] = self._owner_counts.get(owner, 0) + 1
        self._depth_counts[group.depth] = self._depth_counts.get(group.depth, 0) + 1
        self._depth_total += group.depth
        self._touched_groups.add(group)

    def _unregister_group(self, group: KeyGroup) -> None:
        """Drop ``group`` from the registry, updating every index."""
        owner = self._group_owner.pop(group, None)
        if owner is None:
            return
        remaining = self._owner_counts[owner] - 1
        if remaining:
            self._owner_counts[owner] = remaining
        else:
            del self._owner_counts[owner]
        depth_remaining = self._depth_counts[group.depth] - 1
        if depth_remaining:
            self._depth_counts[group.depth] = depth_remaining
        else:
            del self._depth_counts[group.depth]
        self._depth_total -= group.depth
        self._touched_groups.add(group)
        self._retired_assignments.append((group, owner))

    def drain_touched_groups(self) -> set[KeyGroup]:
        """Return-and-clear the groups touched since the last drain.

        The flow simulator feeds these into its dirty-group load assignment;
        a caller that never drains simply accumulates a larger (still
        correct) dirty set.
        """
        touched, self._touched_groups = self._touched_groups, set()
        return touched

    def drain_retired_assignments(self) -> list[tuple[KeyGroup, str]]:
        """Return-and-clear the ``(group, former owner)`` deactivation log.

        See :attr:`_LoadCheckReport.retired_assignments` for why an
        incremental assigner must consume these.
        """
        retired, self._retired_assignments = self._retired_assignments, []
        return retired

    def clear_all_child_reports(self) -> None:
        """Drop every server's child load reports (a period-boundary reset)."""
        for server in self._servers.values():
            server.clear_child_reports()

    def work_stats(self) -> dict[str, int]:
        """Counters measuring how much work the balance passes actually did.

        * ``load_check_probes`` — overload/underload verdict recomputations
          (:meth:`_load_verdicts` cache misses).
        * ``consolidation_probes`` — servers whose consolidation candidates
          were enumerated (:meth:`consolidate_server` calls).
        * ``reports_skipped`` — load-report posts elided by the report-diff
          exchange because the identical reports already stood on the parent.

        The paper-scale benchmark gate records these so an incremental-pass
        regression (suddenly probing everyone again) fails loudly even if
        wall-clock noise masks it.
        """
        return {
            "load_check_probes": self.load_probes,
            "consolidation_probes": self.consolidation_probes,
            "reports_skipped": self.reports_skipped,
        }

    def make_client(self, name: str) -> ClashClient:
        """Create a client wired to this system's transport."""
        return ClashClient(
            name=name,
            router=self,
            key_bits=self._config.key_bits,
            initial_depth_hint=self._config.initial_depth,
        )

    # ------------------------------------------------------------------ #
    # Bootstrap
    # ------------------------------------------------------------------ #

    def bootstrap(self, initial_depth: int | None = None) -> None:
        """Partition the key space into root groups and assign them via the DHT.

        Every depth-``initial_depth`` key group is assigned to the server the
        DHT maps its virtual key to; those assignments become root ServerTable
        entries (ParentID = −1), which consolidation never collapses past.
        """
        if self._bootstrapped:
            raise RuntimeError("the system has already been bootstrapped")
        depth = initial_depth if initial_depth is not None else self._config.initial_depth
        if not self._config.min_depth <= depth <= self._config.key_bits:
            raise ValueError(
                f"initial depth must be in [{self._config.min_depth}, "
                f"{self._config.key_bits}], got {depth}"
            )
        shard_bits = self._router.shard_count.bit_length() - 1
        if shard_bits > depth:
            raise ValueError(
                f"cannot bootstrap at depth {depth} with {self._router.shard_count} "
                f"shards: root groups must be at least {shard_bits} deep to be "
                "shard-local"
            )
        for prefix in range(1 << depth):
            group = KeyGroup(prefix=prefix, depth=depth, width=self._config.key_bits)
            owner = self._router.owner_of_key(group.virtual_key)
            self._servers[owner].assign_root_group(group)
            self._register_group(group, owner)
        self._bootstrapped = True

    # ------------------------------------------------------------------ #
    # Group resolution (ground truth, used by the simulator and tests)
    # ------------------------------------------------------------------ #

    def find_active_group(self, key: IdentifierKey) -> tuple[KeyGroup, str]:
        """The active group containing ``key`` and its owner (registry view).

        This is the ground-truth resolution the simulator uses for efficiency;
        protocol-level resolution goes through
        :meth:`route_accept_object` / :class:`~repro.core.client.ClashClient`.
        """
        for depth in range(self._config.key_bits + 1):
            group = KeyGroup.from_key(key, depth)
            owner = self._group_owner.get(group)
            if owner is not None:
                return group, owner
        raise LookupError(f"no active key group covers key {key}")

    def owner_of_group(self, group: KeyGroup) -> str:
        """The owner of an active group (raises if the group is not active)."""
        if group not in self._group_owner:
            raise KeyError(f"group {group} is not an active key group")
        return self._group_owner[group]

    def find_owner(self, group: KeyGroup) -> str | None:
        """The owner of ``group``, or ``None`` when it is not active.

        A copy-free single-group read (``active_groups()`` copies the whole
        registry, which the per-iteration dirty-assignment path must avoid).
        """
        return self._group_owner.get(group)

    # ------------------------------------------------------------------ #
    # Message transport
    # ------------------------------------------------------------------ #

    def _charge_lookup(self, hops: int) -> int:
        """Charge one request/reply pair plus (optionally) DHT routing hops."""
        cost = 2
        self._messages.add(MessageCategory.LOOKUP, 2)
        if self._config.count_routing_hops:
            self._messages.add(MessageCategory.DHT_ROUTING, hops)
            cost += hops
        return cost

    def route_accept_object(
        self, key: IdentifierKey, estimated_depth: int, sender: str
    ) -> tuple[AcceptObjectReply, int]:
        """Route an ``ACCEPT_OBJECT`` probe to the DHT-resolved server.

        Returns the server's reply and the number of messages charged.
        """
        if not 0 <= estimated_depth <= self._config.key_bits:
            raise ValueError(
                f"estimated_depth must be in [0, {self._config.key_bits}], "
                f"got {estimated_depth}"
            )
        group = KeyGroup.from_key(key, estimated_depth)
        message = AcceptObject(key=key, estimated_depth=estimated_depth, sender=sender)
        try:
            delivery = self._transport.request(
                Envelope(
                    source=sender,
                    destination=DhtAddress(group.virtual_key),
                    payload=message,
                    category=MessageCategory.LOOKUP,
                )
            )
        except DeliveryFailed:
            # The resolved owner failed with the probe in flight.  Charge the
            # lost request (no reply ever travels back) and let the typed
            # failure reach the client, which retries against the
            # re-stabilised DHT.
            self._messages.add(MessageCategory.LOOKUP, 1)
            raise
        cost = self._charge_lookup(delivery.hops)
        return delivery.reply, cost

    def deliver_data(self, server_name: str, packet_count: float = 1.0) -> None:
        """Account application data packets delivered directly to a server."""
        if server_name not in self._servers:
            raise KeyError(f"no server named {server_name!r}")
        self._messages.add(MessageCategory.DATA, packet_count)

    # ------------------------------------------------------------------ #
    # Splitting
    # ------------------------------------------------------------------ #

    def split_server(self, server_name: str) -> SplitOutcome | None:
        """Ask an overloaded server to shed load by splitting one key group.

        Implements Section 5: split the selected group, use the DHT to find
        the right child's owner, and transfer responsibility with
        ``ACCEPT_KEYGROUP``.  If the DHT maps the right child back to the
        splitting server, the depth is increased again (bounded by
        ``split_retry_limit``); each such self-collision leaves an extra local
        split behind, exactly as the paper describes.

        Returns ``None`` when the server has nothing left to split.
        """
        server = self.server(server_name)
        group = server.choose_group_to_split()
        if group is None:
            return None
        self_collisions = 0
        current = group
        for _attempt in range(self._config.split_retry_limit):
            left, right = current.split()
            child_owner, hops = self._transport.resolve(right.virtual_key)
            if self._config.count_routing_hops:
                self._messages.add(MessageCategory.DHT_ROUTING, hops)
            if child_owner != server_name:
                left_group, right_group, migrated = server.perform_split(
                    current, child_owner
                )
                transfer = AcceptKeyGroup(
                    group=right_group,
                    parent_server=server_name,
                    migrated_queries=len(migrated),
                )
                try:
                    self._transport.request(
                        Envelope(
                            source=server_name,
                            destination=child_owner,
                            payload=transfer,
                            category=MessageCategory.SPLIT,
                            attachment=migrated,
                        )
                    )
                except DeliveryFailed:
                    # The chosen child failed with the ACCEPT_KEYGROUP in
                    # flight: responsibility never moved.  Revert the local
                    # split (the queries come home with it) and report no
                    # split this pass — the next load check re-resolves the
                    # right child against the recovered ring.
                    server.undo_split(current, queries=migrated)
                    self._messages.add(MessageCategory.SPLIT, 1)  # lost transfer
                    self._touched_groups.add(current)
                    return None
                self._messages.add(MessageCategory.SPLIT, 2)  # transfer + ack
                self._messages.add(MessageCategory.STATE_TRANSFER, len(migrated))
                self._unregister_group(current)
                self._register_group(left_group, server_name)
                self._register_group(right_group, child_owner)
                return SplitOutcome(
                    parent_server=server_name,
                    group=current,
                    left=left_group,
                    right=right_group,
                    child_server=child_owner,
                    migrated_queries=len(migrated),
                    self_collisions=self_collisions,
                    shed=True,
                )
            # The right child maps back to this very server: keep both halves
            # locally and re-randomise by splitting the right child again.
            if current.depth + 1 >= self._config.effective_max_depth:
                break
            left_group, right_group = server.perform_local_split(current)
            self._unregister_group(current)
            self._register_group(left_group, server_name)
            self._register_group(right_group, server_name)
            self_collisions += 1
            current = right_group
        return SplitOutcome(
            parent_server=server_name,
            group=current,
            left=current,
            right=current,
            child_server=server_name,
            migrated_queries=0,
            self_collisions=self_collisions,
            shed=False,
        )

    # ------------------------------------------------------------------ #
    # Consolidation
    # ------------------------------------------------------------------ #

    @property
    def report_diff_active(self) -> bool:
        """Whether the exchange may elide re-posting unchanged report sets.

        Requires a transport whose equivalence contract permits it (clock-less
        delivery, no per-delivery RNG — see
        :attr:`~repro.net.registry.TransportSpec.report_diff`) and the
        reference full-scan mode to be off.  The flow simulator consults this
        to decide whether parents' child reports must still be wiped at every
        iteration boundary.
        """
        return not self.force_full_load_scan and self._transport.supports_report_diff

    def _invalidate_report_diff(self) -> None:
        """Fall back to a full report exchange (membership or mode change).

        Wipes the delivered-report bookkeeping *and* the reports parents
        currently hold, and marks every child for re-delivery — together that
        restores exactly the state a period-boundary clear plus a full
        exchange would produce.  A no-op while no diff bookkeeping exists, so
        transports that never run the diff exchange (event, async) keep their
        mid-pass semantics untouched.
        """
        if not self._delivered_reports:
            return
        self._delivered_reports.clear()
        self._standing_report_total = 0
        for server in self._servers.values():
            server.clear_child_reports()
        self._dirty_reports.update(self._servers)

    def exchange_load_reports(self) -> int:
        """Deliver every leaf's periodic load report to its parent server.

        Returns the number of reports delivered (each is charged as one MERGE
        message).  On transports whose equivalence contract allows it (see
        :attr:`report_diff_active`) a child whose load inputs have not changed
        since its reports last went out is skipped entirely: the identical
        frozen reports already stand on its parents, so only the message
        accounting is replayed (``reports_skipped`` counts the elided posts).
        A report whose destination unbinds while the envelope is in flight is
        counted once, in the transport's ``dropped_messages`` — it is neither
        charged as a MERGE message nor counted as delivered.
        """
        posted = 0
        reused = 0
        recipients: set[str] = set()
        drops_before = self._transport.dropped_messages
        if self.report_diff_active:
            # Retract first: a child whose reports changed may no longer
            # address some of the pairs it delivered earlier, and those must
            # vanish from the parents before anyone posts — another child may
            # have taken such a group over and re-report it this exchange.
            for name in self._dirty_reports:
                for parent_name, group in self._delivered_reports.get(name, ()):
                    parent = self._servers.get(parent_name)
                    if parent is not None:
                        parent.discard_child_report(group)
                        recipients.add(parent_name)
            # Every unchanged child's reports already stand on the parents,
            # bit-identical; only the accounting is replayed for them
            # (``_standing_report_total`` tracks their aggregate count so
            # this loop is O(dirty), not O(servers)).  Dirty children are
            # visited in creation-order-index order — the same relative
            # order the full scan posts in.
            reused = self._standing_report_total
            for _order, name in sorted(
                (order, name)
                for name in self._dirty_reports
                if (order := self._server_order.get(name)) is not None
            ):
                server = self._servers.get(name)
                if server is None:
                    continue
                self._dirty_reports.discard(name)
                old = self._delivered_reports.get(name)
                if old is not None:
                    reused -= len(old)
                kept: list[tuple[str, KeyGroup]] = []
                for parent_name, report in server.addressed_load_reports():
                    if parent_name not in self._servers:
                        continue
                    self._transport.post(
                        Envelope(
                            source=server.name,
                            destination=parent_name,
                            payload=report,
                            category=MessageCategory.MERGE,
                        )
                    )
                    posted += 1
                    kept.append((parent_name, report.group))
                    recipients.add(parent_name)
                self._delivered_reports[name] = kept
                self._standing_report_total += len(kept) - (
                    len(old) if old is not None else 0
                )
        else:
            # Full exchange.  If diff bookkeeping exists (the mode was just
            # switched off), wipe it and the standing reports so this
            # exchange rebuilds the canonical full state.
            self._invalidate_report_diff()
            # Snapshot: an event-transport churn event may alter membership
            # while a report is in flight.
            for server in list(self._servers.values()):
                # The child knows its parent server directly: it is the
                # ParentID recorded when the group was transferred.
                for parent_name, report in server.addressed_load_reports():
                    if parent_name not in self._servers:
                        continue
                    self._transport.post(
                        Envelope(
                            source=server.name,
                            destination=parent_name,
                            payload=report,
                            category=MessageCategory.MERGE,
                        )
                    )
                    posted += 1
                    recipients.add(parent_name)
        # Deferred-delivery transports coalesce the reports per destination;
        # they must land before consolidation reads them, so the period's
        # batch window closes here.
        self._transport.flush()
        dropped = self._transport.dropped_messages - drops_before
        delivered = posted - dropped + reused
        self._messages.add(MessageCategory.MERGE, delivered)
        self.reports_skipped += reused
        self._last_report_recipients = recipients
        return delivered

    def consolidate_server(self, server_name: str) -> list[MergeOutcome]:
        """Perform every consolidation currently possible at ``server_name``.

        For each inactive parent entry whose two children are jointly cold
        (left child local, right child known from a load report), the parent
        asks the right-child server to release the group and resumes managing
        the parent group itself.
        """
        server = self.server(server_name)
        self.consolidation_probes += 1
        outcomes: list[MergeOutcome] = []
        for parent_group in server.consolidation_candidates():
            entry = server.table.entry(parent_group)
            child_server_name = entry.right_child_id
            if child_server_name is None or child_server_name not in self._servers:
                continue
            left, right = parent_group.split()
            try:
                release = self._transport.request(
                    Envelope(
                        source=server_name,
                        destination=child_server_name,
                        payload=ReleaseKeyGroup(group=right, child_server=child_server_name),
                        category=MessageCategory.MERGE,
                    )
                )
            except DeliveryFailed:
                # The child failed with the release request in flight; its
                # groups were re-homed by failure recovery, so this merge is
                # simply off the table.  Charge the lost request and move on.
                self._messages.add(MessageCategory.MERGE, 1)
                continue
            if release.reply is None:
                # The child has split the group further since reporting; skip.
                continue
            returned: list = release.reply
            if (
                server_name not in self._servers
                or left not in server.table
                or not server.table.entry(left).active
            ):
                # The consolidating server failed mid-release (its table
                # object is stale) or the local left child changed under us;
                # undo is not needed because release_group only removed the
                # child's entry — put the right child back where it was.
                try:
                    self._transport.request(
                        Envelope(
                            source=server_name,
                            destination=child_server_name,
                            payload=AcceptKeyGroup(group=right, parent_server=server_name),
                            category=MessageCategory.MERGE,
                            attachment=returned,
                        )
                    )
                except DeliveryFailed:
                    # The child failed after releasing but before the
                    # put-back landed; the group (and its queries) would be
                    # lost — restart it as a root on the ring's current owner.
                    self._messages.add(MessageCategory.MERGE, 1)
                    self._restart_as_root(right, returned)
                    continue
                # Ownership never changed, but the release dropped the child's
                # measured rate for the group — it must be reassigned.
                self._touched_groups.add(right)
                continue
            server.accept_keygroup_back(parent_group, queries=returned)
            self._messages.add(MessageCategory.MERGE, 2)  # release request + transfer
            self._messages.add(MessageCategory.STATE_TRANSFER, len(returned))
            self._unregister_group(left)
            self._unregister_group(right)
            self._register_group(parent_group, server_name)
            outcomes.append(
                MergeOutcome(
                    parent_server=server_name,
                    parent_group=parent_group,
                    child_server=child_server_name,
                    returned_queries=len(returned),
                )
            )
        return outcomes

    # ------------------------------------------------------------------ #
    # Periodic load check
    # ------------------------------------------------------------------ #

    def _load_verdicts(self, name: str, server: ClashServer) -> tuple[bool, bool]:
        """The (overloaded, underloaded) verdicts for one server.

        Served from the cached flags unless the server is in the dirty set —
        i.e. some load input of its changed since the verdicts were computed.
        A probed server leaves the dirty set; any mutation after the probe
        (its own split, a transfer landing on it) re-dirties it through the
        load listener, so a verdict read later in the same pass is refreshed.
        """
        if (
            self.force_full_load_scan
            or name in self._dirty_load_servers
            or name not in self._load_flags
        ):
            verdicts = (server.is_overloaded(), server.is_underloaded())
            self._load_flags[name] = verdicts
            self._dirty_load_servers.discard(name)
            self.load_probes += 1
        return self._load_flags[name]

    def _split_hot_server(
        self,
        name: str,
        server: ClashServer,
        max_splits_per_server: int,
        report: _LoadCheckReport,
    ) -> None:
        """Split ``server`` repeatedly until it cools off or the cap is hit."""
        attempts = 0
        # Membership is re-checked every iteration: the server being
        # split can itself fail while its transfer is in flight.
        while (
            name in self._servers
            and server.is_overloaded()
            and attempts < max_splits_per_server
        ):
            outcome = self.split_server(name)
            attempts += 1
            if outcome is None:
                break
            report.splits.append(outcome)
            if not outcome.shed:
                break

    def _drain_balance_queue(self, dirty: set[str], visit) -> None:
        """Visit the dirty servers in the full scan's exact order.

        The reference full scan iterates ``self._servers`` — insertion order:
        seed servers in creation order, joiners appended, failed servers
        deleted.  This drain replays that order over only the dirty subset by
        walking a min-heap of per-server order indexes.  Servers dirtied
        *behind* the cursor while the pass runs stay queued for the next pass
        (the full scan's snapshot would likewise not revisit them); servers
        dirtied *ahead* of the cursor are pushed into the live heap by
        :meth:`_mark_server_load_dirty` so the pass picks them up, exactly as
        the full scan's later iterations would.  Servers that join mid-pass
        sit beyond ``_pass_boundary`` and wait for the next pass (the full
        scan's snapshot excludes them too).
        """
        self._pass_boundary = self._order_counter
        heap = [
            order
            for name in dirty
            if (order := self._server_order.get(name)) is not None
            and order < self._pass_boundary
        ]
        heapq.heapify(heap)
        self._pass_heap = heap
        self._pass_cursor = -1
        try:
            while heap:
                order = heapq.heappop(heap)
                if order <= self._pass_cursor:
                    continue  # lazy-deleted duplicate push
                self._pass_cursor = order
                name = self._order_names.get(order)
                if name is None or name not in dirty:
                    continue
                dirty.discard(name)
                server = self._servers.get(name)
                if server is None:
                    continue
                visit(name, server)
        finally:
            self._pass_heap = None
            self._pass_cursor = -1

    def run_load_check(self, max_splits_per_server: int = 4) -> _LoadCheckReport:
        """One system-wide LOAD_CHECK_PERIOD pass: split hot servers, merge cold ones.

        Overloaded servers split repeatedly (up to ``max_splits_per_server``)
        until they drop below the overload threshold; under-loaded servers
        exchange load reports with parents and consolidate cold sibling pairs.
        In steady state the pass is O(servers whose load actually changed):
        each phase drains a dirty work queue in the full scan's visit order
        (see :meth:`_drain_balance_queue`), and a server whose load inputs
        are untouched is neither probed (:meth:`_load_verdicts`) nor offered
        for consolidation — its cached verdicts and standing reports are
        still exact.  ``force_full_load_scan`` restores the reference
        every-server scan for equivalence testing.
        """
        report = _LoadCheckReport()
        if self.force_full_load_scan:
            # Reference path: both passes iterate a snapshot and re-check
            # membership — a churn event delivered by the event transport
            # mid-exchange may add or remove servers while the pass runs.
            for name, server in list(self._servers.items()):
                if name not in self._servers:
                    continue
                if not self._load_verdicts(name, server)[0]:
                    continue
                self._split_hot_server(name, server, max_splits_per_server, report)
            self.exchange_load_reports()
            for name, server in list(self._servers.items()):
                if name not in self._servers or not server.is_active():
                    continue
                # Consolidation only runs on servers that are themselves
                # under-loaded (the paper's "under conditions of
                # under-load"); merging into a busy server would immediately
                # re-trigger a split.
                if self._load_verdicts(name, server)[1]:
                    report.merges.extend(self.consolidate_server(name))
        else:

            def split_visit(name: str, server: ClashServer) -> None:
                if self._load_verdicts(name, server)[0]:
                    self._split_hot_server(name, server, max_splits_per_server, report)

            def merge_visit(name: str, server: ClashServer) -> None:
                if not server.is_active():
                    return
                if self._load_verdicts(name, server)[1]:
                    report.merges.extend(self.consolidate_server(name))

            self._drain_balance_queue(self._dirty_split, split_visit)
            self.exchange_load_reports()
            # A parent whose standing child reports changed this exchange
            # (post or retraction) may have gained or lost consolidation
            # candidates even though its own load inputs never moved.
            self._dirty_merge.update(
                name
                for name in self._last_report_recipients
                if name in self._servers
            )
            self._drain_balance_queue(self._dirty_merge, merge_visit)
        report.touched_groups |= self.drain_touched_groups()
        report.retired_assignments.extend(self.drain_retired_assignments())
        return report

    # ------------------------------------------------------------------ #
    # Membership changes (join handoff, failure recovery)
    # ------------------------------------------------------------------ #

    def _restart_as_root(self, group: KeyGroup, queries: list | None) -> str:
        """Re-home an orphaned group as a root entry on its current DHT owner.

        The common tail of every mid-flight-failure recovery: the server that
        should have received ``group`` is gone, so the group (and whatever
        queries travelled with it) restarts as a root — consolidation linkage
        cannot survive, exactly as in :meth:`handle_server_failure` — on the
        server its virtual key hashes to in the post-failure ring.
        """
        new_owner = self._router.owner_of_key(group.virtual_key)
        self._servers[new_owner].accept_keygroup(
            AcceptKeyGroup(
                group=group,
                parent_server=None,
                migrated_queries=len(queries) if queries else 0,
            ),
            queries=queries,
        )
        self._messages.add(MessageCategory.SPLIT, 2)  # transfer + ack
        self._messages.add(MessageCategory.STATE_TRANSFER, len(queries) if queries else 0)
        self._unregister_group(group)
        self._register_group(group, new_owner)
        return new_owner

    def handle_server_join(
        self, joiner: str, node_id: int | None = None
    ) -> dict[KeyGroup, str]:
        """Admit a new server and hand over the key groups it now owns.

        The paper delegates membership to the underlying DHT; this implements
        the CLASH-level consequence of a Chord join.  The joiner is bound to
        the transport and inserted into the ring (``add_node`` +
        ``stabilise``), after which the keys between its predecessor and its
        own identifier hash to it.  Every *active* key group whose virtual key
        now maps to the joiner is handed over: the current owner releases the
        group (``RELEASE_KEYGROUP``) and transfers responsibility — stored
        queries included — with an ``ACCEPT_KEYGROUP`` envelope, exactly the
        message a split would have used.  Consolidation linkage survives the
        move for right children: the transferred entry keeps its parent
        server (a local ``"self"`` parent resolves to the former owner's
        name) and the parent entry's ``RightChildID`` is repointed at the
        joiner.  A moved *left* child restarts as a root entry instead —
        the merge protocol needs the left child local to the parent-entry
        holder, so its linkage cannot survive (failure recovery makes the
        same call) — and root entries stay roots.

        Args:
            joiner: Name of the joining server (must be new).
            node_id: Explicit ring identifier; defaults to hashing the name,
                matching Chord's practice.

        Returns:
            A mapping from each handed-off group to its former owner.
        """
        check_type("joiner", joiner, str)
        if joiner in self._servers:
            raise ValueError(f"server {joiner!r} is already part of the deployment")
        server = self._make_server(joiner)
        shard = self._router.add_server(joiner, node_id=node_id)
        self._router.stabilise()
        self._servers[joiner] = server
        self._track_new_server(joiner)
        # Membership changed: standing report-diff state may address groups
        # the handoff below moves, so fall back to a full exchange.
        self._invalidate_report_diff()
        self._transport.bind(joiner, self._make_endpoint(server), shard=shard)
        # Ring membership changed: cached DHT routes are stale.
        self._transport.invalidate_routes()
        moving = [
            (group, owner)
            for group, owner in sorted(self._group_owner.items())
            if self._router.owner_of_key(group.virtual_key) == joiner
            and owner != joiner
        ]
        handed_off: dict[KeyGroup, str] = {}
        for group, former in moving:
            former_server = self._servers[former]
            parent_id = former_server.table.entry(group).parent_id
            # Consolidation linkage only survives for *right* children: the
            # merge protocol requires the left child to be local to the
            # parent-entry holder, so a moved left child restarts as a root
            # on the joiner (as failure recovery does) instead of addressing
            # load reports no parent can ever act on.  For right children a
            # "self" parent resolves to the former owner's name; roots stay
            # roots (ParentID = −1).
            is_right_child = group.depth > 0 and group == group.parent().split()[1]
            if parent_id is None or not is_right_child:
                parent_name = None
            else:
                parent_name = former if parent_id == SELF_PARENT else parent_id
            try:
                release = self._transport.request(
                    Envelope(
                        source=joiner,
                        destination=former,
                        payload=ReleaseKeyGroup(group=group, child_server=former),
                        category=MessageCategory.MERGE,
                    )
                )
            except DeliveryFailed:
                # The former owner failed with the release in flight; its
                # failure recovery has already re-homed every group it still
                # held (to the joiner, for the keys that moved it here).
                self._messages.add(MessageCategory.MERGE, 1)
                continue
            if release.reply is None:
                # The owner refused the release (the group changed under us
                # mid-handoff); leave ownership where it is.
                continue
            queries: list = release.reply
            try:
                self._transport.request(
                    Envelope(
                        source=former,
                        destination=joiner,
                        payload=AcceptKeyGroup(
                            group=group,
                            parent_server=parent_name,
                            migrated_queries=len(queries),
                        ),
                        category=MessageCategory.SPLIT,
                        attachment=queries,
                    )
                )
            except DeliveryFailed:
                # The joiner itself failed before the transfer landed.  The
                # release already happened, so the group and its queries must
                # be re-homed — as a root on the ring's current owner.
                self._messages.add(MessageCategory.MERGE, 2)
                self._messages.add(MessageCategory.SPLIT, 1)  # lost transfer
                handed_off[group] = former
                self._restart_as_root(group, queries)
                continue
            self._messages.add(MessageCategory.MERGE, 2)  # release request + reply
            self._messages.add(MessageCategory.SPLIT, 2)  # transfer + ack
            self._messages.add(MessageCategory.STATE_TRANSFER, len(queries))
            if parent_name is not None and parent_name in self._servers:
                parent_table = self._servers[parent_name].table
                parent_group = group.parent()
                if parent_group in parent_table:
                    entry = parent_table.entry(parent_group)
                    if not entry.active and entry.right_child_id == former:
                        entry.right_child_id = joiner
            self._unregister_group(group)
            self._register_group(group, joiner)
            handed_off[group] = former
        return handed_off

    def rebalance_partition(self, new_map: PartitionMap) -> dict[KeyGroup, str]:
        """Install a new partition map and migrate the key groups it moves.

        The online-rebalance path: every layer routes through the router's
        partition map, so installing ``new_map`` atomically redefines which
        shard each key belongs to, and this method then makes ownership catch
        up by migrating every active key group whose shard changed.  Migration
        reuses the join-handoff machinery verbatim — the former owner releases
        the group (``RELEASE_KEYGROUP``), and responsibility plus stored
        queries transfer with an ``ACCEPT_KEYGROUP`` envelope to the server
        the group's virtual key hashes to on its *new* shard's ring.  A moved
        group always restarts as a root entry: consolidation linkage cannot
        span shards (parents and children must share a ring for the merge
        protocol), exactly the rule :meth:`handle_server_join` applies to
        moved left children.  Stale parent entries left behind on the old
        shard are harmless — their release probe finds the child gone and the
        merge is simply skipped.

        Mid-flight failures get the join-handoff treatment too: a former
        owner dying with the release outstanding costs one MERGE message and
        nothing else (its failure recovery already re-homed the group under
        the new map); a receiver dying after the release re-homes the group
        as a root on the ring's current owner via :meth:`_restart_as_root`.

        Args:
            new_map: The partition to install.  Must match the router's shard
                count and key width, carry a strictly larger version, and be
                no finer-grained than ``initial_depth`` so every key group —
                roots and all their descendants — stays whole on one shard.

        Returns:
            A mapping from each migrated group to its former owner.
        """
        check_type("new_map", new_map, PartitionMap)
        if self._router.shard_count <= 1:
            raise ValueError("a single-ring deployment has no partition to rebalance")
        if new_map.granularity_depth > self._config.initial_depth:
            raise ValueError(
                f"partition boundaries at granularity depth "
                f"{new_map.granularity_depth} are finer than initial_depth="
                f"{self._config.initial_depth}; root groups must be "
                "shard-local so splits and merges never cross shards"
            )
        current = self._router.partition
        moving = [
            (group, owner)
            for group, owner in sorted(self._group_owner.items())
            if new_map.shard_of_key(group.virtual_key)
            != current.shard_of_key(group.virtual_key)
        ]
        self._router.set_partition(new_map)
        # The key → shard → server resolution changed: cached DHT routes are
        # stale even when no active group happens to move, and standing
        # report-diff state may address groups the migration loop moves.
        self._transport.invalidate_routes()
        self._invalidate_report_diff()
        migrated: dict[KeyGroup, str] = {}
        for group, former in moving:
            new_owner = self._router.owner_of_key(group.virtual_key)
            try:
                release = self._transport.request(
                    Envelope(
                        source=new_owner,
                        destination=former,
                        payload=ReleaseKeyGroup(group=group, child_server=former),
                        category=MessageCategory.MERGE,
                    )
                )
            except DeliveryFailed:
                # The former owner failed with the release in flight; its
                # failure recovery has already re-homed every group it still
                # held under the freshly installed map.
                self._messages.add(MessageCategory.MERGE, 1)
                continue
            if release.reply is None:
                # The owner refused the release (the group changed under us
                # mid-rebalance); leave ownership where it is.
                continue
            queries: list = release.reply
            try:
                self._transport.request(
                    Envelope(
                        source=former,
                        destination=new_owner,
                        payload=AcceptKeyGroup(
                            group=group,
                            parent_server=None,
                            migrated_queries=len(queries),
                        ),
                        category=MessageCategory.SPLIT,
                        attachment=queries,
                    )
                )
            except DeliveryFailed:
                # The receiver failed before the transfer landed.  The
                # release already happened, so the group and its queries must
                # be re-homed — as a root on the ring's current owner.
                self._messages.add(MessageCategory.MERGE, 2)
                self._messages.add(MessageCategory.SPLIT, 1)  # lost transfer
                migrated[group] = former
                self._restart_as_root(group, queries)
                continue
            self._messages.add(MessageCategory.MERGE, 2)  # release request + reply
            self._messages.add(MessageCategory.SPLIT, 2)  # transfer + ack
            self._messages.add(MessageCategory.STATE_TRANSFER, len(queries))
            self._unregister_group(group)
            self._register_group(group, new_owner)
            migrated[group] = former
        return migrated

    def handle_server_failure(self, failed: str) -> dict[KeyGroup, str]:
        """Recover from the abrupt loss of a server.

        The paper leaves fault handling to the underlying DHT's machinery;
        this is the natural completion a deployable system needs.  Recovery
        proceeds as the surviving servers would: the failed node is removed
        from the ring, and every key group it actively managed is re-assigned
        to the server its virtual key now hashes to.  When the failed node was
        the recorded right child of a surviving parent entry, the parent
        re-issues the ``ACCEPT_KEYGROUP`` (preserving the consolidation
        linkage); otherwise the group restarts as a root entry on its new
        owner.  Persistent queries stored on the failed server are lost — they
        are soft state that clients re-register, exactly as in the paper's
        long-lived query model.

        Returns the mapping from re-assigned group to its new owner.
        """
        if failed not in self._servers:
            raise KeyError(f"no server named {failed!r}")
        if not self._router.can_remove(failed):
            # Checked before any state is touched so a refused removal leaves
            # the deployment fully intact.
            raise ValueError(
                f"cannot fail {failed!r}: it is the last server of its shard "
                "and its key range would be left unowned"
            )
        failed_server = self._servers[failed]
        orphaned = list(failed_server.active_groups())
        # Remember, for each orphaned group, which surviving server (if any)
        # holds the inactive parent entry naming the failed node as its child.
        surviving_parent: dict[KeyGroup, str] = {}
        for group in orphaned:
            if group.depth == 0:
                continue
            parent = group.parent()
            for name, server in self._servers.items():
                if name == failed:
                    continue
                if parent in server.table:
                    entry = server.table.entry(parent)
                    if not entry.active and entry.right_child_id == failed:
                        surviving_parent[group] = name
                        break
        del self._servers[failed]
        self._dirty_load_servers.discard(failed)
        self._dirty_split.discard(failed)
        self._dirty_merge.discard(failed)
        self._dirty_reports.discard(failed)
        self._load_flags.pop(failed, None)
        order = self._server_order.pop(failed, None)
        if order is not None:
            self._order_names.pop(order, None)
        # Membership changed: survivors' standing reports may address groups
        # the recovery below re-homes, so fall back to a full exchange.
        self._invalidate_report_diff()
        self._transport.unbind(failed)
        self._router.remove_server(failed)
        reassigned: dict[KeyGroup, str] = {}
        for group in orphaned:
            self._unregister_group(group)
            new_owner = self._router.owner_of_key(group.virtual_key)
            parent_name = surviving_parent.get(group)
            transfer = AcceptKeyGroup(
                group=group, parent_server=parent_name if parent_name else new_owner
            )
            if parent_name is not None:
                try:
                    self._transport.request(
                        Envelope(
                            source=parent_name,
                            destination=new_owner,
                            payload=transfer,
                            category=MessageCategory.SPLIT,
                        )
                    )
                except DeliveryFailed:
                    # A cascading failure removed new_owner while the
                    # re-issued transfer was in flight; charge the lost
                    # (ack-less) transfer, then restart the group as a root
                    # on whoever owns its key in the twice-shrunk ring — the
                    # unconditional transfer + ack charge below covers that
                    # restart.
                    self._messages.add(MessageCategory.SPLIT, 1)
                    new_owner = self._router.owner_of_key(group.virtual_key)
                    self._servers[new_owner].assign_root_group(group)
                else:
                    # The parent's bookkeeping must name the new child owner
                    # so that future consolidations contact the right server.
                    if parent_name in self._servers:
                        self._servers[parent_name].table.entry(
                            group.parent()
                        ).right_child_id = new_owner
            else:
                self._servers[new_owner].assign_root_group(group)
            self._messages.add(MessageCategory.SPLIT, 2)
            self._register_group(group, new_owner)
            reassigned[group] = new_owner
        return reassigned

    # ------------------------------------------------------------------ #
    # Invariant checking
    # ------------------------------------------------------------------ #

    def verify_invariants(self) -> None:
        """Assert every global protocol invariant.

        1. Active groups are mutually prefix-free and exactly cover the key
           space.
        2. The ownership registry matches the servers' own tables.
        3. Every active group is owned by the server its virtual key hashes to
           *unless* it was created by a self-collision retry (in which case it
           lives on the retrying server); the base-case mapping is what makes
           client depth discovery converge.
        4. Per-server table invariants hold.
        """
        groups = sorted(self._group_owner)
        pair = first_overlapping_pair(groups)
        assert pair is None, f"active groups {pair[0]} and {pair[1]} overlap"
        total = sum(group.size for group in groups)
        assert total == (1 << self._config.key_bits), (
            f"active groups cover {total} keys, expected {1 << self._config.key_bits}"
        )
        for group, owner in self._group_owner.items():
            server = self._servers[owner]
            assert group in server.table, f"{owner} is missing an entry for {group}"
            assert server.table.entry(group).active, (
                f"{owner}'s entry for {group} is not active"
            )
        for name, server in self._servers.items():
            server.table.check_invariants()
            for group in server.active_groups():
                assert self._group_owner.get(group) == name, (
                    f"registry does not record {name} as owner of {group}"
                )
        if self._router.shard_count > 1:
            self.verify_shard_invariants()

    def verify_shard_invariants(self) -> None:
        """Assert the additional invariants of a sharded deployment.

        1. Every active key group is registered on exactly one shard: its
           owner belongs to the shard that owns the group's virtual key (the
           shard a lookup for any of the group's keys routes to).
        2. No consolidation linkage crosses shards: each inactive parent
           entry's recorded right child, and each active entry's parent
           server, live on the entry holder's own shard.  This is what keeps
           split/merge/handoff traffic shard-local.
        """
        router = self._router
        for group, owner in self._group_owner.items():
            key_shard = router.shard_of_key(group.virtual_key)
            owner_shard = router.server_shard(owner)
            assert owner_shard == key_shard, (
                f"group {group} belongs to shard {key_shard} but its owner "
                f"{owner} lives on shard {owner_shard}"
            )
        for name, server in self._servers.items():
            holder_shard = router.server_shard(name)
            for entry in server.table.entries():
                child = entry.right_child_id
                if not entry.active and child is not None and child in self._servers:
                    assert router.server_shard(child) == holder_shard, (
                        f"{name} (shard {holder_shard}) records right child "
                        f"{child} of {entry.group} on shard "
                        f"{router.server_shard(child)}: cross-shard parent link"
                    )
                parent = entry.parent_id
                if (
                    entry.active
                    and parent is not None
                    and parent != SELF_PARENT
                    and parent in self._servers
                ):
                    assert router.server_shard(parent) == holder_shard, (
                        f"{name} (shard {holder_shard}) reports {entry.group} "
                        f"to parent server {parent} on shard "
                        f"{router.server_shard(parent)}: cross-shard parent link"
                    )

    def describe(self) -> dict[str, object]:
        """A summary snapshot of the deployment (for examples and debugging)."""
        depths = [group.depth for group in self._group_owner]
        return {
            "servers": len(self._servers),
            "active_servers": len(self.active_servers()),
            "active_groups": len(self._group_owner),
            "min_depth": min(depths) if depths else None,
            "max_depth": max(depths) if depths else None,
            "messages": self._messages.snapshot(),
        }
