"""Successor-list replication for objects stored in the DHT.

Basic DHTs obtain fault tolerance by replicating each object on the ``r``
nodes following its owner on the ring (Section 1.2 of the paper notes that
"most implementations employ replication for fault tolerance").  CLASH itself
does not change this mechanism, but the substrate provides it so that the
examples can demonstrate object survival across node failures.
"""

from __future__ import annotations

from collections import defaultdict

from repro.dht.ring import ChordRing
from repro.keys.identifier import IdentifierKey
from repro.util.validation import check_positive, check_type

__all__ = ["ReplicationManager"]


class ReplicationManager:
    """Store objects on a Chord ring with ``replica_count`` successor replicas.

    The manager tracks, per node, which object keys it holds (primary or
    replica), and can re-replicate after a node failure — the behaviour a
    downstream user of the substrate would expect from a DHT storage layer.
    """

    def __init__(self, ring: ChordRing, replica_count: int = 2) -> None:
        check_type("ring", ring, ChordRing)
        check_type("replica_count", replica_count, int)
        check_positive("replica_count", replica_count)
        self._ring = ring
        self._replica_count = replica_count
        self._objects: dict[int, object] = {}
        self._placement: dict[int, list[str]] = {}

    @property
    def replica_count(self) -> int:
        """Number of copies stored per object (primary + replicas)."""
        return self._replica_count

    def _replica_set(self, hash_key: int) -> list[str]:
        owner = self._ring.owner_of(hash_key)
        owner_node = self._ring.node(owner)
        names = [owner]
        for successor_id in owner_node.successor_list:
            name = self._ring.node(self._name_for_id(successor_id)).name
            if name not in names:
                names.append(name)
            if len(names) >= self._replica_count:
                break
        return names[: self._replica_count]

    def _name_for_id(self, node_id: int) -> str:
        for name in self._ring.node_names():
            if self._ring.node(name).node_id == node_id:
                return name
        raise KeyError(f"no node with id {node_id}")

    def store(self, key: IdentifierKey, value: object) -> list[str]:
        """Store an object and return the names of the nodes holding copies."""
        hash_key = self._ring.hash_function.hash_key(key)
        replicas = self._replica_set(hash_key)
        self._objects[hash_key] = value
        self._placement[hash_key] = replicas
        return list(replicas)

    def fetch(self, key: IdentifierKey) -> object:
        """Retrieve an object (raises :class:`KeyError` if it was never stored)."""
        hash_key = self._ring.hash_function.hash_key(key)
        if hash_key not in self._objects:
            raise KeyError(f"no object stored under key {key}")
        return self._objects[hash_key]

    def holders(self, key: IdentifierKey) -> list[str]:
        """Names of the nodes currently holding copies of the object."""
        hash_key = self._ring.hash_function.hash_key(key)
        if hash_key not in self._placement:
            raise KeyError(f"no object stored under key {key}")
        return list(self._placement[hash_key])

    def objects_per_node(self) -> dict[str, int]:
        """Number of object copies held by each node."""
        counts: dict[str, int] = defaultdict(int)
        for replicas in self._placement.values():
            for name in replicas:
                counts[name] += 1
        return dict(counts)

    def handle_node_failure(self, name: str) -> int:
        """Remove a node and re-replicate every object it held.

        Returns the number of objects that had to be re-replicated.  Objects
        remain available provided fewer than ``replica_count`` holders failed
        simultaneously — the property the tests assert.
        """
        if name not in self._ring:
            raise KeyError(f"node {name!r} is not in the ring")
        self._ring.remove_node(name)
        self._ring.stabilise()
        repaired = 0
        for hash_key, replicas in list(self._placement.items()):
            if name in replicas:
                self._placement[hash_key] = self._replica_set(hash_key)
                repaired += 1
        return repaired
