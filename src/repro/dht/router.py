"""The routing tier: one interface over one ring or a federation of rings.

A single global :class:`~repro.dht.ring.ChordRing` is the hard scalability
ceiling of the original design — every lookup, registration and membership
event funnels through one overlay.  The routing tier breaks that coupling:
:class:`~repro.core.protocol.ClashSystem` talks to a :class:`RingRouter`,
which either wraps today's single ring (:class:`SingleRingRouter`,
bit-identical to the pre-router behaviour) or partitions the identifier key
space across several independent Chord rings
(:class:`ShardedRingRouter`).

Sharding model
--------------

Which shard owns a key is decided by a first-class
:class:`~repro.dht.partition.PartitionMap`: an ordered list of contiguous
key ranges, one per shard, with a monotonically increasing version.  The
default :class:`~repro.dht.partition.StaticPrefixPartition` reproduces the
original rule bit for bit — with ``2**b`` shards, shard ``k`` owns every
identifier key whose top ``b`` bits equal ``k`` — while a rebalance may
install a newer map with load-proportional boundaries
(:meth:`ShardedRingRouter.set_partition`).  Each shard runs its own full
Chord ring over a disjoint subset of the servers, so a shard is exactly the
unit a future multi-process worker can own: its servers, its overlay and
its slice of the key space move together.

Because a key group's children share its prefix, a group of depth ``d``
lies entirely inside one aligned prefix block of any depth ``<= d``.  CLASH
bootstraps its root groups at ``initial_depth`` and consolidation never
collapses past a root entry, so requiring every map's boundary granularity
to stay at or above block size ``2**(key_bits - initial_depth)`` (enforced
by :class:`~repro.core.protocol.ClashSystem`) makes every split, merge,
load report and parent link *shard-local* by construction; only the
stateless routing decision — which shard owns a virtual key — is global.

Server placement balances shard populations: a joining server lands on the
least-populated shard (ties broken by shard index), which is deterministic
and keeps churn from hollowing out a shard.  Removing the last server of a
shard is refused (:meth:`RingRouter.can_remove`) — a shard must always be
able to own its keys.
"""

from __future__ import annotations

import abc

from repro.dht.hashspace import HashSpace
from repro.dht.partition import PartitionMap, StaticPrefixPartition
from repro.dht.ring import ChordRing, LookupResult
from repro.keys.identifier import IdentifierKey
from repro.util.validation import check_positive, check_power_of_two, check_type

__all__ = [
    "RingRouter",
    "SingleRingRouter",
    "ShardedRingRouter",
    "build_router",
]


class RingRouter(abc.ABC):
    """The interface :class:`~repro.core.protocol.ClashSystem` routes through.

    A router owns one or more :class:`~repro.dht.ring.ChordRing` instances
    and maps identifier keys and server names onto them.  All methods are
    deterministic functions of the membership and the key — the router keeps
    no per-lookup state of its own.
    """

    # ------------------------------------------------------------------ #
    # Topology introspection
    # ------------------------------------------------------------------ #

    @property
    @abc.abstractmethod
    def shard_count(self) -> int:
        """Number of independent rings the key space is partitioned across."""

    @abc.abstractmethod
    def rings(self) -> tuple[ChordRing, ...]:
        """Every shard's ring, in shard order."""

    @property
    @abc.abstractmethod
    def ring(self) -> ChordRing:
        """The single underlying ring (raises for sharded routers)."""

    @abc.abstractmethod
    def server_shard(self, name: str) -> int:
        """The shard index the named server belongs to (KeyError if absent)."""

    @abc.abstractmethod
    def shard_of_key(self, key: IdentifierKey) -> int:
        """The shard index owning an identifier (virtual) key."""

    @abc.abstractmethod
    def servers_in_shard(self, shard: int) -> list[str]:
        """Names of the servers in one shard, in ring order."""

    @abc.abstractmethod
    def node_ids(self) -> list[int]:
        """All node identifiers across every shard, in increasing order."""

    def __contains__(self, name: str) -> bool:
        try:
            self.server_shard(name)
        except KeyError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def add_server(self, name: str, node_id: int | None = None) -> int:
        """Place a server on a shard ring; returns the shard index.

        The routing state of the touched shard is stale until
        :meth:`stabilise` runs.
        """

    @abc.abstractmethod
    def remove_server(self, name: str) -> None:
        """Remove a server from its shard ring and re-stabilise that shard.

        Raises :class:`ValueError` when the server is the last member of its
        shard (see :meth:`can_remove`).
        """

    @abc.abstractmethod
    def can_remove(self, name: str) -> bool:
        """True if removing ``name`` leaves its shard with at least one node."""

    @abc.abstractmethod
    def stabilise(self) -> None:
        """Rebuild routing state on every shard with pending membership changes."""

    # ------------------------------------------------------------------ #
    # Telemetry and tuning
    # ------------------------------------------------------------------ #

    @property
    def partition_version(self) -> int:
        """Version of the installed partition map (0 when there is none).

        Single-ring deployments have no partition to speak of; sharded
        routers report the version of their current
        :class:`~repro.dht.partition.PartitionMap`.
        """
        return 0

    def memo_stats(self) -> dict[str, int]:
        """Lookup-memo telemetry summed across every shard ring."""
        totals: dict[str, int] = {}
        for ring in self.rings():
            for name, value in ring.memo_stats().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def stabilise_stats(self) -> dict[str, int]:
        """Stabilisation telemetry summed across every shard ring."""
        totals: dict[str, int] = {}
        for ring in self.rings():
            for name, value in ring.stabilise_stats().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def set_force_full_stabilise(self, flag: bool) -> None:
        """Force (or stop forcing) the from-scratch rebuild on every ring.

        Routers never create rings after construction — joins add nodes to
        the existing shard rings — so setting the flag here reaches every
        ring the deployment will ever stabilise.
        """
        for ring in self.rings():
            ring.force_full_stabilise = flag

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def lookup(self, key: IdentifierKey) -> LookupResult:
        """Route a lookup for ``key`` through its shard's overlay.

        This is the resolver installed on the transport for
        :class:`~repro.net.envelope.DhtAddress` destinations: the result
        carries the owner and the overlay hop charge.
        """

    @abc.abstractmethod
    def owner_of_key(self, key: IdentifierKey) -> str:
        """The owning server for ``key`` without simulating overlay routing."""


class SingleRingRouter(RingRouter):
    """The degenerate router: one shard, one ring — today's behaviour.

    Every method delegates straight to the wrapped
    :class:`~repro.dht.ring.ChordRing` with the exact call sequence the
    protocol layer used before the routing tier existed, so a ``shards=1``
    deployment is bit-identical to the pre-router code (the golden
    equivalence suite enforces this).
    """

    def __init__(self, space: HashSpace) -> None:
        check_type("space", space, HashSpace)
        self._ring = ChordRing(space=space)

    @property
    def shard_count(self) -> int:
        return 1

    def rings(self) -> tuple[ChordRing, ...]:
        return (self._ring,)

    @property
    def ring(self) -> ChordRing:
        return self._ring

    def server_shard(self, name: str) -> int:
        if name not in self._ring:
            raise KeyError(f"no server named {name!r} on the ring")
        return 0

    def shard_of_key(self, key: IdentifierKey) -> int:
        return 0

    def servers_in_shard(self, shard: int) -> list[str]:
        if shard != 0:
            raise IndexError(f"single-ring router has no shard {shard}")
        return self._ring.node_names()

    def node_ids(self) -> list[int]:
        return self._ring.node_ids()

    def add_server(self, name: str, node_id: int | None = None) -> int:
        self._ring.add_node(name, node_id=node_id)
        return 0

    def remove_server(self, name: str) -> None:
        if not self.can_remove(name):
            raise ValueError(f"cannot remove {name!r}: it is the last ring member")
        self._ring.remove_node(name)
        self._ring.stabilise()

    def can_remove(self, name: str) -> bool:
        return name in self._ring and len(self._ring) > 1

    def stabilise(self) -> None:
        self._ring.stabilise()

    def lookup(self, key: IdentifierKey) -> LookupResult:
        return self._ring.lookup_key(key)

    def owner_of_key(self, key: IdentifierKey) -> str:
        return self._ring.owner_of(self._ring.hash_function.hash_key(key))


class ShardedRingRouter(RingRouter):
    """Partitions the key space across ``shard_count`` Chord rings.

    Every shard-of-key decision — routing, placement, invariant checks —
    delegates to the installed :class:`~repro.dht.partition.PartitionMap`;
    the router itself only owns the rings and the server → shard registry.

    Args:
        space: The hash space every shard ring is built over (shards share
            the hash-space geometry; their memberships are disjoint).
        shard_count: Number of shards; must be a power of two so the
            default prefix partition cuts the space cleanly.
        key_bits: Identifier key width N.
        partition: The initial key-space partition; defaults to the
            :class:`~repro.dht.partition.StaticPrefixPartition` reproducing
            the top-``log2(shard_count)``-bits rule bit-identically.
    """

    def __init__(
        self,
        space: HashSpace,
        shard_count: int,
        key_bits: int,
        partition: PartitionMap | None = None,
    ) -> None:
        check_type("space", space, HashSpace)
        check_power_of_two("shard_count", shard_count)
        check_type("key_bits", key_bits, int)
        check_positive("key_bits", key_bits)
        self._shard_bits = shard_count.bit_length() - 1
        if self._shard_bits > key_bits:
            raise ValueError(
                f"{shard_count} shards need {self._shard_bits} key bits, "
                f"but keys are only {key_bits} bits wide"
            )
        self._key_bits = key_bits
        self._rings = tuple(ChordRing(space=space) for _ in range(shard_count))
        self._server_shards: dict[str, int] = {}
        self._stale_shards: set[int] = set()
        if partition is None:
            partition = StaticPrefixPartition(key_bits=key_bits, shard_count=shard_count)
        self._check_partition(partition)
        self._partition = partition

    def _check_partition(self, partition: PartitionMap) -> None:
        check_type("partition", partition, PartitionMap)
        if partition.key_bits != self._key_bits:
            raise ValueError(
                f"partition map covers {partition.key_bits}-bit keys, "
                f"but the router routes {self._key_bits}-bit keys"
            )
        if partition.shard_count != len(self._rings):
            raise ValueError(
                f"partition map defines {partition.shard_count} ranges, "
                f"but the router federates {len(self._rings)} shards"
            )

    @property
    def shard_count(self) -> int:
        return len(self._rings)

    @property
    def shard_bits(self) -> int:
        """Number of leading key bits that select the shard."""
        return self._shard_bits

    @property
    def partition(self) -> PartitionMap:
        """The installed key-space → shard partition map."""
        return self._partition

    @property
    def partition_version(self) -> int:
        return self._partition.version

    def set_partition(self, partition: PartitionMap) -> None:
        """Install a strictly newer partition map.

        The router swaps the mapping only; migrating the key groups whose
        shard changed — and invalidating cached transport routes — is
        :meth:`~repro.core.protocol.ClashSystem.rebalance_partition`'s job,
        which calls this as its first step.
        """
        self._check_partition(partition)
        if partition.version <= self._partition.version:
            raise ValueError(
                f"partition versions must increase: installed "
                f"{self._partition.version}, offered {partition.version}"
            )
        self._partition = partition

    def rings(self) -> tuple[ChordRing, ...]:
        return self._rings

    @property
    def ring(self) -> ChordRing:
        raise AttributeError(
            "a sharded deployment has no single ring; use rings() or "
            "shard_of_key() to reach the owning shard"
        )

    def server_shard(self, name: str) -> int:
        shard = self._server_shards.get(name)
        if shard is None:
            raise KeyError(f"no server named {name!r} on any shard")
        return shard

    def shard_of_key(self, key: IdentifierKey) -> int:
        if key.width != self._key_bits:
            raise ValueError(
                f"key width {key.width} does not match router key_bits {self._key_bits}"
            )
        return self._partition.shard_of_key(key)

    def servers_in_shard(self, shard: int) -> list[str]:
        return self._rings[shard].node_names()

    def node_ids(self) -> list[int]:
        ids: list[int] = []
        for ring in self._rings:
            if len(ring):
                ids.extend(ring.node_ids())
        ids.sort()
        return ids

    def add_server(self, name: str, node_id: int | None = None) -> int:
        if name in self._server_shards:
            raise ValueError(f"server {name!r} is already placed on a shard")
        # Least-populated shard, ties to the lowest index: deterministic and
        # keeps churn from draining one shard while another grows.
        shard = min(
            range(len(self._rings)), key=lambda index: (len(self._rings[index]), index)
        )
        self._rings[shard].add_node(name, node_id=node_id)
        self._server_shards[name] = shard
        self._stale_shards.add(shard)
        return shard

    def remove_server(self, name: str) -> None:
        shard = self.server_shard(name)
        if len(self._rings[shard]) <= 1:
            raise ValueError(
                f"cannot remove {name!r}: it is the last server of shard {shard}, "
                "which would leave the shard's key range unowned"
            )
        self._rings[shard].remove_node(name)
        del self._server_shards[name]
        self._rings[shard].stabilise()
        self._stale_shards.discard(shard)

    def can_remove(self, name: str) -> bool:
        shard = self._server_shards.get(name)
        return shard is not None and len(self._rings[shard]) > 1

    def stabilise(self) -> None:
        # Only shards with pending membership changes rebuild; an untouched
        # shard's finger tables (and lookup memo) are still exact.
        for shard in sorted(self._stale_shards):
            self._rings[shard].stabilise()
        self._stale_shards.clear()

    def lookup(self, key: IdentifierKey) -> LookupResult:
        return self._rings[self.shard_of_key(key)].lookup_key(key)

    def owner_of_key(self, key: IdentifierKey) -> str:
        ring = self._rings[self.shard_of_key(key)]
        return ring.owner_of(ring.hash_function.hash_key(key))


def build_router(
    shards: int,
    space: HashSpace,
    key_bits: int,
    partition: PartitionMap | None = None,
) -> RingRouter:
    """The router for a deployment: single-ring for 1 shard, sharded above.

    ``partition`` overrides the sharded router's initial key-space map
    (default: the static prefix partition); it is rejected for single-ring
    deployments, which have nothing to partition.
    """
    check_type("shards", shards, int)
    check_positive("shards", shards)
    if shards == 1:
        if partition is not None:
            raise ValueError("a single-ring deployment takes no partition map")
        return SingleRingRouter(space=space)
    return ShardedRingRouter(
        space=space, shard_count=shards, key_bits=key_bits, partition=partition
    )
