"""Modular arithmetic over an M-bit circular hash space.

Chord arranges both node identifiers and object hash keys on a ring of size
``2**M``.  All interval and distance computations must respect the wrap-around
at zero; centralising them here keeps the routing code free of off-by-one
errors and makes the properties easy to verify with hypothesis.
"""

from __future__ import annotations

from repro.util.validation import check_positive, check_type

__all__ = ["HashSpace"]


class HashSpace:
    """The circular identifier space ``[0, 2**bits)`` used by Chord.

    Args:
        bits: Width M of the hash space.  The paper's simulations use a 24-bit
            hash space; production Chord uses 160 bits.  All methods work for
            any positive width.
    """

    def __init__(self, bits: int) -> None:
        check_type("bits", bits, int)
        check_positive("bits", bits)
        self._bits = bits
        self._size = 1 << bits

    @property
    def bits(self) -> int:
        """Width of the hash space in bits."""
        return self._bits

    @property
    def size(self) -> int:
        """Number of points on the ring (``2**bits``)."""
        return self._size

    def contains(self, value: int) -> bool:
        """True if ``value`` is a valid point on the ring."""
        return isinstance(value, int) and not isinstance(value, bool) and 0 <= value < self._size

    def check_member(self, name: str, value: int) -> None:
        """Raise :class:`ValueError` unless ``value`` is a valid ring point."""
        if not self.contains(value):
            raise ValueError(
                f"{name} must be an integer in [0, {self._size}), got {value!r}"
            )

    def normalise(self, value: int) -> int:
        """Reduce an arbitrary integer onto the ring (mod ``2**bits``)."""
        return value % self._size

    def add(self, value: int, delta: int) -> int:
        """Ring addition: ``(value + delta) mod 2**bits``."""
        self.check_member("value", value)
        return (value + delta) % self._size

    def distance(self, start: int, end: int) -> int:
        """Clockwise distance from ``start`` to ``end``."""
        self.check_member("start", start)
        self.check_member("end", end)
        return (end - start) % self._size

    def in_open_interval(self, value: int, start: int, end: int) -> bool:
        """True if ``value`` lies in the clockwise-open interval ``(start, end)``.

        When ``start == end`` the interval covers the whole ring except the
        single point ``start`` (standard Chord convention).
        """
        self.check_member("value", value)
        self.check_member("start", start)
        self.check_member("end", end)
        if start == end:
            return value != start
        if start < end:
            return start < value < end
        return value > start or value < end

    def in_half_open_interval(self, value: int, start: int, end: int) -> bool:
        """True if ``value`` lies in the clockwise interval ``(start, end]``.

        This is the interval Chord uses for successor ownership: the node with
        identifier ``end`` owns every key in ``(predecessor, end]``.  When
        ``start == end`` the interval is the whole ring.
        """
        self.check_member("value", value)
        self.check_member("start", start)
        self.check_member("end", end)
        if start == end:
            return True
        if start < end:
            return start < value <= end
        return value > start or value <= end

    def finger_start(self, node_id: int, finger_index: int) -> int:
        """The start of finger ``finger_index`` for ``node_id``.

        Chord finger ``i`` (0-based) of node ``n`` points at the successor of
        ``n + 2**i``.
        """
        self.check_member("node_id", node_id)
        if not 0 <= finger_index < self._bits:
            raise ValueError(
                f"finger_index must be in [0, {self._bits}), got {finger_index}"
            )
        return (node_id + (1 << finger_index)) % self._size
