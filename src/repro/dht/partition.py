"""First-class key-space → shard partition maps for the routing tier.

The sharded federation originally hard-coded its partition: shard ``k`` owned
every identifier key whose top ``b`` bits equal ``k``.  That inherits the
workload's skew — the hottest prefix block lands on one shard no matter how
the servers are spread — so this module makes the key-space → shard mapping a
first-class, versioned object the router delegates to:

* :class:`PartitionMap` — an ordered list of contiguous key ranges, one per
  shard, covering the whole ``[0, 2**key_bits)`` space with no gaps or
  overlaps.  Boundaries are aligned to *prefix blocks* of a fixed
  ``granularity_depth`` so that every key group at or below that depth lies
  entirely inside one shard's range.  A monotonically increasing ``version``
  orders maps over a deployment's lifetime.
* :class:`StaticPrefixPartition` — equal ranges, bit-identical to the
  original top-``b``-bits rule (``shard_of_key == key.prefix(b)``); the
  default, and the configuration every golden suite pins.
* :class:`LoadProportionalPartition` — boundaries cut at the cumulative-load
  quantiles of an observed per-prefix load vector (the
  :meth:`~repro.sim.loadmeasure.LoadMeasure.rate_by_prefix` output), so the
  expected per-shard load is as even as block granularity allows.  Built
  from a ``previous`` map it moves each boundary at most ``block_limit``
  blocks per step — the bounded rebalance the simulator drives at period
  boundaries.

Shard-locality argument
-----------------------

CLASH bootstraps its root groups at ``initial_depth`` and consolidation
never collapses past a root entry, so every active group has depth
``>= initial_depth``.  A boundary aligned to blocks of ``granularity_depth
<= initial_depth`` therefore never cuts through an active group's key range:
whatever the boundaries, every group — and all of its present and future
descendants — lives on exactly one shard, and splits, merges and parent
links stay shard-local exactly as under the static prefix rule.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.keys.identifier import IdentifierKey
from repro.util.validation import check_positive, check_power_of_two, check_type

__all__ = [
    "DEFAULT_BLOCK_LIMIT",
    "PARTITION_KINDS",
    "LoadProportionalPartition",
    "PartitionMap",
    "StaticPrefixPartition",
    "load_proportional_cuts",
    "step_block_cuts",
]

PARTITION_KINDS = ("static", "adaptive")
"""The partition policies a simulation can select: ``static`` (the top-bits
prefix rule, bit-identical to the pre-partition-map behaviour) or
``adaptive`` (load-proportional boundaries, rebalanced at period starts)."""

DEFAULT_BLOCK_LIMIT = 8
"""Blocks any single boundary may move per rebalance step.  Bounds the
number of prefix blocks — and with them the key groups — migrating between
shards in one step, while still converging on a new load profile within a
few load-check periods (64 blocks at ``initial_depth=6``)."""


class PartitionMap:
    """Contiguous key ranges → shard index, versioned and immutable.

    Range ``k`` is ``[boundaries[k], boundaries[k+1])`` and belongs to shard
    ``k``; ranges are stated in key order, so the map is fully described by
    its boundary vector.

    Args:
        boundaries: ``shard_count + 1`` strictly increasing integers from
            ``0`` to ``2**key_bits``, each aligned to the block size
            ``2**(key_bits - granularity_depth)``.
        key_bits: Identifier key width the map partitions.
        granularity_depth: Prefix depth the boundaries are aligned to.  Must
            not exceed the deployment's ``initial_depth`` (enforced by
            :class:`~repro.core.protocol.ClashSystem`) so active groups stay
            shard-local.
        version: Monotonically increasing map version; a router only ever
            replaces its map with a strictly newer one.
    """

    def __init__(
        self,
        boundaries,
        key_bits: int,
        granularity_depth: int,
        version: int = 0,
    ) -> None:
        check_type("key_bits", key_bits, int)
        check_positive("key_bits", key_bits)
        check_type("granularity_depth", granularity_depth, int)
        check_type("version", version, int)
        if not 0 <= granularity_depth <= key_bits:
            raise ValueError(
                f"granularity_depth must be in [0, {key_bits}], got {granularity_depth}"
            )
        if version < 0:
            raise ValueError(f"version must be non-negative, got {version}")
        bounds = tuple(int(value) for value in boundaries)
        if len(bounds) < 2:
            raise ValueError("a partition map needs at least one range")
        space = 1 << key_bits
        if bounds[0] != 0 or bounds[-1] != space:
            raise ValueError(
                f"boundaries must run from 0 to {space}, got {bounds[0]}..{bounds[-1]}"
            )
        block = 1 << (key_bits - granularity_depth)
        for left, right in zip(bounds, bounds[1:]):
            if right <= left:
                raise ValueError(
                    f"boundaries must be strictly increasing, got {left} before {right}"
                )
        for value in bounds:
            if value % block:
                raise ValueError(
                    f"boundary {value} is not aligned to the "
                    f"depth-{granularity_depth} block size {block}"
                )
        self._boundaries = bounds
        self._key_bits = key_bits
        self._granularity_depth = granularity_depth
        self._version = version

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shard_count(self) -> int:
        """Number of contiguous ranges (= shards) the map defines."""
        return len(self._boundaries) - 1

    @property
    def key_bits(self) -> int:
        """Identifier key width the map partitions."""
        return self._key_bits

    @property
    def granularity_depth(self) -> int:
        """Prefix depth every boundary is aligned to."""
        return self._granularity_depth

    @property
    def version(self) -> int:
        """The map's position in the deployment's rebalance history."""
        return self._version

    @property
    def boundaries(self) -> tuple[int, ...]:
        """The ``shard_count + 1`` range boundaries, in key order."""
        return self._boundaries

    def ranges(self) -> tuple[tuple[int, int], ...]:
        """``(start, end)`` of every shard's key range, in shard order."""
        return tuple(zip(self._boundaries, self._boundaries[1:]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionMap):
            return NotImplemented
        return (
            self._boundaries == other._boundaries
            and self._key_bits == other._key_bits
            and self._granularity_depth == other._granularity_depth
            and self._version == other._version
        )

    def __hash__(self) -> int:
        return hash((self._boundaries, self._key_bits, self._granularity_depth, self._version))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(shards={self.shard_count}, "
            f"version={self._version}, boundaries={self._boundaries})"
        )

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #

    def shard_of_value(self, value: int) -> int:
        """The shard owning a raw key value in ``[0, 2**key_bits)``."""
        if not 0 <= value < self._boundaries[-1]:
            raise ValueError(
                f"key value {value} outside the {self._key_bits}-bit key space"
            )
        return bisect_right(self._boundaries, value) - 1

    def shard_of_key(self, key: IdentifierKey) -> int:
        """The shard owning an identifier (virtual) key."""
        if key.width != self._key_bits:
            raise ValueError(
                f"key width {key.width} does not match partition key_bits {self._key_bits}"
            )
        return self.shard_of_value(key.value)


class StaticPrefixPartition(PartitionMap):
    """Equal prefix ranges: the original top-``b``-bits rule, as a map.

    With ``2**b`` shards, shard ``k`` owns exactly the keys whose top ``b``
    bits equal ``k`` — :meth:`shard_of_key` is bit-identical to
    ``key.prefix(b)``, which the golden suites rely on.
    """

    def __init__(self, key_bits: int, shard_count: int, version: int = 0) -> None:
        check_power_of_two("shard_count", shard_count)
        shard_bits = shard_count.bit_length() - 1
        if shard_bits > key_bits:
            raise ValueError(
                f"{shard_count} shards need {shard_bits} key bits, "
                f"but keys are only {key_bits} bits wide"
            )
        size = 1 << (key_bits - shard_bits)
        super().__init__(
            boundaries=tuple(index * size for index in range(shard_count + 1)),
            key_bits=key_bits,
            granularity_depth=shard_bits,
            version=version,
        )
        self._shard_bits = shard_bits

    @property
    def shard_bits(self) -> int:
        """Number of leading key bits that select the shard."""
        return self._shard_bits

    def shard_of_key(self, key: IdentifierKey) -> int:
        if key.width != self.key_bits:
            raise ValueError(
                f"key width {key.width} does not match partition key_bits {self.key_bits}"
            )
        # Equal ranges of size 2**(key_bits - b): the bisect over the
        # boundary vector and the top-bits read agree everywhere; the prefix
        # read keeps the pre-partition-map hot path (and its exact
        # semantics) on static deployments.
        return key.prefix(self._shard_bits)


def load_proportional_cuts(loads, shard_count: int) -> list[int]:
    """Block-index cuts putting ~equal load in each of ``shard_count`` runs.

    Given per-block loads (one entry per prefix block, in key order), returns
    ``shard_count + 1`` strictly increasing cut positions from ``0`` to
    ``len(loads)``.  Cut ``k`` lands where the cumulative load crosses
    ``k/shard_count`` of the total, stepped back one block when that is
    strictly closer to the quantile; every shard keeps at least one block.
    A zero (or empty-signal) load vector degrades to equal-width cuts.
    """
    check_type("shard_count", shard_count, int)
    check_positive("shard_count", shard_count)
    blocks = len(loads)
    if blocks < shard_count:
        raise ValueError(
            f"cannot cut {blocks} blocks into {shard_count} shards; "
            "every shard needs at least one block"
        )
    for value in loads:
        if value < 0:
            raise ValueError(f"block loads must be non-negative, got {value}")
    total = float(sum(loads))
    if total <= 0.0:
        return [shard * blocks // shard_count for shard in range(shard_count)] + [blocks]
    prefix = [0.0]
    for value in loads:
        prefix.append(prefix[-1] + float(value))
    cuts = [0]
    for shard in range(1, shard_count):
        target = total * shard / shard_count
        low = cuts[-1] + 1
        high = blocks - (shard_count - shard)
        cut = bisect_left(prefix, target, low, high + 1)
        cut = min(max(cut, low), high)
        if cut > low and abs(target - prefix[cut - 1]) < abs(prefix[cut] - target):
            cut -= 1
        cuts.append(cut)
    cuts.append(blocks)
    return cuts


def step_block_cuts(current, target, limit: int) -> list[int]:
    """Move each interior cut at most ``limit`` blocks toward its target.

    Both inputs must be strictly increasing cut vectors over the same block
    count; the endpoints are fixed and the result is strictly increasing
    again (clamping three strictly increasing integer sequences preserves
    strict monotonicity), so the stepped vector is always a valid partition.
    """
    check_type("limit", limit, int)
    check_positive("limit", limit)
    if len(current) != len(target):
        raise ValueError(
            f"cut vectors differ in length: {len(current)} vs {len(target)}"
        )
    if current[0] != target[0] or current[-1] != target[-1]:
        raise ValueError("cut vectors must share their endpoints")
    stepped = [current[0]]
    for cut, goal in zip(current[1:-1], target[1:-1]):
        stepped.append(min(max(goal, cut - limit), cut + limit))
    stepped.append(current[-1])
    return stepped


class LoadProportionalPartition(PartitionMap):
    """Boundaries at the cumulative-load quantiles of an observed profile.

    Construct through :meth:`from_loads`; the instance itself is a plain
    (immutable) :class:`PartitionMap` whose boundaries happen to equalise
    the given per-block load vector.
    """

    @classmethod
    def from_loads(
        cls,
        loads,
        key_bits: int,
        shard_count: int,
        *,
        previous: PartitionMap | None = None,
        block_limit: int | None = None,
        version: int | None = None,
    ) -> "LoadProportionalPartition":
        """A map equalising ``loads``, optionally stepped from ``previous``.

        Args:
            loads: Observed load per prefix block, one entry per prefix at
                the granularity depth (``len(loads)`` must be a power of
                two, e.g. ``LoadMeasure.rate_by_prefix(initial_depth)``).
            key_bits: Identifier key width.
            shard_count: Number of shards to cut the space into.
            previous: The currently installed map; when given, each boundary
                moves at most ``block_limit`` blocks from its current
                position toward the load-proportional target — the bounded
                rebalance step.
            block_limit: Per-step boundary movement bound in blocks
                (default :data:`DEFAULT_BLOCK_LIMIT`).
            version: Explicit version; defaults to ``previous.version + 1``
                (or ``1`` for a from-scratch map).
        """
        blocks = len(loads)
        check_power_of_two("len(loads)", blocks)
        depth = blocks.bit_length() - 1
        check_type("key_bits", key_bits, int)
        if depth > key_bits:
            raise ValueError(
                f"{blocks} blocks imply granularity depth {depth}, "
                f"but keys are only {key_bits} bits wide"
            )
        target = load_proportional_cuts([float(value) for value in loads], shard_count)
        block = 1 << (key_bits - depth)
        if previous is not None:
            check_type("previous", previous, PartitionMap)
            if previous.key_bits != key_bits:
                raise ValueError(
                    f"previous map partitions {previous.key_bits}-bit keys, "
                    f"not {key_bits}-bit"
                )
            if previous.shard_count != shard_count:
                raise ValueError(
                    f"previous map has {previous.shard_count} shards, "
                    f"not {shard_count}"
                )
            if any(value % block for value in previous.boundaries):
                raise ValueError(
                    f"previous boundaries are not aligned to the "
                    f"depth-{depth} block size {block}"
                )
            current = [value // block for value in previous.boundaries]
            limit = DEFAULT_BLOCK_LIMIT if block_limit is None else block_limit
            cuts = step_block_cuts(current, target, limit)
            if version is None:
                version = previous.version + 1
        else:
            cuts = target
            if version is None:
                version = 1
        return cls(
            boundaries=tuple(cut * block for cut in cuts),
            key_bits=key_bits,
            granularity_depth=depth,
            version=version,
        )
