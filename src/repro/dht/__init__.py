"""Chord DHT substrate.

The paper's simulator extends the MIT Chord simulator; this package is the
equivalent substrate in Python.  It provides:

* :class:`~repro.dht.hashspace.HashSpace` — modular ring arithmetic over an
  M-bit hash space.
* :class:`~repro.dht.node.ChordNode` — a single server node with a finger
  table, predecessor pointer and successor list.
* :class:`~repro.dht.ring.ChordRing` — the overlay: node join/leave,
  deterministic finger (re)building, and iterative ``find_successor`` lookup
  with per-hop accounting (the paper's O(log S) bound).
* :class:`~repro.dht.router.RingRouter` — the routing tier above the
  ring(s): :class:`~repro.dht.router.SingleRingRouter` wraps one global ring
  (the paper's deployment), :class:`~repro.dht.router.ShardedRingRouter`
  prefix-partitions the key space across independent rings.
* :class:`~repro.dht.virtualservers.VirtualServerAllocator` — the
  "log S virtual servers per physical node" technique from Chord/CFS.
* :class:`~repro.dht.replication.ReplicationManager` — successor-list object
  replication (the fault-tolerance mechanism basic DHTs rely on).

CLASH layers on top of this package without modifying it — exactly the
paper's claim that CLASH "operates in the identifier key space, leaving the
base DHT protocol unchanged".
"""

from repro.dht.hashspace import HashSpace
from repro.dht.node import ChordNode
from repro.dht.replication import ReplicationManager
from repro.dht.ring import ChordRing, LookupResult
from repro.dht.router import (
    RingRouter,
    ShardedRingRouter,
    SingleRingRouter,
    build_router,
)
from repro.dht.virtualservers import PhysicalServer, VirtualServerAllocator

__all__ = [
    "HashSpace",
    "ChordNode",
    "ChordRing",
    "LookupResult",
    "RingRouter",
    "SingleRingRouter",
    "ShardedRingRouter",
    "build_router",
    "VirtualServerAllocator",
    "PhysicalServer",
    "ReplicationManager",
]
