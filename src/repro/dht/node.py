"""A single Chord node: identifier, finger table, successor list, predecessor."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dht.hashspace import HashSpace

__all__ = ["ChordNode"]


@dataclass
class ChordNode:
    """State held by one Chord overlay node.

    Attributes:
        node_id: The node's position on the hash ring (M-bit integer).
        name: Human-readable identifier, e.g. ``"s25"``; used by CLASH's
            ServerTable fields (ParentID, RightChildID) and in reporting.
        fingers: Finger table — entry ``i`` holds the node id of the successor
            of ``node_id + 2**i``; length equals the hash-space width once the
            ring has built it.
        successor_list: The ids of the next ``r`` nodes clockwise; used for
            robustness and for replication.
        predecessor: The id of the previous node on the ring, or ``None``
            before stabilisation.
    """

    node_id: int
    name: str
    fingers: list[int] = field(default_factory=list)
    successor_list: list[int] = field(default_factory=list)
    predecessor: int | None = None

    @property
    def successor(self) -> int:
        """The immediate successor (first entry of the successor list)."""
        if not self.successor_list:
            raise ValueError(f"node {self.name} has no successor yet")
        return self.successor_list[0]

    def closest_preceding_finger(self, space: HashSpace, target: int) -> int:
        """The finger that most closely precedes ``target`` (Chord routing step).

        Falls back to the node's own id when no finger strictly precedes the
        target, which terminates the routing loop at the current node.
        """
        space.check_member("target", target)
        for finger_id in reversed(self.fingers):
            if space.in_open_interval(finger_id, self.node_id, target):
                return finger_id
        return self.node_id

    def owns(self, space: HashSpace, key: int) -> bool:
        """True if this node owns ``key``, i.e. ``key`` is in ``(predecessor, node_id]``."""
        if self.predecessor is None:
            raise ValueError(f"node {self.name} has no predecessor yet")
        return space.in_half_open_interval(key, self.predecessor, self.node_id)

    def describe(self) -> dict[str, object]:
        """A plain-dict snapshot of the node, convenient for debugging and reports."""
        return {
            "name": self.name,
            "node_id": self.node_id,
            "predecessor": self.predecessor,
            "successor": self.successor_list[0] if self.successor_list else None,
            "finger_count": len(self.fingers),
        }
