"""The Chord overlay ring: membership, finger construction and lookups.

The ring supports the operations CLASH needs from the base DHT:

* ``add_node`` / ``remove_node`` — decentralised membership changes, after
  which finger tables and successor lists are repaired (the equivalent of
  Chord's stabilisation converging).
* ``find_successor(key)`` — the ``Map()`` primitive: returns the node that
  owns a hash key, along with the routing path and hop count so that the
  simulator can charge realistic O(log S) message costs.
* ``lookup_key(identifier_key)`` — convenience composition of the hash
  function ``f()`` and ``Map()``.

The implementation follows the Chord paper's iterative lookup: starting from
any node, repeatedly forward to the closest preceding finger until the key's
owner is reached.

Stabilisation is *incremental*: a single membership event repairs only the
state the event can reach — the changed id's ring neighbourhood and the
finger entries whose interval covers the transferred arc — instead of
rebuilding every node's routing tables from scratch.  The repair is exact
(bit-identical to a full rebuild; the randomized equivalence suite in
``tests/dht/test_incremental_stabilise.py`` holds it to that), so which path
runs is purely a performance decision: bulk changes and small rings fall
back to the full rebuild, steady churn on a large ring pays O(locally
affected state) per event.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field

from repro.dht.hashspace import HashSpace
from repro.dht.node import ChordNode
from repro.keys.hashing import Sha1HashFunction
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream
from repro.util.validation import check_positive, check_type

__all__ = ["ChordRing", "LookupResult"]

DEFAULT_SUCCESSOR_LIST_LENGTH = 4

LOOKUP_MEMO_LIMIT = 1 << 16
"""Entries kept in the lookup memo before the oldest-inserted entry is
evicted (FIFO; eviction is safe: a fresh walk returns the identical result a
cached entry would)."""


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a DHT lookup.

    Attributes:
        key: The hash key that was looked up.
        owner: Name of the node that owns the key.
        hops: Number of overlay forwarding hops taken (0 if the starting node
            already owned the key).
        path: Names of the nodes traversed, starting node first, owner last.
    """

    key: int
    owner: str
    hops: int
    path: tuple[str, ...] = field(default_factory=tuple)


class ChordRing:
    """A Chord overlay over a set of named server nodes.

    Args:
        space: The M-bit hash space nodes and keys live in.
        hash_function: Hash used both for placing object keys and for deriving
            node identifiers from node names (unless explicit ids are given).
        successor_list_length: Length of each node's successor list.
    """

    def __init__(
        self,
        space: HashSpace,
        hash_function: Sha1HashFunction | None = None,
        successor_list_length: int = DEFAULT_SUCCESSOR_LIST_LENGTH,
    ) -> None:
        check_type("space", space, HashSpace)
        check_type("successor_list_length", successor_list_length, int)
        check_positive("successor_list_length", successor_list_length)
        if hash_function is None:
            hash_function = Sha1HashFunction(hash_bits=space.bits)
        if hash_function.hash_bits != space.bits:
            raise ValueError(
                "hash function width "
                f"({hash_function.hash_bits}) does not match hash space ({space.bits})"
            )
        self._space = space
        self._hash = hash_function
        self._successor_list_length = successor_list_length
        self._nodes_by_name: dict[str, ChordNode] = {}
        self._nodes_by_id: dict[int, ChordNode] = {}
        self._sorted_ids: list[int] = []
        self._stale = False
        # Membership events recorded since the last stabilise(), in arrival
        # order.  Both kinds carry the node object: an added node may have
        # been popped from the membership maps again by a later remove in
        # the same batch, and a removed node may still be routing state for
        # earlier events in the batch.
        self._pending_events: list[tuple[str, int, ChordNode]] = []
        # The node objects behind _sorted_ids.  Identical to _nodes_by_id
        # between stabilisations, but while a batch of events is being
        # applied it tracks the intermediate ring exactly: a node pending
        # removal is still routable until its own event is reached.
        self._ring_nodes: dict[int, ChordNode] = {}
        # The incremental repair needs an exact pre-event routing state to
        # start from; until the first full rebuild there is none.
        self._needs_full_rebuild = True
        #: When True every stabilise() runs the from-scratch rebuild — the
        #: reference path the equivalence suites and benchmarks compare the
        #: incremental repair against.
        self.force_full_stabilise = False
        # Lookup memo: routing is a pure function of the ring membership, so
        # a repeated lookup returns the identical (owner, hops, path) result
        # without re-walking the fingers — the hop charges replayed to the
        # caller are exactly those of a fresh walk.  A membership event
        # invalidates only the entries whose recorded path touches repaired
        # nodes (any other entry replays a walk through unchanged state);
        # the memo is size-capped with FIFO eviction so streams of one-off
        # distinct keys cannot grow it without bound.
        self._lookup_memo: dict[tuple, LookupResult] = {}
        # Inverted index for selective invalidation: node name → memo keys
        # whose recorded path visits that node.
        self._memo_paths: dict[str, set[tuple]] = {}
        self._memo_limit = LOOKUP_MEMO_LIMIT
        self._memo_hits = 0
        self._memo_misses = 0
        self._memo_invalidations = 0
        self._memo_evictions = 0
        self._full_rebuilds = 0
        self._incremental_events = 0
        self._finger_recomputations = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def space(self) -> HashSpace:
        """The hash space the ring is built over."""
        return self._space

    @property
    def hash_function(self) -> Sha1HashFunction:
        """The identifier-key → hash-key function used for object placement."""
        return self._hash

    @property
    def successor_list_length(self) -> int:
        """Length of each node's successor list."""
        return self._successor_list_length

    def __len__(self) -> int:
        return len(self._nodes_by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes_by_name

    def node_names(self) -> list[str]:
        """All node names, in ring order."""
        self._ensure_fresh()
        return [self._nodes_by_id[node_id].name for node_id in self._sorted_ids]

    def node(self, name: str) -> ChordNode:
        """The node with the given name (raises :class:`KeyError` if absent)."""
        return self._nodes_by_name[name]

    def node_ids(self) -> list[int]:
        """All node identifiers in increasing ring order."""
        self._ensure_fresh()
        return list(self._sorted_ids)

    def memo_stats(self) -> dict[str, int]:
        """Lookup-memo telemetry: size plus lifetime hit/miss/churn counters.

        ``invalidations`` counts entries dropped because a membership event
        repaired a node on their recorded path; ``evictions`` counts entries
        displaced FIFO by the size cap.  Together with ``hits`` they make the
        selective-invalidation win measurable rather than asserted.
        """
        return {
            "entries": len(self._lookup_memo),
            "hits": self._memo_hits,
            "misses": self._memo_misses,
            "invalidations": self._memo_invalidations,
            "evictions": self._memo_evictions,
        }

    def stabilise_stats(self) -> dict[str, int]:
        """Stabilisation telemetry: rebuild counts and finger work performed.

        ``finger_recomputations`` counts individual finger-table entries
        written (a full rebuild writes ``len(ring) × bits`` of them, an
        incremental repair only the entries whose interval covers the
        changed arc) — the headline number behind the churn speedup.
        """
        return {
            "full_rebuilds": self._full_rebuilds,
            "incremental_events": self._incremental_events,
            "finger_recomputations": self._finger_recomputations,
        }

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def add_node(self, name: str, node_id: int | None = None) -> ChordNode:
        """Add a node to the ring.

        The node id defaults to the hash of the node name, matching Chord's
        practice of hashing a node's address.  Collisions (two names hashing to
        the same ring point) are rejected.
        """
        check_type("name", name, str)
        if not name:
            raise ValueError("node name must be non-empty")
        if name in self._nodes_by_name:
            raise ValueError(f"node {name!r} is already in the ring")
        if node_id is None:
            node_id = self._hash.hash_string(name)
        self._space.check_member("node_id", node_id)
        if node_id in self._nodes_by_id:
            raise ValueError(
                f"node id {node_id} collides with existing node "
                f"{self._nodes_by_id[node_id].name!r}"
            )
        node = ChordNode(node_id=node_id, name=name)
        self._nodes_by_name[name] = node
        self._nodes_by_id[node_id] = node
        self._pending_events.append(("add", node_id, node))
        self._stale = True
        return node

    def add_nodes(self, names: list[str]) -> list[ChordNode]:
        """Add several nodes then rebuild routing state once."""
        nodes = [self.add_node(name) for name in names]
        self.stabilise()
        return nodes

    def remove_node(self, name: str) -> None:
        """Remove a node from the ring (its keys fall to its successor)."""
        node = self._nodes_by_name.pop(name, None)
        if node is None:
            raise KeyError(f"node {name!r} is not in the ring")
        del self._nodes_by_id[node.node_id]
        self._pending_events.append(("remove", node.node_id, node))
        self._stale = True

    @classmethod
    def build(
        cls,
        node_count: int,
        space: HashSpace,
        hash_function: Sha1HashFunction | None = None,
        rng: RandomStream | None = None,
        name_prefix: str = "s",
    ) -> "ChordRing":
        """Construct a ring of ``node_count`` nodes named ``s0 .. s{n-1}``.

        Node identifiers are drawn uniformly at random (without collision) when
        an ``rng`` is supplied, otherwise derived from the node names by
        hashing.  Random placement matches the paper's simulations, where node
        ids are effectively uniform on the ring.
        """
        check_type("node_count", node_count, int)
        check_positive("node_count", node_count)
        ring = cls(space=space, hash_function=hash_function)
        if node_count > space.size:
            raise ValueError(
                f"cannot place {node_count} nodes in a hash space of size {space.size}"
            )
        used_ids: set[int] = set()
        for index in range(node_count):
            name = f"{name_prefix}{index}"
            if rng is None:
                ring.add_node(name)
            else:
                node_id = rng.randbits(space.bits)
                while node_id in used_ids:
                    node_id = rng.randbits(space.bits)
                used_ids.add(node_id)
                ring.add_node(name, node_id=node_id)
        ring.stabilise()
        return ring

    # ------------------------------------------------------------------ #
    # Stabilisation (finger / successor construction)
    # ------------------------------------------------------------------ #

    def stabilise(self) -> None:
        """Bring successor lists, predecessors and finger tables up to date.

        In a deployed Chord network this state converges gradually through
        the stabilisation protocol; the simulator repairs it deterministically
        and exactly.  Membership events recorded since the last call are
        applied one at a time through the incremental repair (O(locally
        affected state) each); bulk batches, small rings and the very first
        build run the from-scratch rebuild instead.  Both paths produce the
        identical routing state, so the choice is invisible to callers.
        """
        if not self._nodes_by_name:
            self._sorted_ids = []
            self._ring_nodes = {}
            self._pending_events.clear()
            self._invalidate_all_memo()
            self._needs_full_rebuild = True
            self._stale = False
            return
        events = self._pending_events
        self._pending_events = []
        if not events and not self._stale and not self._needs_full_rebuild:
            # Routing state is already exact; rebuilding would recompute the
            # identical tables (and needlessly drop the lookup memo).
            return
        if self._needs_rebuild(events):
            self._full_stabilise()
        else:
            for event in events:
                self._apply_membership_event(event)
        self._stale = False

    def _needs_rebuild(self, events: list[tuple]) -> bool:
        """Whether the pending batch should fall back to the full rebuild.

        The incremental repair assumes a large, previously exact ring: small
        rings (where successor lists wrap onto themselves) and bulk batches
        (where per-event repair would outcost one rebuild) take the full
        path.  Either path yields bit-identical state — this is purely a
        cost decision.
        """
        if self.force_full_stabilise or self._needs_full_rebuild or not events:
            return True
        floor = self._successor_list_length + 2
        count = len(self._sorted_ids)
        if count <= floor or len(events) * 4 >= count:
            return True
        for kind, _node_id, _extra in events:
            count += 1 if kind == "add" else -1
            if count <= floor:
                return True
        return False

    def _full_stabilise(self) -> None:
        """Rebuild every node's routing state from scratch (the reference path)."""
        self._invalidate_all_memo()
        self._sorted_ids = sorted(self._nodes_by_id)
        self._ring_nodes = dict(self._nodes_by_id)
        count = len(self._sorted_ids)
        for position, node_id in enumerate(self._sorted_ids):
            node = self._nodes_by_id[node_id]
            node.predecessor = self._sorted_ids[(position - 1) % count]
            successors = [
                self._sorted_ids[(position + offset) % count]
                for offset in range(1, min(self._successor_list_length, count) + 1)
            ]
            node.successor_list = successors if count > 1 else [node_id]
            node.fingers = [
                self._successor_id(self._space.finger_start(node_id, finger_index))
                for finger_index in range(self._space.bits)
            ]
        self._full_rebuilds += 1
        self._finger_recomputations += count * self._space.bits
        self._needs_full_rebuild = False

    def _apply_membership_event(self, event: tuple[str, int, ChordNode]) -> None:
        """Apply one recorded membership event through the incremental repair."""
        kind, node_id, node = event
        if kind == "add":
            self._apply_add(node_id, node)
        else:
            self._apply_remove(node_id, node)
        self._incremental_events += 1

    def _successor_list_at(self, position: int) -> list[int]:
        """The successor list of the node at ``position`` in ring order."""
        ids = self._sorted_ids
        count = len(ids)
        return [
            ids[(position + offset) % count]
            for offset in range(1, min(self._successor_list_length, count) + 1)
        ]

    def _ids_in_arc(self, low: int, high: int) -> list[int]:
        """Node ids in the clockwise half-open arc ``(low, high]``."""
        ids = self._sorted_ids
        start = bisect_right(ids, low)
        end = bisect_right(ids, high)
        if low < high:
            return ids[start:end]
        return ids[start:] + ids[:end]

    def _apply_add(self, node_id: int, node: ChordNode) -> None:
        """Repair routing state around a single insertion at ``node_id``.

        Exactly three kinds of state can change when ``x`` joins:

        * ``x``'s own tables (computed from scratch against the new order);
        * the ring neighbourhood — ``successor(x)``'s predecessor and the
          successor lists of the ≤ ``successor_list_length`` nodes preceding
          ``x`` (the only lists ``x`` enters);
        * finger entries whose start falls in the transferred arc
          ``(predecessor(x), x]`` — those resolved to ``successor(x)``
          before and resolve to ``x`` now; every other point's successor is
          unchanged, so every other finger entry is already exact.
        """
        ids = self._sorted_ids
        insort(ids, node_id)
        self._ring_nodes[node_id] = node
        position = bisect_right(ids, node_id) - 1
        count = len(ids)
        space = self._space
        bits = space.bits
        size = space.size
        predecessor_id = ids[(position - 1) % count]
        successor_id = ids[(position + 1) % count]
        changed: set[str] = set()
        # The joiner's own state, from scratch against the updated order.
        node.predecessor = predecessor_id
        node.successor_list = self._successor_list_at(position)
        node.fingers = [
            self._successor_id(space.finger_start(node_id, finger_index))
            for finger_index in range(bits)
        ]
        self._finger_recomputations += bits
        # Ring neighbourhood.
        successor = self._ring_nodes[successor_id]
        successor.predecessor = node_id
        changed.add(successor.name)
        for offset in range(1, min(self._successor_list_length, count - 1) + 1):
            neighbour_position = (position - offset) % count
            neighbour = self._ring_nodes[ids[neighbour_position]]
            neighbour.successor_list = self._successor_list_at(neighbour_position)
            changed.add(neighbour.name)
        # Finger entries covering the transferred arc (predecessor(x), x].
        for finger_index in range(bits):
            step = 1 << finger_index
            low = (predecessor_id - step) % size
            high = (node_id - step) % size
            for owner_id in self._ids_in_arc(low, high):
                if owner_id == node_id:
                    continue  # the joiner's fingers are already exact
                owner = self._ring_nodes[owner_id]
                owner.fingers[finger_index] = node_id
                self._finger_recomputations += 1
                changed.add(owner.name)
        self._invalidate_memo_through(changed)

    def _apply_remove(self, node_id: int, node: ChordNode) -> None:
        """Repair routing state around a single departure at ``node_id``.

        The mirror image of :meth:`_apply_add`: ``successor(x)`` inherits
        ``x``'s arc (its predecessor moves back to ``predecessor(x)``), the
        ≤ ``successor_list_length`` nodes preceding ``x`` drop it from their
        successor lists, and every finger entry whose start falls in
        ``(predecessor(x), x]`` — exactly the entries that pointed at ``x``
        — is retargeted to ``successor(x)``.
        """
        ids = self._sorted_ids
        position = bisect_right(ids, node_id) - 1
        count_before = len(ids)
        predecessor_id = ids[(position - 1) % count_before]
        successor_id = ids[(position + 1) % count_before]
        del ids[position]
        del self._ring_nodes[node_id]
        count = len(ids)
        space = self._space
        size = space.size
        changed: set[str] = {node.name}
        successor = self._ring_nodes[successor_id]
        successor.predecessor = predecessor_id
        changed.add(successor.name)
        successor_position = position % count
        for offset in range(1, min(self._successor_list_length, count - 1) + 1):
            neighbour_position = (successor_position - offset) % count
            neighbour = self._ring_nodes[ids[neighbour_position]]
            neighbour.successor_list = self._successor_list_at(neighbour_position)
            changed.add(neighbour.name)
        for finger_index in range(space.bits):
            step = 1 << finger_index
            low = (predecessor_id - step) % size
            high = (node_id - step) % size
            for owner_id in self._ids_in_arc(low, high):
                owner = self._ring_nodes[owner_id]
                owner.fingers[finger_index] = successor_id
                self._finger_recomputations += 1
                changed.add(owner.name)
        self._invalidate_memo_through(changed)

    def _ensure_fresh(self) -> None:
        if self._stale:
            self.stabilise()
        if not self._nodes_by_name:
            raise ValueError("the ring has no nodes")

    def _successor_id(self, key: int) -> int:
        """The id of the node owning ``key`` (first node clockwise from ``key``)."""
        ids = self._sorted_ids
        low, high = 0, len(ids)
        while low < high:
            mid = (low + high) // 2
            if ids[mid] < key:
                low = mid + 1
            else:
                high = mid
        if low == len(ids):
            return ids[0]
        return ids[low]

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    def owner_of(self, key: int) -> str:
        """Name of the node owning a hash key (no routing simulation)."""
        self._ensure_fresh()
        self._space.check_member("key", key)
        return self._nodes_by_id[self._successor_id(key)].name

    def find_successor(self, key: int, start: str | None = None) -> LookupResult:
        """Route a lookup for ``key`` through the overlay and return the owner.

        Args:
            key: Hash key to locate.
            start: Name of the node initiating the lookup; defaults to the
                first node in ring order.  Any node may initiate a lookup —
                this is the "present the object to any server" property of
                DHTs.

        Returns:
            A :class:`LookupResult` with the owner and the forwarding path.
        """
        self._ensure_fresh()
        # Validation must precede the memo probe: a cache hit and a miss have
        # to agree on whether the arguments are acceptable at all.
        self._space.check_member("key", key)
        if start is not None and start not in self._nodes_by_name:
            raise KeyError(f"start node {start!r} is not in the ring")
        memo_key = (key, start)
        cached = self._lookup_memo.get(memo_key)
        if cached is not None:
            self._memo_hits += 1
            return cached
        self._memo_misses += 1
        if start is None:
            start = self._nodes_by_id[self._sorted_ids[0]].name
        current = self._nodes_by_name[start]
        path = [current.name]
        hops = 0
        max_hops = 2 * self._space.bits + len(self._sorted_ids)
        while not current.owns(self._space, key):
            next_id = current.closest_preceding_finger(self._space, key)
            if next_id == current.node_id:
                next_id = current.successor
            next_node = self._nodes_by_id[next_id]
            current = next_node
            path.append(current.name)
            hops += 1
            if hops > max_hops:
                raise RuntimeError(
                    f"lookup for key {key} did not converge after {hops} hops; "
                    "the ring routing state is inconsistent"
                )
        result = LookupResult(key=key, owner=current.name, hops=hops, path=tuple(path))
        self._memoize(memo_key, result)
        return result

    def lookup_key(self, key: IdentifierKey, start: str | None = None) -> LookupResult:
        """Hash an identifier key with ``f()`` and route the resulting hash key.

        Memoized per identifier key: the hash and the routing walk both
        depend only on the key and the ring membership.
        """
        self._ensure_fresh()
        # As in find_successor: reject a bad start before the memo probe so a
        # cache hit cannot silently succeed where a miss would raise.
        if start is not None and start not in self._nodes_by_name:
            raise KeyError(f"start node {start!r} is not in the ring")
        memo_key = (key.value, key.width, start)
        cached = self._lookup_memo.get(memo_key)
        if cached is not None:
            self._memo_hits += 1
            return cached
        self._memo_misses += 1
        hash_key = self._hash.hash_key(key)
        result = self.find_successor(hash_key, start=start)
        self._memoize(memo_key, result)
        return result

    # ------------------------------------------------------------------ #
    # Lookup-memo maintenance
    # ------------------------------------------------------------------ #

    def _memoize(self, memo_key: tuple, result: LookupResult) -> None:
        memo = self._lookup_memo
        while len(memo) >= self._memo_limit:
            # FIFO: evict the oldest-inserted entry (dicts preserve insertion
            # order).  Recently memoized — hot — entries survive an overflow.
            oldest_key = next(iter(memo))
            self._drop_memo_entry(oldest_key, memo.pop(oldest_key))
            self._memo_evictions += 1
        memo[memo_key] = result
        for name in result.path:
            self._memo_paths.setdefault(name, set()).add(memo_key)

    def _drop_memo_entry(self, memo_key: tuple, result: LookupResult) -> None:
        """Remove one (already popped) memo entry from the path index."""
        for name in result.path:
            keys = self._memo_paths.get(name)
            if keys is not None:
                keys.discard(memo_key)
                if not keys:
                    del self._memo_paths[name]

    def _invalidate_memo_through(self, names: set[str]) -> None:
        """Drop every memo entry whose recorded path visits a repaired node.

        This is exactly the set of entries a membership event can affect: a
        lookup replays node-local routing decisions, so an entry whose path
        touches only unrepaired nodes walks through bit-identical state and
        would reproduce its cached result.
        """
        memo = self._lookup_memo
        for name in names:
            keys = self._memo_paths.pop(name, None)
            if not keys:
                continue
            for memo_key in keys:
                result = memo.pop(memo_key, None)
                if result is None:
                    continue
                self._memo_invalidations += 1
                for other in result.path:
                    if other == name:
                        continue
                    other_keys = self._memo_paths.get(other)
                    if other_keys is not None:
                        other_keys.discard(memo_key)
                        if not other_keys:
                            del self._memo_paths[other]

    def _invalidate_all_memo(self) -> None:
        self._memo_invalidations += len(self._lookup_memo)
        self._lookup_memo.clear()
        self._memo_paths.clear()

    def expected_hops(self) -> float:
        """The textbook O(log S) expectation: ``0.5 * log2(S)`` hops per lookup."""
        self._ensure_fresh()
        count = len(self._sorted_ids)
        if count <= 1:
            return 0.0
        return 0.5 * (count.bit_length() - 1 + (count & (count - 1) != 0))
