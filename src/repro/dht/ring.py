"""The Chord overlay ring: membership, finger construction and lookups.

The ring supports the operations CLASH needs from the base DHT:

* ``add_node`` / ``remove_node`` — decentralised membership changes, after
  which finger tables and successor lists are rebuilt (the equivalent of
  Chord's stabilisation converging).
* ``find_successor(key)`` — the ``Map()`` primitive: returns the node that
  owns a hash key, along with the routing path and hop count so that the
  simulator can charge realistic O(log S) message costs.
* ``lookup_key(identifier_key)`` — convenience composition of the hash
  function ``f()`` and ``Map()``.

The implementation follows the Chord paper's iterative lookup: starting from
any node, repeatedly forward to the closest preceding finger until the key's
owner is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dht.hashspace import HashSpace
from repro.dht.node import ChordNode
from repro.keys.hashing import Sha1HashFunction
from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream
from repro.util.validation import check_positive, check_type

__all__ = ["ChordRing", "LookupResult"]

DEFAULT_SUCCESSOR_LIST_LENGTH = 4

LOOKUP_MEMO_LIMIT = 1 << 16
"""Entries kept in the lookup memo before it is reset (eviction is safe:
a fresh walk returns the identical result a cached entry would)."""


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a DHT lookup.

    Attributes:
        key: The hash key that was looked up.
        owner: Name of the node that owns the key.
        hops: Number of overlay forwarding hops taken (0 if the starting node
            already owned the key).
        path: Names of the nodes traversed, starting node first, owner last.
    """

    key: int
    owner: str
    hops: int
    path: tuple[str, ...] = field(default_factory=tuple)


class ChordRing:
    """A Chord overlay over a set of named server nodes.

    Args:
        space: The M-bit hash space nodes and keys live in.
        hash_function: Hash used both for placing object keys and for deriving
            node identifiers from node names (unless explicit ids are given).
        successor_list_length: Length of each node's successor list.
    """

    def __init__(
        self,
        space: HashSpace,
        hash_function: Sha1HashFunction | None = None,
        successor_list_length: int = DEFAULT_SUCCESSOR_LIST_LENGTH,
    ) -> None:
        check_type("space", space, HashSpace)
        check_type("successor_list_length", successor_list_length, int)
        check_positive("successor_list_length", successor_list_length)
        if hash_function is None:
            hash_function = Sha1HashFunction(hash_bits=space.bits)
        if hash_function.hash_bits != space.bits:
            raise ValueError(
                "hash function width "
                f"({hash_function.hash_bits}) does not match hash space ({space.bits})"
            )
        self._space = space
        self._hash = hash_function
        self._successor_list_length = successor_list_length
        self._nodes_by_name: dict[str, ChordNode] = {}
        self._nodes_by_id: dict[int, ChordNode] = {}
        self._sorted_ids: list[int] = []
        self._stale = False
        # Lookup memo: routing is a pure function of the ring membership, so
        # a repeated lookup returns the identical (owner, hops, path) result
        # without re-walking the fingers — the hop charges replayed to the
        # caller are exactly those of a fresh walk.  Any membership change
        # clears it, and it is size-capped so streams of one-off distinct
        # keys cannot grow it without bound.
        self._lookup_memo: dict[tuple, LookupResult] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def space(self) -> HashSpace:
        """The hash space the ring is built over."""
        return self._space

    @property
    def hash_function(self) -> Sha1HashFunction:
        """The identifier-key → hash-key function used for object placement."""
        return self._hash

    def __len__(self) -> int:
        return len(self._nodes_by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes_by_name

    def node_names(self) -> list[str]:
        """All node names, in ring order."""
        self._ensure_fresh()
        return [self._nodes_by_id[node_id].name for node_id in self._sorted_ids]

    def node(self, name: str) -> ChordNode:
        """The node with the given name (raises :class:`KeyError` if absent)."""
        return self._nodes_by_name[name]

    def node_ids(self) -> list[int]:
        """All node identifiers in increasing ring order."""
        self._ensure_fresh()
        return list(self._sorted_ids)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def add_node(self, name: str, node_id: int | None = None) -> ChordNode:
        """Add a node to the ring.

        The node id defaults to the hash of the node name, matching Chord's
        practice of hashing a node's address.  Collisions (two names hashing to
        the same ring point) are rejected.
        """
        check_type("name", name, str)
        if not name:
            raise ValueError("node name must be non-empty")
        if name in self._nodes_by_name:
            raise ValueError(f"node {name!r} is already in the ring")
        if node_id is None:
            node_id = self._hash.hash_string(name)
        self._space.check_member("node_id", node_id)
        if node_id in self._nodes_by_id:
            raise ValueError(
                f"node id {node_id} collides with existing node "
                f"{self._nodes_by_id[node_id].name!r}"
            )
        node = ChordNode(node_id=node_id, name=name)
        self._nodes_by_name[name] = node
        self._nodes_by_id[node_id] = node
        self._stale = True
        self._lookup_memo.clear()
        return node

    def add_nodes(self, names: list[str]) -> list[ChordNode]:
        """Add several nodes then rebuild routing state once."""
        nodes = [self.add_node(name) for name in names]
        self.stabilise()
        return nodes

    def remove_node(self, name: str) -> None:
        """Remove a node from the ring (its keys fall to its successor)."""
        node = self._nodes_by_name.pop(name, None)
        if node is None:
            raise KeyError(f"node {name!r} is not in the ring")
        del self._nodes_by_id[node.node_id]
        self._stale = True
        self._lookup_memo.clear()

    @classmethod
    def build(
        cls,
        node_count: int,
        space: HashSpace,
        hash_function: Sha1HashFunction | None = None,
        rng: RandomStream | None = None,
        name_prefix: str = "s",
    ) -> "ChordRing":
        """Construct a ring of ``node_count`` nodes named ``s0 .. s{n-1}``.

        Node identifiers are drawn uniformly at random (without collision) when
        an ``rng`` is supplied, otherwise derived from the node names by
        hashing.  Random placement matches the paper's simulations, where node
        ids are effectively uniform on the ring.
        """
        check_type("node_count", node_count, int)
        check_positive("node_count", node_count)
        ring = cls(space=space, hash_function=hash_function)
        if node_count > space.size:
            raise ValueError(
                f"cannot place {node_count} nodes in a hash space of size {space.size}"
            )
        used_ids: set[int] = set()
        for index in range(node_count):
            name = f"{name_prefix}{index}"
            if rng is None:
                ring.add_node(name)
            else:
                node_id = rng.randbits(space.bits)
                while node_id in used_ids:
                    node_id = rng.randbits(space.bits)
                used_ids.add(node_id)
                ring.add_node(name, node_id=node_id)
        ring.stabilise()
        return ring

    # ------------------------------------------------------------------ #
    # Stabilisation (finger / successor construction)
    # ------------------------------------------------------------------ #

    def stabilise(self) -> None:
        """Rebuild successor lists, predecessors and finger tables.

        In a deployed Chord network this state converges gradually through the
        stabilisation protocol; the simulator rebuilds it deterministically,
        which yields the same steady-state routing structure.
        """
        self._lookup_memo.clear()
        if not self._nodes_by_name:
            self._sorted_ids = []
            self._stale = False
            return
        self._sorted_ids = sorted(self._nodes_by_id)
        count = len(self._sorted_ids)
        for position, node_id in enumerate(self._sorted_ids):
            node = self._nodes_by_id[node_id]
            node.predecessor = self._sorted_ids[(position - 1) % count]
            successors = [
                self._sorted_ids[(position + offset) % count]
                for offset in range(1, min(self._successor_list_length, count) + 1)
            ]
            node.successor_list = successors if count > 1 else [node_id]
            node.fingers = [
                self._successor_id(self._space.finger_start(node_id, finger_index))
                for finger_index in range(self._space.bits)
            ]
        self._stale = False

    def _ensure_fresh(self) -> None:
        if self._stale:
            self.stabilise()
        if not self._nodes_by_name:
            raise ValueError("the ring has no nodes")

    def _successor_id(self, key: int) -> int:
        """The id of the node owning ``key`` (first node clockwise from ``key``)."""
        ids = self._sorted_ids
        low, high = 0, len(ids)
        while low < high:
            mid = (low + high) // 2
            if ids[mid] < key:
                low = mid + 1
            else:
                high = mid
        if low == len(ids):
            return ids[0]
        return ids[low]

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    def owner_of(self, key: int) -> str:
        """Name of the node owning a hash key (no routing simulation)."""
        self._ensure_fresh()
        self._space.check_member("key", key)
        return self._nodes_by_id[self._successor_id(key)].name

    def find_successor(self, key: int, start: str | None = None) -> LookupResult:
        """Route a lookup for ``key`` through the overlay and return the owner.

        Args:
            key: Hash key to locate.
            start: Name of the node initiating the lookup; defaults to the
                first node in ring order.  Any node may initiate a lookup —
                this is the "present the object to any server" property of
                DHTs.

        Returns:
            A :class:`LookupResult` with the owner and the forwarding path.
        """
        self._ensure_fresh()
        # Validation must precede the memo probe: a cache hit and a miss have
        # to agree on whether the arguments are acceptable at all.
        self._space.check_member("key", key)
        if start is not None and start not in self._nodes_by_name:
            raise KeyError(f"start node {start!r} is not in the ring")
        memo_key = (key, start)
        cached = self._lookup_memo.get(memo_key)
        if cached is not None:
            return cached
        if start is None:
            start = self._nodes_by_id[self._sorted_ids[0]].name
        current = self._nodes_by_name[start]
        path = [current.name]
        hops = 0
        max_hops = 2 * self._space.bits + len(self._sorted_ids)
        while not current.owns(self._space, key):
            next_id = current.closest_preceding_finger(self._space, key)
            if next_id == current.node_id:
                next_id = current.successor
            next_node = self._nodes_by_id[next_id]
            current = next_node
            path.append(current.name)
            hops += 1
            if hops > max_hops:
                raise RuntimeError(
                    f"lookup for key {key} did not converge after {hops} hops; "
                    "the ring routing state is inconsistent"
                )
        result = LookupResult(key=key, owner=current.name, hops=hops, path=tuple(path))
        self._memoize(memo_key, result)
        return result

    def lookup_key(self, key: IdentifierKey, start: str | None = None) -> LookupResult:
        """Hash an identifier key with ``f()`` and route the resulting hash key.

        Memoized per identifier key: the hash and the routing walk both
        depend only on the key and the ring membership.
        """
        self._ensure_fresh()
        # As in find_successor: reject a bad start before the memo probe so a
        # cache hit cannot silently succeed where a miss would raise.
        if start is not None and start not in self._nodes_by_name:
            raise KeyError(f"start node {start!r} is not in the ring")
        memo_key = (key.value, key.width, start)
        cached = self._lookup_memo.get(memo_key)
        if cached is not None:
            return cached
        hash_key = self._hash.hash_key(key)
        result = self.find_successor(hash_key, start=start)
        self._memoize(memo_key, result)
        return result

    def _memoize(self, memo_key: tuple, result: LookupResult) -> None:
        if len(self._lookup_memo) >= LOOKUP_MEMO_LIMIT:
            self._lookup_memo.clear()
        self._lookup_memo[memo_key] = result

    def expected_hops(self) -> float:
        """The textbook O(log S) expectation: ``0.5 * log2(S)`` hops per lookup."""
        self._ensure_fresh()
        count = len(self._sorted_ids)
        if count <= 1:
            return 0.0
        return 0.5 * (count.bit_length() - 1 + (count & (count - 1) != 0))
