"""Virtual servers: multiple ring positions per physical server.

Chord [17] proposes running ``log S`` virtual servers per physical node to
smooth the hash-space partition; CFS [7] extends this by allocating virtual
servers in proportion to a node's capacity.  Both variants are provided here —
they are the standard load-balancing techniques CLASH is compared against in
the related-work discussion, and the virtual-server-migration baseline
(Rao et al. [13]) builds on this allocator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dht.hashspace import HashSpace
from repro.dht.ring import ChordRing
from repro.keys.hashing import Sha1HashFunction
from repro.util.rng import RandomStream
from repro.util.validation import check_positive, check_type

__all__ = ["PhysicalServer", "VirtualServerAllocator"]


@dataclass
class PhysicalServer:
    """A physical machine hosting one or more virtual ring nodes.

    Attributes:
        name: The physical server's name.
        capacity: Relative processing capacity (1.0 = baseline server).
        virtual_nodes: Names of the virtual ring nodes hosted on this machine.
    """

    name: str
    capacity: float = 1.0
    virtual_nodes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_type("name", self.name, str)
        if not self.name:
            raise ValueError("physical server name must be non-empty")
        check_positive("capacity", self.capacity)


class VirtualServerAllocator:
    """Build a Chord ring with virtual servers mapped onto physical machines.

    Args:
        space: Hash space of the underlying ring.
        virtuals_per_unit_capacity: Number of virtual nodes allocated per unit
            of capacity.  ``None`` selects the Chord default of
            ``ceil(log2(#physical servers))`` per unit capacity.
    """

    def __init__(
        self,
        space: HashSpace,
        virtuals_per_unit_capacity: int | None = None,
    ) -> None:
        check_type("space", space, HashSpace)
        if virtuals_per_unit_capacity is not None:
            check_type("virtuals_per_unit_capacity", virtuals_per_unit_capacity, int)
            check_positive("virtuals_per_unit_capacity", virtuals_per_unit_capacity)
        self._space = space
        self._virtuals_per_unit = virtuals_per_unit_capacity

    def _virtuals_for(self, server: PhysicalServer, server_count: int) -> int:
        per_unit = self._virtuals_per_unit
        if per_unit is None:
            per_unit = max(1, math.ceil(math.log2(max(2, server_count))))
        return max(1, round(per_unit * server.capacity))

    def build_ring(
        self,
        servers: list[PhysicalServer],
        hash_function: Sha1HashFunction | None = None,
        rng: RandomStream | None = None,
    ) -> ChordRing:
        """Create the ring, populate it with virtual nodes and stabilise it.

        Each physical server receives a number of virtual nodes proportional
        to its capacity; virtual node names are ``"<server>#<index>"`` so the
        owning physical server can always be recovered with
        :meth:`physical_owner`.
        """
        if not servers:
            raise ValueError("at least one physical server is required")
        names = {server.name for server in servers}
        if len(names) != len(servers):
            raise ValueError("physical server names must be unique")
        ring = ChordRing(space=self._space, hash_function=hash_function)
        used_ids: set[int] = set()
        for server in servers:
            server.virtual_nodes.clear()
            for index in range(self._virtuals_for(server, len(servers))):
                virtual_name = f"{server.name}#{index}"
                if rng is None:
                    ring.add_node(virtual_name)
                else:
                    node_id = rng.randbits(self._space.bits)
                    while node_id in used_ids:
                        node_id = rng.randbits(self._space.bits)
                    used_ids.add(node_id)
                    ring.add_node(virtual_name, node_id=node_id)
                server.virtual_nodes.append(virtual_name)
        ring.stabilise()
        return ring

    @staticmethod
    def physical_owner(virtual_name: str) -> str:
        """Recover the physical server name from a virtual node name."""
        owner, separator, _ = virtual_name.partition("#")
        if not separator:
            raise ValueError(
                f"{virtual_name!r} is not a virtual node name (expected '<server>#<index>')"
            )
        return owner

    @staticmethod
    def fraction_of_space(ring: ChordRing, servers: list[PhysicalServer]) -> dict[str, float]:
        """Fraction of the hash space owned by each physical server.

        Used in tests to verify that virtual servers even out the partition
        and that capacity-proportional allocation skews ownership towards the
        larger machines.
        """
        space = ring.space
        ownership: dict[str, float] = {server.name: 0.0 for server in servers}
        ids = ring.node_ids()
        for position, node_id in enumerate(ids):
            predecessor = ids[(position - 1) % len(ids)]
            arc = space.distance(predecessor, node_id)
            if len(ids) == 1:
                arc = space.size
            virtual_name = ring.node_names()[position]
            owner = VirtualServerAllocator.physical_owner(virtual_name)
            ownership[owner] += arc / space.size
        return ownership
