"""Experiment — churn resilience: Poisson membership churn vs. CLASH behaviour.

The paper's evaluation assumes a stable server population and leaves
membership to the underlying DHT.  This experiment quantifies what the
protocol layer pays when that assumption is dropped: a sweep over symmetric
Poisson join/failure rates (``ScenarioPhase.join_rate`` / ``fail_rate``)
reports, per rate, the peak server load, the lookup-depth statistics and the
volume of membership traffic (joins, failures, group handoffs, in-flight
message drops).

The interesting comparisons:

* **peak load vs. churn rate** — handoffs and failure recovery briefly
  concentrate groups on the "wrong" servers until the next load check; the
  peak-load column shows how much headroom that costs.
* **lookup depth vs. churn rate** — churn reassigns groups without changing
  the splitting tree, so the depth statistics should stay flat; drift here
  would indicate the protocol is splitting to compensate for churn.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentScale
from repro.sim.simulator import FlowSimulator, SimulationResult
from repro.util.stats import mean
from repro.util.validation import check_type

__all__ = ["ChurnPoint", "ChurnSweepResult", "run_churn_sweep", "render_churn_sweep"]

DEFAULT_CHURN_RATES = ((0.0, 0.0), (0.002, 0.002), (0.005, 0.005), (0.01, 0.01))
"""The (join_rate, fail_rate) pairs swept by default, in events/sec."""


@dataclass
class ChurnPoint:
    """One point of the churn sweep.

    Attributes:
        join_rate: Poisson server-join rate (events/sec) for every phase.
        fail_rate: Poisson server-failure rate (events/sec) for every phase.
        result: The full simulation result at this churn level.
    """

    join_rate: float
    fail_rate: float
    result: SimulationResult

    @property
    def peak_load_percent(self) -> float:
        """Highest per-server load seen at any point in the run."""
        return self.result.metrics.overall_peak_load()

    @property
    def mean_depth(self) -> float:
        """Mean (over periods) of the per-period average lookup depth."""
        return mean([s.avg_depth for s in self.result.metrics.samples])

    @property
    def max_depth(self) -> float:
        """Deepest key group observed at any point in the run."""
        return max(s.max_depth for s in self.result.metrics.samples)

    @property
    def server_joins(self) -> int:
        """Servers that joined over the whole run."""
        return sum(s.server_joins for s in self.result.metrics.samples)

    @property
    def server_failures(self) -> int:
        """Servers that failed over the whole run."""
        return sum(s.server_failures for s in self.result.metrics.samples)

    @property
    def groups_reassigned(self) -> int:
        """Key groups handed to a new owner by membership events."""
        return sum(s.groups_reassigned for s in self.result.metrics.samples)

    @property
    def dropped_messages(self) -> int:
        """In-flight one-way envelopes lost to failures over the whole run."""
        return sum(s.dropped_messages for s in self.result.metrics.samples)


@dataclass
class ChurnSweepResult:
    """All points of a churn sweep.

    Attributes:
        scale_name: The experiment scale label.
        transport: The transport the sweep ran on.
        points: One entry per (join_rate, fail_rate) pair, in sweep order.
    """

    scale_name: str
    transport: str
    points: list[ChurnPoint] = field(default_factory=list)

    def baseline(self) -> ChurnPoint:
        """The churn-free reference point (raises if the sweep skipped it)."""
        for point in self.points:
            if point.join_rate == 0.0 and point.fail_rate == 0.0:
                return point
        raise KeyError("the sweep did not include a churn-free (0, 0) point")


def run_churn_sweep(
    scale: ExperimentScale | None = None,
    rates: tuple[tuple[float, float], ...] = DEFAULT_CHURN_RATES,
) -> ChurnSweepResult:
    """Run the churn sweep at the given scale.

    Args:
        scale: Experiment scale (defaults to ``ExperimentScale.scaled(10)``).
            Its ``transport`` selects how messages move; its own
            ``join_rate``/``fail_rate`` are ignored in favour of the sweep's.
        rates: The (join_rate, fail_rate) pairs to evaluate.
    """
    if scale is None:
        scale = ExperimentScale.scaled(10)
    check_type("scale", scale, ExperimentScale)
    sweep = ChurnSweepResult(scale_name=scale.name, transport=scale.transport)
    for join_rate, fail_rate in rates:
        # Reuse the scale's own scale-to-scenario mapping so the sweep runs
        # exactly the scenario every other experiment would at this scale.
        point_scale = dataclasses.replace(
            scale, join_rate=join_rate, fail_rate=fail_rate
        )
        result = FlowSimulator(
            config=point_scale.config(),
            params=point_scale.params(),
            scenario=point_scale.scenario(),
        ).run()
        sweep.points.append(
            ChurnPoint(join_rate=join_rate, fail_rate=fail_rate, result=result)
        )
    return sweep


def render_churn_sweep(result: ChurnSweepResult) -> str:
    """The churn sweep as a text table (peak load and depth vs. churn rate)."""
    lines = [
        "Churn sweep — Poisson membership churn vs. CLASH load and depth "
        f"({result.scale_name} scale, {result.transport} transport)",
        "",
    ]
    headers = [
        "join/sec",
        "fail/sec",
        "joins",
        "failures",
        "groups moved",
        "drops",
        "peak load %",
        "mean depth",
        "max depth",
        "splits",
        "merges",
    ]
    rows = []
    for point in result.points:
        rows.append(
            [
                # Pre-format the rates: the table's default 2-decimal float
                # rendering would collapse 0.002 and 0.005 to "0.00".
                f"{point.join_rate:g}",
                f"{point.fail_rate:g}",
                point.server_joins,
                point.server_failures,
                point.groups_reassigned,
                point.dropped_messages,
                point.peak_load_percent,
                point.mean_depth,
                point.max_depth,
                point.result.total_splits,
                point.result.total_merges,
            ]
        )
    lines.append(format_table(headers, rows))
    return "\n".join(lines)
