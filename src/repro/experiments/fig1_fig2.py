"""Reproduction of the paper's structural figures (Figure 1 and Figure 2).

Figure 1 shows the logical binary tree obtained by repeatedly splitting the
initial key group ``011*``; Figure 2 shows a server's work table after a
couple of splits.  Neither figure depends on a workload — they illustrate the
protocol mechanics — so this driver replays the exact splitting sequence the
paper describes on a live :class:`~repro.core.protocol.ClashSystem` and
renders the resulting structures with :mod:`repro.core.tree_view`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ClashConfig
from repro.core.protocol import ClashSystem
from repro.core.tree_view import build_split_tree, render_split_tree, render_server_table
from repro.keys.keygroup import KeyGroup
from repro.util.rng import RandomStream

__all__ = ["Figure1Result", "run_figure1_figure2"]


@dataclass
class Figure1Result:
    """The regenerated structural figures.

    Attributes:
        tree_text: ASCII rendering of the Figure 1 splitting tree.
        table_text: Figure 2-style rendering of the root server's work table.
        leaf_groups: The wildcard patterns of the tree's leaves, left to right.
        leaf_owners: The server managing each leaf, in the same order.
        root_server: The server that managed the initial ``011*`` group.
    """

    tree_text: str
    table_text: str
    leaf_groups: list[str]
    leaf_owners: list[str]
    root_server: str


def run_figure1_figure2(seed: int = 20040324, server_count: int = 24) -> Figure1Result:
    """Replay the Figure 1 splitting sequence and capture both figures.

    The paper starts from the key group ``011*`` (depth 3) and performs three
    splits: the root group, then the right child ``0111*``, then the left
    grandchild ``01110*``.  Server identities differ from the paper (they are
    whatever the DHT's hashing produces) but the tree shape and the table
    structure are reproduced exactly.
    """
    config = ClashConfig(key_bits=7, hash_bits=16, base_bits=3, initial_depth=3, min_depth=2)
    system = ClashSystem.create(config, server_count=server_count, rng=RandomStream(seed))
    root_group = KeyGroup.from_wildcard("011*", width=config.key_bits)
    root_server = system.owner_of_group(root_group)

    def force_split(pattern: str) -> None:
        group = KeyGroup.from_wildcard(pattern, width=config.key_bits)
        owner = system.owner_of_group(group)
        server = system.server(owner)
        server.set_group_rate(group, 2.0 * config.server_capacity)
        outcome = system.split_server(owner)
        if outcome is None or outcome.group != group:
            # The policy picked another (equally loaded) group; retry directly.
            server.reset_interval()
            server.set_group_rate(group, 4.0 * config.server_capacity)
            for other in server.active_groups():
                if other != group:
                    server.set_group_rate(other, 0.0)
            system.split_server(owner)

    # The paper's sequence: 011* -> {0110*, 0111*}; 0111* -> {01110*, 01111*};
    # 01110* -> {011100*, 011101*}.
    force_split("011*")
    force_split("0111*")
    force_split("01110*")

    tree = build_split_tree(system, root_group)
    tree_text = render_split_tree(tree)
    table_text = render_server_table(system.server(root_server).table, root_server)
    leaves = tree.leaves()
    return Figure1Result(
        tree_text=tree_text,
        table_text=table_text,
        leaf_groups=[leaf.group.wildcard() for leaf in leaves],
        leaf_owners=[leaf.owner or "?" for leaf in leaves],
        root_server=root_server,
    )
