"""Shared experiment scaffolding: scale presets and consistent setups.

The paper's experiments run 1000 servers, 100,000 data sources (plus 50,000
query clients in Figure 5 case B) for six simulated hours.  That is feasible
in this reproduction but slow for a benchmark suite, so every experiment
driver accepts an :class:`ExperimentScale`:

* ``paper()`` — the full Section 6.1 configuration.
* ``scaled(factor)`` — servers, clients, server capacity and phase duration
  all divided by ``factor``; per-server load levels and the qualitative
  comparison between CLASH and the DHT baselines are preserved (this is what
  the benchmark suite runs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ClashConfig
from repro.dht.partition import PARTITION_KINDS
from repro.net import TRANSPORT_KINDS
from repro.sim.simulator import SimulationParams
from repro.util.validation import check_positive, check_power_of_two, check_type
from repro.workload.scenario import PhasedScenario, paper_scenario

__all__ = ["ExperimentScale", "scaled_setup"]

PAPER_SERVER_CAPACITY = 4000.0
"""Server capacity (load units/sec) calibrated so that the paper-scale
workloads produce the utilisation levels Section 6.2 reports: roughly 40–70 %
average utilisation for CLASH, an order-of-magnitude overload for DHT(6) under
the highly skewed workload C, and very low utilisation for DHT(12)/DHT(24)."""


@dataclass(frozen=True)
class ExperimentScale:
    """How large an experiment to run.

    Attributes:
        name: Label used in reports ("paper" or "scaled/N").
        server_count: Number of servers.
        source_count: Number of data sources.
        query_client_count: Number of persistent-query clients.
        server_capacity: Per-server capacity in load units/sec.
        phase_duration: Length of each workload phase in seconds.
        load_check_period: Seconds between load checks.
        seed: Master random seed.
        transport: Transport protocol messages travel through (one of
            :data:`repro.net.TRANSPORT_KINDS` — ``inline``, ``event``,
            ``batching``, ``async``, ``replay`` or ``socket``; see the
            :data:`repro.net.TRANSPORTS` registry).
        link_latency: One-way message latency in seconds when a
            time-modelling transport (``event``, ``async``) is selected.
        join_rate: Poisson server-join rate (events/sec) applied to every
            scenario phase (0 = no churn, the default).
        fail_rate: Poisson server-failure rate (events/sec) applied to every
            scenario phase (0 = no churn, the default).
        shards: Number of independent Chord rings the key space is
            partitioned across (power of two; 1 = the paper's single ring).
        partition: Partition map governing the key-space → shard split (one
            of :data:`repro.dht.partition.PARTITION_KINDS`; ``"static"`` is
            the pre-refactor equal-prefix-range behaviour, ``"adaptive"``
            rebalances boundaries from observed load — sharded runs only).
        force_full_load_scan: Force every balance pass onto the reference
            every-server scan instead of the dirty-driven work queues (see
            :attr:`repro.sim.simulator.SimulationParams.force_full_load_scan`;
            metric streams are bit-identical either way).
        verify_invariants: Run the full protocol invariant pass after every
            membership event and at every period boundary (the CLI's
            ``--verify-invariants``; off by default — pure overhead on a
            healthy run).
    """

    name: str
    server_count: int
    source_count: int
    query_client_count: int
    server_capacity: float
    phase_duration: float
    load_check_period: float
    seed: int = 20040324
    transport: str = "inline"
    link_latency: float = 0.0
    join_rate: float = 0.0
    fail_rate: float = 0.0
    shards: int = 1
    partition: str = "static"
    force_full_load_scan: bool = False
    verify_invariants: bool = False

    def __post_init__(self) -> None:
        check_type("server_count", self.server_count, int)
        check_type("source_count", self.source_count, int)
        check_type("query_client_count", self.query_client_count, int)
        check_positive("server_count", self.server_count)
        check_positive("source_count", self.source_count)
        if self.query_client_count < 0:
            raise ValueError(
                f"query_client_count must be non-negative, got {self.query_client_count}"
            )
        check_positive("server_capacity", self.server_capacity)
        check_positive("phase_duration", self.phase_duration)
        check_positive("load_check_period", self.load_check_period)
        if self.transport not in TRANSPORT_KINDS:
            raise ValueError(
                f"transport must be one of {', '.join(TRANSPORT_KINDS)}, "
                f"got {self.transport!r}"
            )
        if self.link_latency < 0:
            raise ValueError(
                f"link_latency must be non-negative, got {self.link_latency}"
            )
        for name in ("join_rate", "fail_rate"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be non-negative, got {getattr(self, name)}"
                )
        check_power_of_two("shards", self.shards)
        if self.partition not in PARTITION_KINDS:
            raise ValueError(
                f"partition must be one of {', '.join(PARTITION_KINDS)}, "
                f"got {self.partition!r}"
            )

    @classmethod
    def paper(cls, query_clients: bool = False) -> "ExperimentScale":
        """The full Section 6.1 scale (minutes of wall-clock time per run)."""
        return cls(
            name="paper",
            server_count=1000,
            source_count=100_000,
            query_client_count=50_000 if query_clients else 0,
            server_capacity=PAPER_SERVER_CAPACITY,
            phase_duration=7200.0,
            load_check_period=300.0,
        )

    @classmethod
    def scaled(
        cls, factor: int = 10, query_clients: bool = False, phase_periods: int = 8
    ) -> "ExperimentScale":
        """A configuration scaled down by ``factor``.

        Client counts and server capacity shrink by ``factor`` together, which
        keeps every per-key-group load — expressed as a fraction of capacity —
        equal to its paper-scale value, so CLASH's split/merge dynamics are
        unchanged.  The server pool shrinks more slowly (by roughly
        ``factor/3``) so the system keeps ample spare capacity; shrinking the
        pool by the full factor would leave the offered load close to the
        aggregate capacity, a saturation regime the paper never operates in.
        Each phase lasts ``phase_periods`` load-check periods (the paper uses
        24).
        """
        check_positive("factor", factor)
        check_positive("phase_periods", phase_periods)
        period = 300.0
        source_count = max(200, 100_000 // factor)
        capacity = PAPER_SERVER_CAPACITY * (source_count / 100_000)
        server_count = max(120, int(1000 // max(1.0, factor / 3.0)))
        return cls(
            name=f"scaled/{factor}",
            server_count=server_count,
            source_count=source_count,
            query_client_count=(max(100, 50_000 // factor) if query_clients else 0),
            server_capacity=capacity,
            phase_duration=period * phase_periods,
            load_check_period=period,
        )

    # ------------------------------------------------------------------ #
    # Derived setups
    # ------------------------------------------------------------------ #

    def config(self, **overrides) -> ClashConfig:
        """The :class:`ClashConfig` for this scale (paper defaults otherwise).

        The query-load weight is scaled with the client population so that the
        logarithmic query term keeps the same share of server capacity at any
        scale.
        """
        base = ClashConfig(
            server_capacity=self.server_capacity,
            load_check_period=self.load_check_period,
            query_load_weight=10.0 * (self.source_count / 100_000.0),
        )
        if overrides:
            base = base.with_overrides(**overrides)
        return base

    def params(self, mean_stream_length: float = 1000.0, **overrides) -> SimulationParams:
        """The :class:`SimulationParams` for this scale."""
        values = {
            "server_count": self.server_count,
            "source_count": self.source_count,
            "query_client_count": self.query_client_count,
            "mean_stream_length": mean_stream_length,
            "seed": self.seed,
            "transport": self.transport,
            "link_latency": self.link_latency,
            "shards": self.shards,
            "partition": self.partition,
            "force_full_load_scan": self.force_full_load_scan,
            "verify_invariants": self.verify_invariants,
        }
        values.update(overrides)
        return SimulationParams(**values)

    def scenario(self, base_bits: int = 8) -> PhasedScenario:
        """The A → B → C scenario with this scale's phase duration and churn."""
        return paper_scenario(
            base_bits=base_bits,
            phase_duration=self.phase_duration,
            join_rate=self.join_rate,
            fail_rate=self.fail_rate,
        )


def scaled_setup(
    factor: int = 10, query_clients: bool = False, phase_periods: int = 8
) -> tuple[ClashConfig, SimulationParams, PhasedScenario]:
    """Convenience: a consistent (config, params, scenario) triple at reduced scale."""
    scale = ExperimentScale.scaled(
        factor=factor, query_clients=query_clients, phase_periods=phase_periods
    )
    return scale.config(), scale.params(), scale.scenario()
