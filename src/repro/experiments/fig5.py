"""Experiment E6 — Figure 5: CLASH signalling overhead.

Figure 5 reports the number of CLASH messages per second per server for the
three workloads under four conditions: virtual stream length Ld ∈ {50, 1000},
each with and without 50,000 persistent-query clients (the query clients add
state-transfer traffic when key groups split or merge).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentScale
from repro.sim.simulator import FlowSimulator, SimulationResult
from repro.util.validation import check_type

__all__ = ["Figure5Case", "Figure5Result", "run_figure5"]

DEFAULT_STREAM_LENGTHS = (50.0, 1000.0)
"""The virtual stream lengths Ld evaluated in Figure 5."""


@dataclass
class Figure5Case:
    """One bar group of Figure 5.

    Attributes:
        mean_stream_length: The virtual stream length Ld used.
        query_clients: Number of persistent-query clients (0 or the scale's
            query population).
        result: The CLASH simulation result for this condition.
    """

    mean_stream_length: float
    query_clients: int
    result: SimulationResult

    def messages_per_server_per_second(self) -> dict[str, float]:
        """Mean signalling rate per workload phase (the bar heights)."""
        return {
            phase.workload: phase.messages_per_server_per_second
            for phase in self.result.phase_summaries()
        }


@dataclass
class Figure5Result:
    """All conditions of Figure 5.

    Attributes:
        scale_name: The experiment scale label.
        cases: One entry per (Ld, query-client) condition.
    """

    scale_name: str
    cases: list[Figure5Case] = field(default_factory=list)

    def case(self, mean_stream_length: float, with_queries: bool) -> Figure5Case:
        """Look up a specific condition."""
        for candidate in self.cases:
            if candidate.mean_stream_length == mean_stream_length and (
                (candidate.query_clients > 0) == with_queries
            ):
                return candidate
        raise KeyError(
            f"no case with Ld={mean_stream_length} and "
            f"{'query clients' if with_queries else 'no query clients'}"
        )

    def overhead_ratio_short_vs_long_streams(self, with_queries: bool = False) -> float:
        """How much more signalling short streams (Ld=50) cost than long ones.

        The paper's qualitative claim: overheads are clearly lower for longer
        streams because keys change less often.
        """
        short = self.case(min(c.mean_stream_length for c in self.cases), with_queries)
        long = self.case(max(c.mean_stream_length for c in self.cases), with_queries)
        short_mean = _mean_rate(short)
        long_mean = _mean_rate(long)
        if long_mean == 0:
            raise ValueError("long-stream case recorded no signalling traffic")
        return short_mean / long_mean

    def state_transfer_increment(self, mean_stream_length: float) -> float:
        """Extra messages/sec/server added by the query-client population."""
        with_queries = _mean_rate(self.case(mean_stream_length, with_queries=True))
        without = _mean_rate(self.case(mean_stream_length, with_queries=False))
        return with_queries - without


def _mean_rate(case: Figure5Case) -> float:
    rates = list(case.messages_per_server_per_second().values())
    return sum(rates) / len(rates)


def run_figure5(
    scale: ExperimentScale | None = None,
    stream_lengths: tuple[float, ...] = DEFAULT_STREAM_LENGTHS,
    include_query_clients: bool = True,
) -> Figure5Result:
    """Run the Figure 5 overhead measurement at the given scale.

    Args:
        scale: Experiment scale for the *no query client* runs; the query-client
            runs reuse the same scale with its query population enabled.
            Defaults to ``ExperimentScale.scaled(10)``.
        stream_lengths: Virtual stream lengths Ld to evaluate.
        include_query_clients: Also run the 50,000-query-client condition
            (case B of the figure).
    """
    if scale is None:
        scale = ExperimentScale.scaled(10)
    check_type("scale", scale, ExperimentScale)
    # The query-client condition reuses the exact same scale and scenario so
    # the two bars of each group differ only in the query population (half the
    # data-source count, matching the paper's 50,000 queries per 100,000
    # sources, unless the scale already specifies a query population).
    query_population = scale.query_client_count or max(100, scale.source_count // 2)
    result = Figure5Result(scale_name=scale.name)
    for length in stream_lengths:
        config = scale.config()
        params = scale.params(mean_stream_length=length, query_client_count=0)
        run = FlowSimulator(config, params, scale.scenario()).run()
        result.cases.append(
            Figure5Case(mean_stream_length=length, query_clients=0, result=run)
        )
        if include_query_clients:
            q_params = scale.params(
                mean_stream_length=length, query_client_count=query_population
            )
            q_run = FlowSimulator(config, q_params, scale.scenario()).run()
            result.cases.append(
                Figure5Case(
                    mean_stream_length=length,
                    query_clients=query_population,
                    result=q_run,
                )
            )
    return result
