"""Experiment E1 — Figure 3: the three workload skew profiles.

The figure plots, for workloads A, B and C, how many of the client nodes pick
each of the 2^8 base-key values.  The driver reports both the analytic
expectation (what the figure draws) and an empirical sample drawn through the
actual key generator, so the test-suite can check that the generator really
produces the intended skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.keys.identifier import RandomKeyGenerator
from repro.util.rng import RandomStream
from repro.util.validation import check_positive, check_type
from repro.workload.distributions import (
    WorkloadSpec,
    skew_statistics,
    workload_a,
    workload_b,
    workload_c,
)

__all__ = ["Figure3Result", "run_figure3"]


@dataclass
class Figure3Result:
    """Expected and sampled base-value counts per workload.

    Attributes:
        population: Number of clients the counts are scaled to.
        workload_names: Workload labels in presentation order.
        counts: Expected number of clients per base value (the Figure 3 curves).
        sampled_counts: Empirical counts from drawing ``sample_size`` keys.
        skew: Skew statistics per workload (max/mean ratio, hottest share, entropy).
    """

    population: int
    workload_names: list[str] = field(default_factory=list)
    counts: dict[str, list[float]] = field(default_factory=dict)
    sampled_counts: dict[str, list[int]] = field(default_factory=dict)
    skew: dict[str, dict[str, float]] = field(default_factory=dict)

    def hottest_value(self, workload: str) -> int:
        """The base value with the highest expected client count."""
        values = self.counts[workload]
        return max(range(len(values)), key=lambda index: values[index])


def run_figure3(
    population: int = 100_000,
    sample_size: int = 20_000,
    base_bits: int = 8,
    key_bits: int = 24,
    seed: int = 20040324,
    specs: list[WorkloadSpec] | None = None,
) -> Figure3Result:
    """Regenerate the Figure 3 workload profiles.

    Args:
        population: Client population the expected counts are scaled to
            (100,000 in the paper).
        sample_size: Number of keys sampled per workload for the empirical
            histogram.
        base_bits: Width of the skewed base portion (8 in the paper).
        key_bits: Total identifier key width (24 in the paper).
        seed: Seed for the empirical sampling.
        specs: Override the workloads (defaults to A, B and C).
    """
    check_type("population", population, int)
    check_positive("population", population)
    check_type("sample_size", sample_size, int)
    check_positive("sample_size", sample_size)
    if specs is None:
        specs = [workload_a(base_bits), workload_b(base_bits), workload_c(base_bits)]
    result = Figure3Result(population=population)
    rng = RandomStream(seed)
    for spec in specs:
        result.workload_names.append(spec.name)
        result.counts[spec.name] = spec.expected_counts(population)
        result.skew[spec.name] = skew_statistics(spec)
        generator = RandomKeyGenerator(
            width=key_bits, base_bits=spec.base_bits, rng=rng, base_weights=spec.weights
        )
        histogram = [0] * (1 << spec.base_bits)
        for _ in range(sample_size):
            key = generator.generate()
            histogram[key.prefix(spec.base_bits)] += 1
        result.sampled_counts[spec.name] = histogram
    return result
