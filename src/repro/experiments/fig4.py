"""Experiments E2–E5 — Figure 4: load distribution, CLASH vs fixed-depth DHT.

Figure 4 has four panels, all produced from the same set of runs:

* maximum server load over time,
* average server load over time,
* CLASH tree-depth variation (min / average / max) over time,
* number of active servers per workload phase.

The driver runs CLASH through :class:`~repro.sim.simulator.FlowSimulator` and
each requested fixed key length through
:class:`~repro.baselines.fixed_depth.FixedDepthDhtSimulator` on the identical
scenario and scale, then exposes the per-period series and per-phase
summaries the panels plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.fixed_depth import FixedDepthDhtSimulator
from repro.experiments.runner import ExperimentScale
from repro.sim.simulator import FlowSimulator, SimulationResult
from repro.util.stats import TimeSeries
from repro.util.validation import check_type

__all__ = ["Figure4Result", "run_figure4"]

DEFAULT_FIXED_DEPTHS = (6, 12, 24)
"""The fixed identifier-key lengths plotted in Figure 4."""


@dataclass
class Figure4Result:
    """All runs needed to redraw Figure 4.

    Attributes:
        scale_name: The :class:`ExperimentScale` label the runs used.
        results: Simulation results keyed by system label ("CLASH", "DHT(6)", …).
    """

    scale_name: str
    results: dict[str, SimulationResult] = field(default_factory=dict)

    def labels(self) -> list[str]:
        """System labels in presentation order (CLASH first)."""
        ordered = ["CLASH"] if "CLASH" in self.results else []
        ordered.extend(sorted(label for label in self.results if label != "CLASH"))
        return ordered

    # ------------------------------------------------------------------ #
    # Panel accessors
    # ------------------------------------------------------------------ #

    def max_load_series(self) -> dict[str, TimeSeries]:
        """Panel 1: maximum server load (% of capacity) over time, per system."""
        return {
            label: self.results[label].metrics.series("max_load_percent")
            for label in self.labels()
        }

    def avg_load_series(self) -> dict[str, TimeSeries]:
        """Panel 2: average active-server load (% of capacity) over time."""
        return {
            label: self.results[label].metrics.series("avg_load_percent")
            for label in self.labels()
        }

    def depth_series(self) -> dict[str, TimeSeries]:
        """Panel 3: CLASH depth variation (min / avg / max) over time."""
        return self.results["CLASH"].metrics.depth_series()

    def active_servers_by_phase(self) -> dict[str, dict[str, float]]:
        """Panel 4: mean active servers per workload phase, per system."""
        table: dict[str, dict[str, float]] = {}
        for label in self.labels():
            table[label] = {
                phase.workload: phase.mean_active_servers
                for phase in self.results[label].phase_summaries()
            }
        return table

    # ------------------------------------------------------------------ #
    # Headline comparisons recorded in EXPERIMENTS.md
    # ------------------------------------------------------------------ #

    def clash_peak_load(self) -> float:
        """CLASH's worst per-server load over the whole run (% of capacity)."""
        return self.results["CLASH"].metrics.overall_peak_load()

    def baseline_peak_load(self, label: str) -> float:
        """A baseline's worst per-server load over the whole run."""
        return self.results[label].metrics.overall_peak_load()

    def server_utilisation_advantage(self, label: str) -> float:
        """How many times more servers the baseline drags in than CLASH.

        The paper's headline claim is an ~80 % reduction in physical servers
        used compared with fine-grained basic DHT.
        """
        clash_servers = self._mean_active("CLASH")
        baseline_servers = self._mean_active(label)
        if clash_servers == 0:
            raise ValueError("CLASH run recorded no active servers")
        return baseline_servers / clash_servers

    def _mean_active(self, label: str) -> float:
        phases = self.results[label].phase_summaries()
        return sum(phase.mean_active_servers for phase in phases) / len(phases)


def run_figure4(
    scale: ExperimentScale | None = None,
    fixed_depths: tuple[int, ...] = DEFAULT_FIXED_DEPTHS,
    include_clash: bool = True,
) -> Figure4Result:
    """Run the Figure 4 comparison at the given scale.

    Args:
        scale: Experiment scale; defaults to ``ExperimentScale.scaled(10)``.
        fixed_depths: The ``DHT(x)`` baselines to include.
        include_clash: Allow skipping the CLASH run when only baseline data is
            needed (used by a couple of focused tests).
    """
    if scale is None:
        scale = ExperimentScale.scaled(10)
    check_type("scale", scale, ExperimentScale)
    config = scale.config()
    params = scale.params()
    scenario = scale.scenario()
    result = Figure4Result(scale_name=scale.name)
    if include_clash:
        clash = FlowSimulator(config, params, scenario).run()
        result.results[clash.label] = clash
    for depth in fixed_depths:
        baseline = FixedDepthDhtSimulator(
            config=config,
            params=params,
            scenario=scenario,
            fixed_depth=depth,
        ).run()
        result.results[baseline.label] = baseline
    return result
