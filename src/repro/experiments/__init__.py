"""Experiment drivers that regenerate every figure of the paper's evaluation.

One module per figure:

* :mod:`~repro.experiments.fig3` — the three workload skew profiles.
* :mod:`~repro.experiments.fig4` — server load, utilisation, active-server
  count and depth variation for CLASH vs the fixed-depth DHT baselines.
* :mod:`~repro.experiments.fig5` — CLASH signalling overhead for different
  virtual-stream lengths, with and without the 50,000 query clients.
* :mod:`~repro.experiments.churn` — beyond the paper: Poisson membership
  churn swept against peak load and lookup depth.
* :mod:`~repro.experiments.shard_scaling` — beyond the paper: the sharded
  ring federation swept over shard counts, reporting per-shard peak load and
  cross-shard imbalance with and without churn.

Each driver returns a structured result object and can render it as the
text tables/series recorded in EXPERIMENTS.md.  The drivers accept an
:class:`~repro.experiments.runner.ExperimentScale` so the same code runs both
the fast scaled-down configuration used by the benchmark suite and the full
paper-scale configuration.
"""

from repro.experiments.churn import (
    ChurnSweepResult,
    render_churn_sweep,
    run_churn_sweep,
)
from repro.experiments.fig3 import Figure3Result, run_figure3
from repro.experiments.fig4 import Figure4Result, run_figure4
from repro.experiments.fig5 import Figure5Result, run_figure5
from repro.experiments.runner import ExperimentScale, scaled_setup
from repro.experiments.shard_scaling import (
    ShardScalingResult,
    render_shard_scaling,
    run_shard_scaling,
)
from repro.experiments.reporting import (
    format_series,
    format_table,
    render_figure3,
    render_figure4,
    render_figure5,
)

__all__ = [
    "ExperimentScale",
    "scaled_setup",
    "ChurnSweepResult",
    "run_churn_sweep",
    "render_churn_sweep",
    "ShardScalingResult",
    "run_shard_scaling",
    "render_shard_scaling",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "format_table",
    "format_series",
    "render_figure3",
    "render_figure4",
    "render_figure5",
]
