"""Experiment — shard scaling: peak load, depth and overhead vs shard count.

Extends the Figure 4 / Figure 5 evaluation beyond the paper: the same A → B
→ C workload schedule runs over ring federations of 1, 2, 4 and 8 shards
(:class:`~repro.dht.router.ShardedRingRouter`), with and without Poisson
membership churn, and reports for each point

* **peak server load** — the Figure 4 headline metric; sharding constrains
  each key-space slice to its own server pool, so the interesting question
  is how much balance headroom the partition costs;
* **cross-shard imbalance** — peak-to-mean ratio of the per-shard aggregate
  loads (1.0 = perfectly even federation), the new metric sharded runs add
  to :class:`~repro.sim.metrics.PeriodSample`; sharded points run under both
  the static equal-prefix partition and the adaptive load-proportional one
  (:mod:`repro.dht.partition`), so the table shows what skew-aware
  boundaries buy — both the mean over the run and the converged
  (phase-final) figure, since the bounded rebalance takes a few periods to
  track a workload switch;
* **lookup depth** — churn and sharding reassign groups without changing the
  splitting tree, so depth drift here would indicate the protocol is
  splitting to compensate for the partition;
* **message overhead** — the Figure 5 metric (signalling messages per server
  per second); per-shard rings are smaller, so DHT routing shortens while
  the protocol traffic itself should be unchanged.

The ``shards=1`` row is the control: it runs the
:class:`~repro.dht.router.SingleRingRouter` and therefore reproduces the
unsharded system bit for bit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentScale
from repro.sim.simulator import FlowSimulator, SimulationResult
from repro.util.stats import mean
from repro.util.validation import check_type

__all__ = [
    "DEFAULT_SHARD_COUNTS",
    "DEFAULT_CHURN_VARIANTS",
    "DEFAULT_PARTITION_MODES",
    "ShardPoint",
    "ShardScalingResult",
    "run_shard_scaling",
    "render_shard_scaling",
]

DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
"""Shard counts swept by default (powers of two; 1 = the unsharded control)."""

DEFAULT_CHURN_VARIANTS = ((0.0, 0.0), (0.005, 0.005))
"""The (join_rate, fail_rate) pairs (events/sec) each shard count runs at:
a stable population and a symmetrically churning one."""

DEFAULT_PARTITION_MODES = ("static", "adaptive")
"""The partition maps each sharded point runs under (``shards=1`` points
always run static — a single ring has no boundaries to move)."""


@dataclass
class ShardPoint:
    """One point of the shard-scaling sweep.

    Attributes:
        shards: Number of ring shards the deployment routed across.
        join_rate: Poisson server-join rate (events/sec) for every phase.
        fail_rate: Poisson server-failure rate (events/sec) for every phase.
        result: The full simulation result at this point.
        partition: The partition map the point ran under (``"static"`` or
            ``"adaptive"``; see :data:`repro.dht.partition.PARTITION_KINDS`).
    """

    shards: int
    join_rate: float
    fail_rate: float
    result: SimulationResult
    partition: str = "static"

    @property
    def peak_load_percent(self) -> float:
        """Highest per-server load seen at any point in the run."""
        return self.result.metrics.overall_peak_load()

    @property
    def mean_shard_peak_percent(self) -> float:
        """Mean (over periods and shards) of the per-shard peak loads.

        For the unsharded control this is the mean per-period maximum load —
        the single "shard" is the whole deployment.
        """
        samples = self.result.metrics.samples
        per_period = [
            mean(list(s.shard_peak_loads)) if s.shard_peak_loads else s.max_load_percent
            for s in samples
        ]
        return mean(per_period)

    @property
    def mean_imbalance(self) -> float:
        """Mean peak-to-mean ratio of per-shard aggregate loads (1.0 = even)."""
        values = [
            s.cross_shard_imbalance
            for s in self.result.metrics.samples
            if s.cross_shard_imbalance > 0.0
        ]
        return mean(values) if values else 1.0

    @property
    def converged_imbalance(self) -> float:
        """Worst phase-final cross-shard imbalance (the steady-state figure).

        The bounded rebalance moves boundaries at most a few key-space
        blocks per period, so the periods right after a workload switch are
        transitional; the last period of each phase shows what the partition
        converges to under that workload.
        """
        finals: dict[str, float] = {}
        for sample in self.result.metrics.samples:
            finals[sample.workload] = sample.cross_shard_imbalance
        values = [value for value in finals.values() if value > 0.0]
        return max(values) if values else 1.0

    @property
    def mean_depth(self) -> float:
        """Mean (over periods) of the per-period average lookup depth."""
        return mean([s.avg_depth for s in self.result.metrics.samples])

    @property
    def max_depth(self) -> float:
        """Deepest key group observed at any point in the run."""
        return max(s.max_depth for s in self.result.metrics.samples)

    @property
    def messages_per_server_per_second(self) -> float:
        """Mean signalling message rate (the Figure 5 metric)."""
        return mean(
            [s.messages_per_server_per_second for s in self.result.metrics.samples]
        )

    @property
    def groups_reassigned(self) -> int:
        """Key groups handed to a new owner by membership events."""
        return sum(s.groups_reassigned for s in self.result.metrics.samples)

    @property
    def groups_migrated(self) -> int:
        """Key groups moved between shards by partition rebalances."""
        return sum(s.groups_migrated for s in self.result.metrics.samples)


@dataclass
class ShardScalingResult:
    """All points of a shard-scaling sweep.

    Attributes:
        scale_name: The experiment scale label.
        transport: The transport the sweep ran on.
        points: One entry per (shards, churn) combination, in sweep order.
    """

    scale_name: str
    transport: str
    points: list[ShardPoint] = field(default_factory=list)

    def baseline(self) -> ShardPoint:
        """The unsharded churn-free control (raises if the sweep skipped it)."""
        for point in self.points:
            if (
                point.shards == 1
                and point.join_rate == 0.0
                and point.fail_rate == 0.0
                and point.partition == "static"
            ):
                return point
        raise KeyError("the sweep did not include the shards=1, churn-free point")


def run_shard_scaling(
    scale: ExperimentScale | None = None,
    shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS,
    churn_rates: tuple[tuple[float, float], ...] = DEFAULT_CHURN_VARIANTS,
    partition_modes: tuple[str, ...] = DEFAULT_PARTITION_MODES,
) -> ShardScalingResult:
    """Run the shard-scaling sweep at the given scale.

    Args:
        scale: Experiment scale (defaults to ``ExperimentScale.scaled(10)``).
            Its ``transport`` selects how messages move; its own ``shards``,
            churn rates and partition are ignored in favour of the sweep's.
        shard_counts: The shard counts to evaluate.
        churn_rates: The (join_rate, fail_rate) pairs each shard count runs
            at.
        partition_modes: The partition maps each sharded point runs under
            (``shards=1`` points always run the static map).
    """
    if scale is None:
        scale = ExperimentScale.scaled(10)
    check_type("scale", scale, ExperimentScale)
    sweep = ShardScalingResult(scale_name=scale.name, transport=scale.transport)
    for shards in shard_counts:
        for partition in partition_modes:
            if partition != "static" and shards <= 1:
                # A single ring has no shard boundaries to move.
                continue
            for join_rate, fail_rate in churn_rates:
                point_scale = dataclasses.replace(
                    scale,
                    shards=shards,
                    partition=partition,
                    join_rate=join_rate,
                    fail_rate=fail_rate,
                )
                simulator = FlowSimulator(
                    config=point_scale.config(),
                    params=point_scale.params(),
                    scenario=point_scale.scenario(),
                )
                try:
                    result = simulator.run()
                    # Every point must end in a consistent state; for sharded
                    # points this includes the shard-locality invariants.
                    simulator.system.verify_invariants()
                finally:
                    simulator.transport.close()
                sweep.points.append(
                    ShardPoint(
                        shards=shards,
                        join_rate=join_rate,
                        fail_rate=fail_rate,
                        result=result,
                        partition=partition,
                    )
                )
    return sweep


def render_shard_scaling(result: ShardScalingResult) -> str:
    """The sweep as a text table (load, imbalance, depth and overhead rows)."""
    lines = [
        "Shard scaling — ring federation size vs CLASH load, depth and overhead "
        f"({result.scale_name} scale, {result.transport} transport)",
        "",
    ]
    headers = [
        "shards",
        "join/sec",
        "fail/sec",
        "partition",
        "peak load %",
        "shard peak %",
        "imbalance",
        "imb (end)",
        "mean depth",
        "max depth",
        "msg/srv/s",
        "splits",
        "merges",
        "moved",
        "migrated",
    ]
    rows = []
    for point in result.points:
        rows.append(
            [
                point.shards,
                f"{point.join_rate:g}",
                f"{point.fail_rate:g}",
                point.partition,
                point.peak_load_percent,
                point.mean_shard_peak_percent,
                point.mean_imbalance,
                point.converged_imbalance,
                point.mean_depth,
                point.max_depth,
                point.messages_per_server_per_second,
                point.result.total_splits,
                point.result.total_merges,
                point.groups_reassigned,
                point.groups_migrated,
            ]
        )
    lines.append(format_table(headers, rows))
    return "\n".join(lines)
