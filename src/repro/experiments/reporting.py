"""Plain-text rendering of experiment results.

The paper presents its evaluation as figures; this reproduction regenerates
the underlying numbers and renders them as aligned text tables and series so
they can be diffed, recorded in EXPERIMENTS.md and printed by the benchmark
harness without a plotting dependency.
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING, Sequence

from repro.util.stats import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.experiments.fig3 import Figure3Result
    from repro.experiments.fig4 import Figure4Result
    from repro.experiments.fig5 import Figure5Result

__all__ = [
    "format_table",
    "format_series",
    "series_to_csv",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_profile",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_series(series: TimeSeries, time_unit: float = 3600.0, label: str = "t") -> str:
    """Render a time series as ``t=.. value=..`` lines (time in hours by default)."""
    lines = [f"# {series.name}"]
    for time, value in series:
        lines.append(f"{label}={time / time_unit:6.2f}  value={value:10.2f}")
    return "\n".join(lines)


def series_to_csv(series_list: Sequence[TimeSeries], time_unit: float = 3600.0) -> str:
    """Render several aligned time series as CSV text (one column per series)."""
    if not series_list:
        raise ValueError("at least one series is required")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time"] + [series.name for series in series_list])
    length = len(series_list[0])
    for series in series_list:
        if len(series) != length:
            raise ValueError("all series must have the same length to share a CSV")
    for index in range(length):
        row = [f"{series_list[0].times[index] / time_unit:.4f}"]
        row.extend(f"{series.values[index]:.4f}" for series in series_list)
        writer.writerow(row)
    return buffer.getvalue()


# --------------------------------------------------------------------- #
# Figure-specific renderers
# --------------------------------------------------------------------- #


def render_figure3(result: "Figure3Result", bins: int = 16) -> str:
    """Figure 3: expected clients per base-key value, coarsened into bins."""
    lines = ["Figure 3 — workload skew over the base key values", ""]
    headers = ["bin"] + [f"workload {name}" for name in result.workload_names]
    rows = []
    bin_width = max(1, len(result.counts[result.workload_names[0]]) // bins)
    for start in range(0, len(result.counts[result.workload_names[0]]), bin_width):
        row: list[object] = [f"{start:4d}-{start + bin_width - 1:4d}"]
        for name in result.workload_names:
            row.append(sum(result.counts[name][start : start + bin_width]))
        rows.append(row)
    lines.append(format_table(headers, rows))
    lines.append("")
    lines.append("Skew statistics:")
    stat_headers = ["workload", "max/mean", "hottest value share", "hottest window share", "entropy"]
    stat_rows = [
        [
            name,
            result.skew[name]["max_over_mean"],
            result.skew[name]["hottest_share"],
            result.skew[name]["hottest_window_share"],
            result.skew[name]["normalised_entropy"],
        ]
        for name in result.workload_names
    ]
    lines.append(format_table(stat_headers, stat_rows))
    return "\n".join(lines)


def render_figure4(result: "Figure4Result") -> str:
    """Figure 4: the four panels as per-phase tables plus the CLASH depth series."""
    lines = [f"Figure 4 — load distribution ({result.scale_name} scale)", ""]
    headers = ["system", "workload", "max load %", "avg load %", "active servers"]
    rows = []
    for label in result.labels():
        for phase in result.results[label].phase_summaries():
            rows.append(
                [
                    label,
                    phase.workload,
                    phase.peak_max_load_percent,
                    phase.mean_avg_load_percent,
                    phase.mean_active_servers,
                ]
            )
    lines.append(format_table(headers, rows))
    lines.append("")
    lines.append("CLASH depth variation (per phase):")
    depth_headers = ["workload", "mean depth", "depth spread (max-min)", "splits", "merges"]
    depth_rows = [
        [
            phase.workload,
            phase.mean_depth,
            phase.depth_spread,
            phase.total_splits,
            phase.total_merges,
        ]
        for phase in result.results["CLASH"].phase_summaries()
    ]
    lines.append(format_table(depth_headers, depth_rows))
    return "\n".join(lines)


def render_profile(stats, top: int = 25, sort: str = "cumtime") -> str:
    """Render a ``pstats.Stats`` object as a top-N profile table.

    Used by the CLI's ``--profile`` flag so perf PRs can show a before/after
    profile without leaving the text-report toolchain.  ``sort`` picks the
    ranking column: ``"cumtime"`` (default) surfaces the call-tree owners,
    ``"tottime"`` the functions burning time in their own frames.
    """
    if sort not in ("cumtime", "tottime"):
        raise ValueError(f"sort must be 'cumtime' or 'tottime', got {sort!r}")
    rows = []
    for (filename, lineno, function), (
        _primitive_calls,
        call_count,
        total_time,
        cumulative_time,
        _callers,
    ) in stats.stats.items():
        location = f"{filename}:{lineno}({function})" if lineno else function
        rows.append((cumulative_time, total_time, call_count, location))
    if sort == "tottime":
        rows.sort(key=lambda row: (-row[1], row[3]))
    else:
        rows.sort(key=lambda row: (-row[0], row[3]))
    table_rows = [
        [call_count, f"{total_time:.4f}", f"{cumulative_time:.4f}", location]
        for cumulative_time, total_time, call_count, location in rows[:top]
    ]
    return format_table(
        ["calls", "tottime (s)", "cumtime (s)", "function"], table_rows
    )


def render_figure5(result: "Figure5Result") -> str:
    """Figure 5: signalling messages per second per server."""
    lines = [f"Figure 5 — CLASH communication overhead ({result.scale_name} scale)", ""]
    headers = ["query clients", "Ld", "workload", "messages/sec/server"]
    rows = []
    for case in result.cases:
        for phase in case.result.phase_summaries():
            rows.append(
                [
                    case.query_clients,
                    int(case.mean_stream_length),
                    phase.workload,
                    phase.messages_per_server_per_second,
                ]
            )
    lines.append(format_table(headers, rows))
    return "\n".join(lines)
