"""The pluggable transport abstraction all CLASH traffic flows through.

A :class:`Transport` owns the mapping from endpoint names to message handlers
and knows how to resolve :class:`~repro.net.envelope.DhtAddress` destinations
through the DHT.  The protocol layer
(:class:`~repro.core.protocol.ClashSystem`) never calls a server directly —
it wraps every exchange in an :class:`~repro.net.envelope.Envelope` and hands
it to the transport, which makes latency models, event-driven delivery and
batching a matter of configuration rather than new protocol code paths.

Three interchangeable implementations ship with the package:

* :class:`~repro.net.inline.InlineTransport` — zero-overhead synchronous
  dispatch, preserving the original direct-call semantics bit for bit.
* :class:`~repro.net.event.EventTransport` — routes envelopes through a
  :class:`~repro.sim.engine.SimulationEngine` with a pluggable latency model.
* :class:`~repro.net.batching.BatchingTransport` — coalesces same-destination
  envelopes (and DHT route resolutions) per load-check period.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable

from repro.net.envelope import Delivery, DhtAddress, Envelope

__all__ = [
    "DELIVERY_LOG_LIMIT",
    "DeliveryFailed",
    "Handler",
    "RouteResolver",
    "Transport",
    "TransportError",
]

DELIVERY_LOG_LIMIT = 65536
"""Default ring-buffer capacity of :attr:`Transport.delivery_log`.  Recording
is opt-in and, once enabled, bounded: a paper-scale run with the log left on
keeps the most recent entries instead of accumulating one tuple per delivery
for the whole run."""

Handler = Callable[[Envelope], object]
"""An endpoint's message handler: receives an envelope, returns the reply
payload (or ``None`` for one-way messages)."""

RouteResolver = Callable[[object], object]
"""Resolves an identifier key to a DHT lookup result with ``owner`` and
``hops`` attributes (:class:`~repro.dht.ring.LookupResult`)."""


class TransportError(RuntimeError):
    """Raised when an envelope cannot be delivered (unknown endpoint, no
    resolver for a DHT-addressed destination, ...)."""


class DeliveryFailed(TransportError):
    """A request/reply exchange was cancelled because its destination failed
    while the request was in flight.

    Transports that model time can have a destination endpoint unbind (server
    failure) between scheduling a request and delivering it.  The exchange is
    cancelled — the lost request is counted in
    :attr:`Transport.dropped_messages` — and this typed error is raised so
    protocol-level callers can recover (retry against the re-stabilised DHT,
    skip the merge, re-root the orphaned group) instead of a generic
    :class:`TransportError` aborting the whole run.

    Attributes:
        destination: Name of the endpoint that failed mid-flight.
        envelope: The envelope whose delivery was cancelled.
    """

    def __init__(self, destination: str, envelope: Envelope) -> None:
        super().__init__(
            f"request to {destination!r} cancelled: the endpoint failed while "
            f"the {type(envelope.payload).__name__} exchange was in flight"
        )
        self.destination = destination
        self.envelope = envelope


class Transport(abc.ABC):
    """Carries envelopes between named endpoints.

    Lifecycle: the owner (normally :class:`~repro.core.protocol.ClashSystem`)
    binds one handler per server with :meth:`bind`, installs a DHT resolver
    with :meth:`set_resolver`, and then sends traffic with :meth:`request`
    (synchronous request/reply) and :meth:`post` (one-way, possibly deferred
    until :meth:`flush`).
    """

    #: Whether the protocol layer may elide re-posting a load report whose
    #: content the destination already holds (the report-diff exchange).
    #: Eliding a post is only stream-preserving on transports that neither
    #: price deliveries with a latency model nor draw per-delivery RNG — a
    #: skipped envelope would otherwise shift every later sample/draw.  The
    #: flag is stamped from :class:`~repro.net.registry.TransportSpec` by
    #: :func:`repro.net.build_transport`; directly-constructed transports
    #: keep the conservative class default (full delivery, always safe).
    supports_report_diff = False

    def __init__(self) -> None:
        self._handlers: dict[str, Handler] = {}
        self._endpoint_shards: dict[str, int] = {}
        self._resolver: RouteResolver | None = None
        self.envelopes_delivered = 0
        self.routes_resolved = 0
        #: One-way envelopes dropped because their destination endpoint was
        #: unbound (server failure) between send and delivery.  Synchronous
        #: transports never defer, so they never drop; the event and batching
        #: transports count their in-flight losses here symmetrically.
        self.dropped_messages = 0
        #: Ring buffer of ``(time, server, payload type name)`` entries, one
        #: per delivery, appended by the transports that model time while
        #: :attr:`log_deliveries` is on (see :meth:`enable_delivery_log`).
        self.delivery_log: deque[tuple[float, str, str]] = deque(
            maxlen=DELIVERY_LOG_LIMIT
        )
        #: Whether deliveries are recorded into :attr:`delivery_log`
        #: (off by default — recording is opt-in for the fuzzer and tests).
        self.log_deliveries = False
        #: True once :meth:`close` has run.  The simulator closes its
        #: transport deterministically at the end of every run; sweep tests
        #: assert this flag so a leaked event loop or worker process cannot
        #: ride on garbage-collection timing.
        self.closed = False

    # ------------------------------------------------------------------ #
    # Delivery recording
    # ------------------------------------------------------------------ #

    def enable_delivery_log(self, limit: int | None = DELIVERY_LOG_LIMIT) -> None:
        """Turn on delivery recording with a fresh ring buffer.

        Args:
            limit: Ring-buffer capacity — only the most recent ``limit``
                deliveries are kept.  ``None`` removes the bound (short
                diagnostic runs that need the complete schedule).
        """
        if limit is not None and limit <= 0:
            raise ValueError(f"delivery log limit must be positive, got {limit}")
        self.delivery_log = deque(maxlen=limit)
        self.log_deliveries = True

    def disable_delivery_log(self) -> None:
        """Stop recording and drop the buffered entries."""
        self.log_deliveries = False
        self.delivery_log = deque(maxlen=DELIVERY_LOG_LIMIT)

    # ------------------------------------------------------------------ #
    # Endpoint management
    # ------------------------------------------------------------------ #

    def bind(self, name: str, handler: Handler, shard: int | None = None) -> None:
        """Register (or replace) the handler for endpoint ``name``.

        ``shard`` optionally namespaces the endpoint under a ring shard
        (sharded deployments tag every server endpoint with its shard index).
        Delivery is unaffected — names stay globally unique — but the
        namespace lets callers enumerate one shard's endpoints
        (:meth:`endpoints`) and is the seam a socket-backed transport will
        use to route a whole shard to its worker process.
        """
        if not name:
            raise ValueError("endpoint name must be non-empty")
        self._handlers[name] = handler
        if shard is None:
            self._endpoint_shards.pop(name, None)
        else:
            self._endpoint_shards[name] = shard

    def unbind(self, name: str) -> None:
        """Remove an endpoint (e.g. after a server failure)."""
        self._handlers.pop(name, None)
        self._endpoint_shards.pop(name, None)
        self.invalidate_routes()

    def endpoints(self, shard: int | None = None) -> list[str]:
        """Names of every bound endpoint (optionally one shard's only)."""
        if shard is None:
            return list(self._handlers)
        return [
            name
            for name in self._handlers
            if self._endpoint_shards.get(name) == shard
        ]

    def endpoint_shard(self, name: str) -> int | None:
        """The shard namespace ``name`` was bound under (``None`` if untagged)."""
        return self._endpoint_shards.get(name)

    def is_bound(self, name: str) -> bool:
        """True while ``name`` has a handler (False once it fails/unbinds)."""
        return name in self._handlers

    def set_resolver(self, resolver: RouteResolver) -> None:
        """Install the DHT lookup used for :class:`DhtAddress` destinations."""
        self._resolver = resolver

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def resolve(self, virtual_key) -> tuple[str, int]:
        """Resolve a virtual key to ``(owner, hops)`` through the DHT.

        Exposed separately from delivery because the protocol sometimes needs
        the route before deciding what to send (a splitting server must know
        whether the right child maps back to itself).  Subclasses may cache
        resolutions; the base implementation always asks the resolver.
        """
        if self._resolver is None:
            raise TransportError("transport has no DHT resolver installed")
        lookup = self._resolver(virtual_key)
        self.routes_resolved += 1
        return lookup.owner, lookup.hops

    def _route(self, envelope: Envelope) -> tuple[str, int]:
        """The concrete endpoint and hop charge for an envelope."""
        destination = envelope.destination
        if isinstance(destination, DhtAddress):
            return self.resolve(destination.virtual_key)
        return destination, 0

    def _dispatch(self, name: str, envelope: Envelope) -> object:
        """Invoke the handler bound to ``name`` (the actual delivery)."""
        handler = self._handlers.get(name)
        if handler is None:
            raise TransportError(f"no endpoint bound for {name!r}")
        self.envelopes_delivered += 1
        return handler(envelope)

    def invalidate_routes(self) -> None:
        """Drop any cached DHT resolutions (ring membership changed)."""

    # ------------------------------------------------------------------ #
    # Latency surface (no-ops unless the transport models time)
    # ------------------------------------------------------------------ #

    def set_latency_model(self, latency) -> None:
        """Install a latency model; ignored by transports that don't model time."""

    def drain_latency_samples(self) -> list[float]:
        """Per-delivery latencies recorded since the last drain (empty unless
        the transport models time)."""
        return []

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def request(self, envelope: Envelope) -> Delivery:
        """Deliver an envelope and wait for the endpoint's reply."""

    @abc.abstractmethod
    def post(self, envelope: Envelope) -> Delivery:
        """Send a one-way envelope.

        Implementations may defer the actual handler invocation until
        :meth:`flush`; the returned :class:`Delivery` always carries the
        resolved endpoint and hop charge so the caller can account for the
        message immediately.
        """

    def flush(self) -> int:
        """Deliver every deferred envelope; returns how many were delivered.

        Called at least once per load-check period by the protocol layer.
        Transports with no deferred delivery return 0.
        """
        return 0

    def close(self) -> None:
        """Release any resources the transport holds (event loops, sockets).

        Most transports hold none; the asyncio transport closes its event
        loop here and the socket transport shuts down its worker processes.
        Safe to call more than once.  Subclasses must call ``super().close()``
        so :attr:`closed` flips for every implementation."""
        self.closed = True
