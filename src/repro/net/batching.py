"""Batched delivery: coalesce same-destination traffic per load-check period.

:class:`BatchingTransport` targets the per-message Python overhead on hot
paths.  Two mechanisms, both flushed at load-check-period boundaries:

* **Route coalescing** — the Chord ring only changes on membership events, so
  within one period every envelope bound for the same virtual key resolves to
  the same owner over the same path.  The first resolution pays the real
  finger-table walk; subsequent sends to that key reuse the cached
  ``(owner, hops)`` pair.  The *hop charge is replayed from the cache*, so
  message accounting is bit-for-bit identical to
  :class:`~repro.net.inline.InlineTransport` — only the wall-clock cost of
  recomputing the walk is saved.
* **One-way coalescing** — :meth:`post` envelopes (load reports) are queued
  per destination and handed to each endpoint in one batch at
  :meth:`flush` time, preserving per-destination ordering.

Request/reply envelopes cannot be deferred (the caller needs the reply on the
spot) and are dispatched immediately, route cache aside.
"""

from __future__ import annotations

from repro.net.envelope import Delivery, Envelope
from repro.net.transport import Transport

__all__ = ["BatchingTransport"]


class BatchingTransport(Transport):
    """Coalesces DHT resolutions and one-way envelopes per flush window."""

    def __init__(self) -> None:
        super().__init__()
        self._route_cache: dict[tuple[int, int], tuple[str, int]] = {}
        self._outbox: dict[str, list[Envelope]] = {}
        self._deferred = 0
        self.route_cache_hits = 0
        self.batches_flushed = 0

    # ------------------------------------------------------------------ #
    # Route coalescing
    # ------------------------------------------------------------------ #

    def resolve(self, virtual_key) -> tuple[str, int]:
        """Resolve through the window's route cache (miss → real DHT walk)."""
        cache_key = (virtual_key.value, virtual_key.width)
        cached = self._route_cache.get(cache_key)
        if cached is not None:
            self.route_cache_hits += 1
            return cached
        route = super().resolve(virtual_key)
        self._route_cache[cache_key] = route
        return route

    def invalidate_routes(self) -> None:
        self._route_cache.clear()

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #

    def request(self, envelope: Envelope) -> Delivery:
        server, hops = self._route(envelope)
        reply = self._dispatch(server, envelope)
        return Delivery(server=server, hops=hops, reply=reply)

    def post(self, envelope: Envelope) -> Delivery:
        """Queue a one-way envelope for batched delivery at the next flush.

        The route (and therefore the hop charge) is resolved immediately so
        the caller's message accounting does not depend on the flush schedule.
        """
        server, hops = self._route(envelope)
        self._outbox.setdefault(server, []).append(envelope)
        self._deferred += 1
        return Delivery(server=server, hops=hops)

    @property
    def pending(self) -> int:
        """Number of queued one-way envelopes awaiting the next flush."""
        return self._deferred

    def flush(self) -> int:
        """Deliver queued envelopes destination by destination, then open a
        new coalescing window (the route cache is cleared)."""
        delivered = 0
        outbox, self._outbox = self._outbox, {}
        self._deferred = 0
        for server in sorted(outbox):
            for envelope in outbox[server]:
                # Rechecked per envelope, not once per destination: a handler
                # can unbind its *own* endpoint mid-batch (failure-triggered
                # re-root), and the remainder must be dropped and counted, as
                # a real network would — not crash the run on a bare
                # TransportError.  Handler errors are not drops and still
                # propagate.
                if not self.is_bound(server):
                    self.dropped_messages += 1
                    continue
                self._dispatch(server, envelope)
                delivered += 1
        if delivered:
            self.batches_flushed += 1
        self._route_cache.clear()
        return delivered
