"""The asyncio transport: CLASH's message plane on an asyncio event loop.

:class:`AsyncTransport` runs every delivery as real asyncio work — handlers
may be native coroutines (the protocol layer's endpoints expose an awaitable
side through :class:`~repro.core.protocol.AwaitableHandler`), endpoints
consume their traffic from **per-endpoint inboxes** drained by concurrently
scheduled tasks, and latency is priced by the same pluggable models the event
transport uses (:mod:`repro.net.latency`).

The protocol layer stays synchronous: :meth:`request`, :meth:`post` and
:meth:`flush` are the ordinary blocking :class:`~repro.net.transport.Transport`
surface, and each one *steps the transport's own event loop* until the
exchange (or the whole in-flight set) has completed.  The transport therefore
owns its loop outright — it is created privately, never shared, and never
running when control is outside the transport — which is what makes the
sync/async bridge safe: no executor threads, no re-entrancy.

Determinism is a design requirement, not an accident:

* envelopes wait in a virtual-time calendar ordered by
  ``(ready_at, tie_break, sequence)``, where ``tie_break`` is drawn from a
  seeded :class:`~repro.util.rng.RandomStream` at send time — simultaneous
  messages become ready in a *seeded shuffle* order, reproducible run over
  run (and adversarial enough to prove the protocol does not depend on
  delivery order);
* every batch of simultaneously-ready envelopes is released to the inboxes in
  calendar order, and asyncio's FIFO ready queue makes the resulting task
  interleaving a pure function of that order.

Same seed ⇒ same delivery order, same clock readings, same metrics.
"""

from __future__ import annotations

import asyncio
import heapq
import inspect
import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.net.envelope import Delivery, Envelope
from repro.net.latency import LatencyModel, ZeroLatency
from repro.net.transport import DeliveryFailed, Transport, TransportError
from repro.util.rng import RandomStream

__all__ = ["AsyncTransport"]

_PUMP_GUARD = 10_000_000


@dataclass(order=True, slots=True)
class _Flight:
    """One envelope waiting in the virtual-time calendar.

    Ordered by ``(ready_at, tie_break, sequence)``: ready time first, then the
    seeded tie-break for simultaneous arrivals, then send order as the final
    (deterministic) fallback.
    """

    ready_at: float
    tie_break: float
    sequence: int
    server: str = field(compare=False)
    envelope: Envelope = field(compare=False)
    reply: asyncio.Future | None = field(compare=False, default=None)


class AsyncTransport(Transport):
    """Awaitable-handler delivery on a privately owned asyncio event loop.

    Args:
        latency: Prices each delivery in seconds of virtual time (defaults to
            :class:`~repro.net.latency.ZeroLatency`, which preserves inline
            metric equivalence bit for bit).
        ready_rng: Seeded stream for the ready-order tie-break.  ``None``
            falls back to pure send-order (FIFO) tie-breaking, which is also
            deterministic — the seeded shuffle exists to *prove* order
            independence, not to provide it.
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        ready_rng: RandomStream | None = None,
    ) -> None:
        super().__init__()
        self._latency = latency if latency is not None else ZeroLatency()
        self._ready_rng = ready_rng
        self._loop = asyncio.new_event_loop()
        self._clock = 0.0
        self._calendar: list[_Flight] = []
        self._sequence = itertools.count()
        self._inboxes: dict[str, deque[_Flight]] = {}
        self._drainers: dict[str, asyncio.Task] = {}
        self._in_flight = 0
        self._delivery_error: BaseException | None = None
        self._latency_samples: list[float] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The privately owned asyncio event loop deliveries run on."""
        return self._loop

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._clock

    @property
    def latency_model(self) -> LatencyModel:
        """The current latency model."""
        return self._latency

    def set_latency_model(self, latency: LatencyModel) -> None:
        """Swap the latency model (scenario phases may override it)."""
        self._latency = latency

    @property
    def ready_source(self):
        """The source the ready-order tie-break is drawn from (may be ``None``)."""
        return self._ready_rng

    def set_ready_source(self, source) -> None:
        """Swap the tie-break source (anything with ``uniform(low, high)``).

        The fuzz harness wraps the live source in a
        :class:`~repro.net.replay.TieRecorder` before a recorded run, and a
        :class:`~repro.net.replay.TieTape` replays a recording.  Swapping
        mid-run splices the schedule at the current send, so install the
        source before any traffic flows.
        """
        self._ready_rng = source

    def drain_latency_samples(self) -> list[float]:
        """Per-delivery (one-way) latencies recorded since the last drain."""
        samples = self._latency_samples
        self._latency_samples = []
        return samples

    # ------------------------------------------------------------------ #
    # Delivery (the synchronous Transport surface)
    # ------------------------------------------------------------------ #

    def request(self, envelope: Envelope) -> Delivery:
        """Deliver an envelope and step the loop until its reply resolves.

        Raises :class:`~repro.net.transport.DeliveryFailed` when the
        destination unbinds (server failure) while the request is in flight;
        the cancelled exchange is counted in :attr:`dropped_messages`.
        """
        server, hops = self._route(envelope)
        forward = self._latency.sample(envelope.source, server, hops)
        backward = self._latency.sample(server, envelope.source, 0)
        reply_future = self._loop.create_future()
        self._schedule(server, envelope, delay=forward, reply=reply_future)
        self._step(lambda: reply_future.done())
        failure = reply_future.exception()
        if failure is not None:
            # No reply leg: the request died on the forward leg.
            self._latency_samples.append(forward)
            raise failure
        self._clock += backward
        self._latency_samples.append(forward)
        self._latency_samples.append(backward)
        return Delivery(
            server=server,
            hops=hops,
            reply=reply_future.result(),
            latency=forward + backward,
        )

    def post(self, envelope: Envelope) -> Delivery:
        """Queue a one-way delivery; it lands when the loop next runs."""
        server, hops = self._route(envelope)
        delay = self._latency.sample(envelope.source, server, hops)
        self._schedule(server, envelope, delay=delay, reply=None)
        self._latency_samples.append(delay)
        return Delivery(server=server, hops=hops, latency=delay)

    def flush(self) -> int:
        """Step the loop until every in-flight envelope has been delivered."""
        flushed = self._in_flight
        if flushed:
            self._step(lambda: self._in_flight == 0)
        return flushed

    def close(self) -> None:
        """Close the owned event loop (idempotent)."""
        super().close()
        if self._loop.is_closed():
            return
        pending = [task for task in self._drainers.values() if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._drainers.clear()
        self._loop.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # The virtual-time calendar
    # ------------------------------------------------------------------ #

    def _schedule(
        self,
        server: str,
        envelope: Envelope,
        delay: float,
        reply: asyncio.Future | None,
    ) -> None:
        tie_break = self._ready_rng.uniform(0.0, 1.0) if self._ready_rng else 0.0
        flight = _Flight(
            ready_at=self._clock + delay,
            tie_break=tie_break,
            sequence=next(self._sequence),
            server=server,
            envelope=envelope,
            reply=reply,
        )
        heapq.heappush(self._calendar, flight)
        self._in_flight += 1

    def _step(self, done) -> None:
        """Run the owned loop until ``done()`` holds (the sync/async seam)."""
        if self._loop.is_running():
            raise TransportError(
                "re-entrant delivery: a handler called back into the "
                "transport's synchronous surface while the loop was running"
            )
        self._loop.run_until_complete(self._pump(done))
        self._raise_pending_delivery_error()

    def _raise_pending_delivery_error(self) -> None:
        """Re-raise a handler error from a one-way delivery, exactly once.

        Request/reply errors travel through the reply future; a *post* whose
        handler raised has no waiting caller, so the drainer task parks the
        error here and the next synchronous entry point surfaces it (handler
        errors are programming errors and must not be swallowed)."""
        if self._delivery_error is not None:
            error, self._delivery_error = self._delivery_error, None
            raise error

    async def _pump(self, done) -> None:
        """Advance virtual time and let endpoint tasks run until ``done()``.

        One iteration either (a) yields to the loop so already-released
        inbox work progresses, or (b) releases the next batch of
        simultaneously-ready flights from the calendar, in seeded tie-break
        order, to their per-endpoint inboxes.
        """
        guard = 0
        while not done():
            if self._delivery_error is not None:
                return  # surfaced by _step via _raise_pending_delivery_error
            if self._drainers:
                await asyncio.sleep(0)
            elif self._calendar:
                now = self._calendar[0].ready_at
                self._clock = max(self._clock, now)
                while self._calendar and self._calendar[0].ready_at == now:
                    flight = heapq.heappop(self._calendar)
                    inbox = self._inboxes.setdefault(flight.server, deque())
                    inbox.append(flight)
                    if flight.server not in self._drainers:
                        self._drainers[flight.server] = self._loop.create_task(
                            self._drain_inbox(flight.server)
                        )
            else:
                raise TransportError(
                    "async transport stalled: waiting for a delivery but the "
                    "calendar is empty and no endpoint has pending work"
                )
            guard += 1
            if guard > _PUMP_GUARD:  # pragma: no cover - safety net
                raise TransportError("async transport did not converge")

    # ------------------------------------------------------------------ #
    # Per-endpoint inbox draining
    # ------------------------------------------------------------------ #

    async def _drain_inbox(self, name: str) -> None:
        """Deliver one endpoint's released envelopes, in order, as a task.

        One drainer task exists per endpoint with pending work; drainers for
        different endpoints are interleaved by the loop, which is what makes
        simultaneously-ready traffic to distinct servers genuinely
        concurrent.  The task retires once the inbox is empty.
        """
        inbox = self._inboxes[name]
        try:
            while inbox:
                flight = inbox.popleft()
                await self._deliver(flight)
        finally:
            del self._drainers[name]

    async def _deliver(self, flight: _Flight) -> None:
        server = flight.server
        if self.log_deliveries:
            self.delivery_log.append(
                (self._clock, server, type(flight.envelope.payload).__name__)
            )
        try:
            if not self.is_bound(server):
                # The endpoint unbound with this envelope in flight (server
                # failure): drop it like a real network.  One-way posts are
                # counted and forgotten; request/reply exchanges surface the
                # cancellation to the waiting caller as DeliveryFailed.
                self.dropped_messages += 1
                if flight.reply is not None and not flight.reply.done():
                    flight.reply.set_exception(DeliveryFailed(server, flight.envelope))
                return
            try:
                reply = await self._dispatch_async(server, flight.envelope)
            except Exception as error:
                if flight.reply is not None and not flight.reply.done():
                    flight.reply.set_exception(error)
                elif self._delivery_error is None:
                    self._delivery_error = error
                return
            if flight.reply is not None and not flight.reply.done():
                flight.reply.set_result(reply)
        finally:
            self._in_flight -= 1

    async def _dispatch_async(self, name: str, envelope: Envelope):
        """The awaitable twin of :meth:`Transport._dispatch`.

        Prefers the handler's async side (``handle_async``, provided by the
        protocol layer's :class:`~repro.core.protocol.AwaitableHandler`
        bridge); a bare sync handler — or one returning an awaitable — works
        too.
        """
        handler = self._handlers.get(name)
        if handler is None:
            raise TransportError(f"no endpoint bound for {name!r}")
        self.envelopes_delivered += 1
        handle_async = getattr(handler, "handle_async", None)
        if handle_async is not None:
            return await handle_async(envelope)
        reply = handler(envelope)
        if inspect.isawaitable(reply):
            return await reply
        return reply
